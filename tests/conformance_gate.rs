//! Tier-1 gate: the paper-conformance audit and the strict lint pass must
//! stay clean under a plain `cargo test`.
//!
//! This test runs the same checks as `cargo run -p pftk-audit`: every MUST
//! claim in `specs/pftk-spec.toml` needs at least one implementation and one
//! test citation (`//= pftk#<id>` / `//= pftk#<id> type=test`), no citation
//! may reference an unknown or retired claim, the lint rules (panic
//! family in library code, lossy casts in model/sim, float equality against
//! literals) admit no unwhitelisted violations, and the `[[hotpath]]`
//! registry's roots all resolve and stay free of unjustified reachable
//! allocation, panics, and blocking (`hot_alloc` / `hot_panic` /
//! `hot_block`), with `unit_escape` guarding the unit newtypes. The
//! `[[domain]]` registry's roots must likewise all resolve, with the
//! value-range analysis proving every kernel total over its declared
//! intervals (`div_domain` / `nan_source` / `inf_escape` /
//! `cancel_risk` / `stale_domain`), and the per-pass wall-time budget
//! must hold.
//!
//! If this test fails, run `cargo run -p pftk-audit` for the full report
//! (also written to `results/conformance.json`).

use pftk_audit::run_audit;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // The root package's manifest dir IS the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn audit_passes() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    let report = pftk_audit::report::render_summary(&outcome);
    assert!(
        outcome.is_clean(),
        "paper-conformance audit failed; run `cargo run -p pftk-audit` for details\n\n{report}"
    );
}

#[test]
fn every_must_claim_fully_covered() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    let uncovered = outcome.conformance.uncovered_must();
    assert!(
        uncovered.is_empty(),
        "MUST claims lacking an impl or test citation: {:?}",
        uncovered.iter().map(|c| &c.id).collect::<Vec<_>>()
    );
}

#[test]
fn hotpath_registry_resolves_and_is_guarded() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    // The registry must be non-trivial (an emptied registry would turn
    // the hot-path analysis into a vacuous pass) and every root must
    // resolve to at least one function in the call graph — a stale root
    // silently un-guards its whole subtree.
    assert!(
        outcome.hotpaths.len() >= 5,
        "hotpath registry shrank unexpectedly: {:?}",
        outcome.hotpaths
    );
    for root in &outcome.hotpaths {
        assert!(
            root.resolved > 0,
            "stale [[hotpath]] root {:?} matches no function; fix or remove it in specs/pftk-spec.toml",
            root.root
        );
        assert!(
            root.reached >= root.resolved,
            "root walks at least its own functions: {root:?}"
        );
    }
    // The per-rule breakdown carries the capability rules, all clean.
    let counts = outcome.rule_counts();
    for rule in ["hot_alloc", "hot_panic", "hot_block", "unit_escape"] {
        assert_eq!(
            counts.get(rule),
            Some(&0),
            "unjustified {rule} findings on a hot path; run `cargo run -p pftk-audit` for chains"
        );
    }
}

#[test]
fn domain_registry_resolves_and_kernels_are_total() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    // The numeric-domain registry must keep covering the model kernels
    // (an emptied registry would make the value-range analysis vacuous)
    // and every root must resolve — a stale root means the spec drifted
    // from the code, which is precisely what `stale_domain` guards.
    assert!(
        outcome.domains.len() >= 8,
        "domain registry shrank unexpectedly: {:?}",
        outcome.domains
    );
    for root in &outcome.domains {
        assert!(
            root.resolved > 0,
            "stale [[domain]] root {:?} matches no function; fix or remove it in specs/pftk-spec.toml",
            root.root
        );
        assert!(
            root.reached >= root.resolved,
            "root interprets at least its own functions: {root:?}"
        );
    }
    let counts = outcome.rule_counts();
    for rule in [
        "div_domain",
        "nan_source",
        "inf_escape",
        "cancel_risk",
        "stale_domain",
    ] {
        assert_eq!(
            counts.get(rule),
            Some(&0),
            "unjustified {rule} findings over the declared domains; run `cargo run -p pftk-audit` for chains"
        );
    }
}

#[test]
fn per_pass_timings_fit_the_budget() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    for key in ["scanner", "detlint", "hotlint", "numlint", "total"] {
        assert!(
            outcome.timings_ms.contains_key(key),
            "missing pass timing {key:?}: {:?}",
            outcome.timings_ms
        );
    }
    // The audit guards every `cargo test` run, so it must stay cheap.
    // The budget is generous (debug builds on loaded CI machines) while
    // still catching a superlinear regression in any pass.
    let total = outcome.timings_ms["total"];
    assert!(
        total < 30_000,
        "audit blew its wall-time budget: {total} ms (per pass: {:?})",
        outcome.timings_ms
    );
}

#[test]
fn no_unwhitelisted_lint_violations() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    assert!(
        outcome.lint.is_empty(),
        "lint violations (annotate deliberate sites with `//~ allow(rule): reason`): {:?}",
        outcome
            .lint
            .iter()
            .map(|v| format!("{}[{}:{}]", v.rule, v.file.display(), v.line))
            .collect::<Vec<_>>()
    );
}
