//! Tier-1 gate: the paper-conformance audit and the strict lint pass must
//! stay clean under a plain `cargo test`.
//!
//! This test runs the same checks as `cargo run -p pftk-audit`: every MUST
//! claim in `specs/pftk-spec.toml` needs at least one implementation and one
//! test citation (`//= pftk#<id>` / `//= pftk#<id> type=test`), no citation
//! may reference an unknown or retired claim, and the lint rules (panic
//! family in library code, lossy casts in model/sim, float equality against
//! literals) admit no unwhitelisted violations.
//!
//! If this test fails, run `cargo run -p pftk-audit` for the full report
//! (also written to `results/conformance.json`).

use pftk_audit::run_audit;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // The root package's manifest dir IS the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn audit_passes() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    let report = pftk_audit::report::render_summary(&outcome);
    assert!(
        outcome.is_clean(),
        "paper-conformance audit failed; run `cargo run -p pftk-audit` for details\n\n{report}"
    );
}

#[test]
fn every_must_claim_fully_covered() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    let uncovered = outcome.conformance.uncovered_must();
    assert!(
        uncovered.is_empty(),
        "MUST claims lacking an impl or test citation: {:?}",
        uncovered.iter().map(|c| &c.id).collect::<Vec<_>>()
    );
}

#[test]
fn no_unwhitelisted_lint_violations() {
    let outcome = run_audit(workspace_root()).expect("audit ran");
    assert!(
        outcome.lint.is_empty(),
        "lint violations (annotate deliberate sites with `//~ allow(rule): reason`): {:?}",
        outcome
            .lint
            .iter()
            .map(|v| format!("{}[{}:{}]", v.rule, v.file.display(), v.line))
            .collect::<Vec<_>>()
    );
}
