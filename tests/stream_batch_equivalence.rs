//! Streaming/batch equivalence harness: the incremental analyzer fed one
//! record at a time must reproduce the batch pipeline **bit for bit** —
//! same `Analysis`, same Karn timing, same interval rows, same RTT-window
//! correlation, floats compared via `f64::to_bits`, never epsilon.
//!
//! Three input populations, per the spec claim:
//!  * seeded random (but plausible, time-ordered) traces from a proptest
//!    strategy;
//!  * real simulator runs under seeded fault plans (reordering, ACK loss,
//!    link flaps, corruption);
//!  * traces salvaged by the lenient binary decoder from corrupted
//!    captures — the streaming analyzer has no "repair" pass, so whatever
//!    the importer fixed up must analyze identically either way.

use proptest::prelude::*;

use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::fault::FaultPlan;
use padhye_tcp_repro::sim::link::Path;
use padhye_tcp_repro::sim::loss::Bernoulli;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};
use padhye_tcp_repro::testbed::TraceRecorder;
use padhye_tcp_repro::trace::analyzer::{analyze, AnalyzerConfig};
use padhye_tcp_repro::trace::intervals::split_intervals_bounded;
use padhye_tcp_repro::trace::karn::{estimate_timing, rtt_window_correlation};
use padhye_tcp_repro::trace::record::{Trace, TraceEvent, TraceRecord};
use padhye_tcp_repro::trace::stream::{StreamAnalysis, StreamConfig, TraceSink};

/// The interval length used throughout (short, so even 20-second random
/// traces produce several rows).
const INTERVAL_SECS: f64 = 5.0;

/// Streams `trace` record by record and returns the full reduction.
fn stream_it(
    trace: &Trace,
    analyzer: AnalyzerConfig,
    interval_secs: Option<f64>,
    total_secs: f64,
) -> StreamAnalysis {
    let config = StreamConfig {
        analyzer,
        interval_secs,
        timing: true,
        correlation: true,
    };
    let mut s = padhye_tcp_repro::trace::stream::StreamAnalyzer::new(config);
    for rec in trace.records() {
        s.on_record(rec);
    }
    s.finish(Some(total_secs))
}

/// Asserts the streamed reduction of `trace` is bit-identical to the
/// batch pipeline run over the materialized trace.
fn assert_stream_matches_batch(
    trace: &Trace,
    analyzer: AnalyzerConfig,
) -> Result<(), TestCaseError> {
    let total_secs = trace
        .records()
        .last()
        .map_or(0.0, |r| r.time_ns as f64 / 1e9);
    // Salvaged captures can carry garbage-huge timestamps (shifted frame
    // boundaries decode as enormous times); segmenting such a "horizon"
    // into 5-second buckets would allocate per elapsed interval in both
    // pipelines alike, so intervals are only compared on sane horizons.
    let interval_secs = (total_secs <= 86_400.0).then_some(INTERVAL_SECS);
    let streamed = stream_it(trace, analyzer, interval_secs, total_secs);

    // Batch reference, straight over the materialized records.
    let analysis = analyze(trace, analyzer);
    let timing = estimate_timing(trace);
    let corr = rtt_window_correlation(trace);

    prop_assert_eq!(&streamed.analysis, &analysis, "Analysis diverged");
    let st = streamed.timing.as_ref().expect("timing enabled");
    prop_assert_eq!(st.rtt_samples, timing.rtt_samples);
    prop_assert_eq!(st.t0_samples, timing.t0_samples);
    prop_assert_eq!(
        st.mean_rtt.map(f64::to_bits),
        timing.mean_rtt.map(f64::to_bits),
        "mean RTT bits diverged"
    );
    prop_assert_eq!(
        st.mean_t0.map(f64::to_bits),
        timing.mean_t0.map(f64::to_bits),
        "mean T0 bits diverged"
    );
    prop_assert_eq!(
        streamed.rtt_window_corr.map(f64::to_bits),
        corr.map(f64::to_bits),
        "correlation bits diverged"
    );
    if interval_secs.is_some() {
        let intervals = split_intervals_bounded(trace, &analysis, INTERVAL_SECS, total_secs);
        let siv = streamed.intervals.as_ref().expect("intervals enabled");
        prop_assert_eq!(siv.len(), intervals.len(), "interval count diverged");
        for (a, b) in siv.iter().zip(&intervals) {
            prop_assert_eq!(a.index, b.index);
            prop_assert_eq!(a.packets_sent, b.packets_sent);
            prop_assert_eq!(a.loss_indications, b.loss_indications);
            prop_assert_eq!(a.category, b.category);
            prop_assert_eq!(
                a.loss_rate.to_bits(),
                b.loss_rate.to_bits(),
                "interval {} loss-rate bits diverged",
                a.index
            );
        }
    }
    prop_assert_eq!(streamed.events, trace.len() as u64);
    Ok(())
}

/// Strategy: a random but *time-ordered* plausible sender trace —
/// interleavings of new sends, head retransmissions, and forward or
/// duplicate ACKs (same population as the trace crate's property tests).
fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u8..4, 1u64..50), 1..400).prop_map(|ops| {
        let mut t = Trace::new();
        let mut now = 0u64;
        let mut snd_max = 0u64;
        let mut last_ack = 0u64;
        for (op, dt) in ops {
            now += dt * 1_000_000;
            match op {
                0 | 1 => {
                    t.push(TraceRecord {
                        time_ns: now,
                        event: TraceEvent::Send {
                            seq: snd_max,
                            retx: false,
                        },
                    });
                    snd_max += 1;
                }
                2 if last_ack < snd_max => {
                    t.push(TraceRecord {
                        time_ns: now,
                        event: TraceEvent::Send {
                            seq: last_ack,
                            retx: true,
                        },
                    });
                }
                _ if snd_max > 0 => {
                    let ack = if last_ack < snd_max && (now / 1_000_000).is_multiple_of(3) {
                        last_ack + 1 + (now / 7_000_000) % (snd_max - last_ack)
                    } else {
                        last_ack
                    };
                    last_ack = last_ack.max(ack);
                    t.push(TraceRecord {
                        time_ns: now,
                        event: TraceEvent::AckIn { ack },
                    });
                }
                _ => {}
            }
        }
        t
    })
}

/// A real simulator run under the full seeded fault plan, trace retained.
fn fault_plan_trace(seed: u64) -> Trace {
    let half = SimDuration::from_millis(50);
    let mut conn = Connection::builder()
        .fwd_path(Path::constant(half))
        .rev_path(Path::constant(half))
        .loss(Box::new(Bernoulli::new(0.02)))
        .fault(FaultPlan::from_seed(seed))
        .sender_config(SenderConfig::default())
        .seed(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1))
        .build_with_observer(TraceRecorder::new());
    conn.run_until_budget(SimTime::from_secs_f64(60.0), 2_000_000);
    conn.finish();
    conn.into_observer().into_trace()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    //= pftk#stream-batch-equivalence type=test
    #[test]
    fn streamed_equals_batch_on_random_traces(trace in trace_strategy()) {
        assert_stream_matches_batch(&trace, AnalyzerConfig::default())?;
        // Linux-quirk threshold too: classification must not depend on the
        // feeding mode at any threshold.
        assert_stream_matches_batch(&trace, AnalyzerConfig { dupack_threshold: 2 })?;
    }

    //= pftk#stream-batch-equivalence type=test
    #[test]
    fn streamed_equals_batch_on_salvaged_traces(
        trace in trace_strategy(),
        deletions in prop::collection::vec(0usize..1_000_000, 1..10),
    ) {
        // Corrupt a binary capture, let the lenient decoder salvage what
        // it can, and require both pipelines to agree on the wreckage.
        let mut buf = Vec::new();
        trace.encode_binary(&mut buf);
        for idx in deletions {
            if !buf.is_empty() {
                buf.remove(idx % buf.len());
            }
        }
        let (salvaged, _health) = Trace::decode_binary_lenient(&mut buf.as_slice());
        assert_stream_matches_batch(&salvaged, AnalyzerConfig::default())?;
    }
}

proptest! {
    // Simulator runs are pricier than synthetic traces; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    //= pftk#stream-batch-equivalence type=test
    #[test]
    fn streamed_equals_batch_under_fault_plans(seed in 0u64..1024) {
        let trace = fault_plan_trace(seed);
        prop_assert!(!trace.is_empty(), "fault plan {seed} produced an empty trace");
        assert_stream_matches_batch(&trace, AnalyzerConfig::default())?;
    }
}
