//! Resume-equivalence gate: the replay-equivalence property extended
//! across process death.
//!
//! `tests/replay_equivalence.rs` proves a supervised campaign reproduces
//! bit-identically under any scheduling. This gate proves the stronger
//! property the crash-safe journal adds: a campaign that is **killed at a
//! seeded random checkpoint boundary and re-invoked** produces final
//! Table II / streamed-analysis outputs bit-identical (`f64::to_bits`) to
//! an uninterrupted run — completed rows replay from the write-ahead
//! journal, the killed row resumes mid-connection from its snapshot, and
//! nothing is recomputed differently.
//!
//! The "kill" is an injected panic ([`CrashPoint`]) tripped by a worker
//! right after it hands a checkpoint to the journal writer — the same
//! durable state a SIGKILL would leave behind, unwound through the
//! supervisor's panic isolation so the campaign reports an attributable
//! `Panicked` hole. The pool's schedule chaos stays armed throughout, so
//! the kill lands under perturbed scheduling too.
//!
//! CI runs a matrix over `PFTK_RESUME_WORKERS=1|2|8` (two kill seeds per
//! worker count); unset, the test sweeps all three counts. The journal is
//! also checked for **freshness**: a resumed run strictly appends — the
//! byte prefix written before the crash is never rewritten.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use padhye_tcp_repro::testbed::journal::{self, CampaignRecord};
use padhye_tcp_repro::testbed::{
    run_table2_journaled, CampaignReport, CrashPoint, JournalConfig, Outcome, SupervisorConfig,
    TABLE2_PATHS,
};

/// Pinned campaign seed: the gate's claim is that this exact campaign
/// reproduces bit-identically through a crash.
const BASE_SEED: u64 = 0x0C0F_FEE5_2026;

/// Table II paths under test. Must be >= the largest worker count so the
/// 8-worker run is not silently demoted to fewer busy workers.
const JOBS: usize = 8;

/// Sim horizon per connection, seconds. Short enough for tier-1 debug
/// builds, long enough for several checkpoint boundaries per connection.
const HORIZON_SECS: f64 = 300.0;

/// Checkpoint cadence, sim-seconds: 5 in-flight checkpoints per run.
const CHECKPOINT_SECS: f64 = 50.0;

/// Two pinned kill seeds per worker count (the CI matrix dimension).
const KILL_SEEDS: [u64; 2] = [0xDEAD_0001, 0xDEAD_0002];

fn journal_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pftk-resume-{}-{tag}.waj", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn config(workers: usize, crash: Option<Arc<CrashPoint>>) -> JournalConfig {
    JournalConfig {
        supervisor: SupervisorConfig {
            wall_budget: Duration::from_secs(120),
            // No reseeded retries: a killed attempt must stay an
            // attributable hole for the *resume* run to pick up, not be
            // papered over with a different seed's result.
            retry: false,
            max_workers: workers,
            // Reuse the worker-pool chaos machinery: seeded yield points
            // and rotated steal order, so the kill point lands under
            // perturbed scheduling.
            schedule_chaos: Some(0xC4A0_5E5E + workers as u64),
        },
        checkpoint_sim_secs: CHECKPOINT_SECS,
        horizon_secs: HORIZON_SECS,
        crash,
        ..JournalConfig::default()
    }
}

fn run(path: &std::path::Path, workers: usize, crash: Option<Arc<CrashPoint>>) -> CampaignReport {
    run_table2_journaled(
        &TABLE2_PATHS[..JOBS],
        BASE_SEED,
        path,
        &config(workers, crash),
    )
    .expect("journal I/O")
}

/// Worker counts under test: the full `[1, 2, 8]` sweep, or the single
/// count named by `PFTK_RESUME_WORKERS` (one CI process per count).
fn worker_counts() -> Vec<usize> {
    match std::env::var("PFTK_RESUME_WORKERS") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("PFTK_RESUME_WORKERS must be a worker count")],
        Err(_) => vec![1, 2, 8],
    }
}

/// SplitMix64: turns a kill seed into a well-mixed draw.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Asserts a resumed/replayed report reproduces the uninterrupted
/// reference bit for bit. Outcomes may differ only in the allowed way:
/// `Ok` in the reference, `Ok` (replayed/re-run) or `Resumed`
/// (checkpoint-restored) in the candidate — never a retry, which would
/// mean a different seed's stream was substituted.
fn assert_outputs_bit_identical(
    reference: &CampaignReport,
    candidate: &CampaignReport,
    context: &str,
) {
    assert_eq!(
        reference.rows.len(),
        candidate.rows.len(),
        "{context}: rows"
    );
    for (i, (a, b)) in reference.rows.iter().zip(&candidate.rows).enumerate() {
        let at = format!("{context}: row {i} ({})", a.label);
        assert_eq!(a.label, b.label, "{at}: label");
        assert_eq!(a.seed, b.seed, "{at}: seed (a retry leaked in?)");
        assert!(
            matches!(b.outcome, Outcome::Ok | Outcome::Resumed),
            "{at}: outcome {:?}",
            b.outcome
        );
        let ra = a.result.as_ref().expect("reference row has a result");
        let rb = b
            .result
            .as_ref()
            .unwrap_or_else(|| panic!("{at}: no result"));
        assert_eq!(ra.stats, rb.stats, "{at}: ground-truth stats diverged");
        assert_eq!(ra.stream, rb.stream, "{at}: streamed analysis diverged");
        assert_eq!(
            ra.ground_rtt.map(f64::to_bits),
            rb.ground_rtt.map(f64::to_bits),
            "{at}: ground RTT bits"
        );
        assert_eq!(
            ra.ground_t0.map(f64::to_bits),
            rb.ground_t0.map(f64::to_bits),
            "{at}: ground T0 bits"
        );
        assert_eq!(
            ra.duration_secs.to_bits(),
            rb.duration_secs.to_bits(),
            "{at}: duration bits"
        );
        assert_eq!(
            ra.timing().and_then(|t| t.mean_rtt).map(f64::to_bits),
            rb.timing().and_then(|t| t.mean_rtt).map(f64::to_bits),
            "{at}: streamed RTT bits"
        );
        assert_eq!(
            ra.timing().and_then(|t| t.mean_t0).map(f64::to_bits),
            rb.timing().and_then(|t| t.mean_t0).map(f64::to_bits),
            "{at}: streamed T0 bits"
        );
        assert_eq!(
            ra.rtt_window_corr().map(f64::to_bits),
            rb.rtt_window_corr().map(f64::to_bits),
            "{at}: correlation bits"
        );
    }
}

/// How many checkpoint records an uninterrupted run of this campaign
/// writes — the tick space the seeded kill points draw from.
fn count_checkpoints(path: &std::path::Path) -> u64 {
    let replayed = journal::replay(path).expect("journal readable");
    assert!(!replayed.torn_tail, "clean run left a torn journal");
    replayed
        .records
        .iter()
        .filter(|r| matches!(r, CampaignRecord::Checkpoint(_)))
        .count() as u64
}

//= pftk#det-replay type=test
//= pftk#crash-resume type=test
#[test]
fn killed_and_resumed_campaign_is_bit_identical() {
    // Uninterrupted journaled reference.
    let ref_path = journal_path("reference");
    let reference = run(&ref_path, 2, None);
    assert!(
        reference.is_complete(),
        "reference campaign must be clean: {}",
        reference.summary()
    );
    assert_eq!(reference.rows.len(), JOBS);
    for row in &reference.rows {
        assert_eq!(row.outcome, Outcome::Ok, "{}", row.label);
    }
    let total_ticks = count_checkpoints(&ref_path);
    assert!(
        total_ticks >= JOBS as u64 * 2,
        "too few checkpoints ({total_ticks}) for a meaningful kill space"
    );
    let _ = std::fs::remove_file(&ref_path);

    for workers in worker_counts() {
        for (ki, kill_seed) in KILL_SEEDS.iter().enumerate() {
            let context = format!("{workers} workers, kill seed {ki}");
            let path = journal_path(&format!("kill-w{workers}-k{ki}"));

            // Seeded kill point, clamped to the first half of the tick
            // space so the crash reliably fires before the campaign drains.
            let tick = 1 + splitmix(*kill_seed ^ workers as u64) % (total_ticks / 2);
            let crashed = run(&path, workers, Some(CrashPoint::after(tick)));
            let holes: Vec<_> = crashed
                .rows
                .iter()
                .filter(|r| !r.outcome.succeeded())
                .collect();
            assert!(
                !holes.is_empty(),
                "{context}: kill at tick {tick} left no hole"
            );
            for hole in &holes {
                assert_eq!(
                    hole.outcome,
                    Outcome::Panicked,
                    "{context}: hole must be an attributable crash"
                );
            }
            let bytes_after_crash = std::fs::read(&path).expect("journal exists");

            // Resume: completed rows replay, the killed row restores from
            // its last checkpoint and continues.
            let resumed = run(&path, workers, None);
            assert!(
                resumed.is_complete(),
                "{context}: resume left holes: {}",
                resumed.summary()
            );
            assert!(
                resumed.rows.iter().any(|r| r.outcome == Outcome::Resumed),
                "{context}: no row was checkpoint-resumed"
            );
            assert_outputs_bit_identical(&reference, &resumed, &context);

            // Journal freshness: resuming strictly appends — the bytes
            // written before the crash are still there, byte for byte.
            let bytes_after_resume = std::fs::read(&path).expect("journal exists");
            assert!(
                bytes_after_resume.len() >= bytes_after_crash.len(),
                "{context}: journal shrank"
            );
            assert_eq!(
                &bytes_after_resume[..bytes_after_crash.len()],
                &bytes_after_crash[..],
                "{context}: resume rewrote completed records"
            );

            // Idempotence: a third invocation replays everything and the
            // journal does not grow at all.
            let replayed = run(&path, workers, None);
            assert!(replayed.is_complete());
            assert_outputs_bit_identical(&reference, &replayed, &format!("{context} (replay)"));
            assert_eq!(
                std::fs::read(&path).expect("journal exists"),
                bytes_after_resume,
                "{context}: pure replay grew the journal"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

//= pftk#crash-resume type=test
#[test]
fn non_reno_campaign_checkpoint_resumes_bit_identically() {
    // The checkpoint path must restore *variant* controller state, not
    // just Reno's: run the kill/resume cycle under CUBIC, whose snapshot
    // carries epoch geometry (w_max, K, epoch start) absent from Reno.
    use padhye_tcp_repro::sim::cc::CcAlgorithm;
    const CC: CcAlgorithm = CcAlgorithm::Cubic;
    const CC_SEED: u64 = BASE_SEED ^ 0xCC;
    let cfg = |crash| JournalConfig {
        cc: CC,
        ..config(2, crash)
    };
    let run_cc = |path: &std::path::Path, crash| {
        run_table2_journaled(&TABLE2_PATHS[..4], CC_SEED, path, &cfg(crash)).expect("journal I/O")
    };

    let ref_path = journal_path("cubic-reference");
    let reference = run_cc(&ref_path, None);
    assert!(
        reference.is_complete(),
        "reference campaign must be clean: {}",
        reference.summary()
    );
    let total_ticks = count_checkpoints(&ref_path);
    assert!(total_ticks >= 8, "too few checkpoints ({total_ticks})");
    let _ = std::fs::remove_file(&ref_path);

    let path = journal_path("cubic-kill");
    let crashed = run_cc(&path, Some(CrashPoint::after(1 + total_ticks / 3)));
    assert!(
        crashed.rows.iter().any(|r| r.outcome == Outcome::Panicked),
        "kill left no attributable hole"
    );

    let resumed = run_cc(&path, None);
    assert!(
        resumed.is_complete(),
        "resume left holes: {}",
        resumed.summary()
    );
    assert!(
        resumed.rows.iter().any(|r| r.outcome == Outcome::Resumed),
        "no row was checkpoint-resumed under {CC:?}"
    );
    assert_outputs_bit_identical(&reference, &resumed, "cubic resume");
    let _ = std::fs::remove_file(&path);
}

//= pftk#journal-torn-tail type=test
#[test]
fn torn_or_corrupt_journal_recovers_without_panicking() {
    let ref_path = journal_path("torn-reference");
    let reference = run(&ref_path, 2, None);
    assert!(reference.is_complete());
    let _ = std::fs::remove_file(&ref_path);

    // Crash a campaign, then damage the journal the way a real crash or a
    // bad disk would, and resume. Recovery must never panic and the final
    // outputs must still be bit-identical — damaged suffixes only cost
    // re-simulation.
    let total_ticks = {
        let probe = journal_path("torn-probe");
        let _ = run(&probe, 2, None);
        let n = count_checkpoints(&probe);
        let _ = std::fs::remove_file(&probe);
        n
    };

    // Scenario 1: torn tail — the file ends mid-record.
    let path = journal_path("torn-tail");
    let _ = run(&path, 2, Some(CrashPoint::after(1 + total_ticks / 3)));
    let mut bytes = std::fs::read(&path).expect("journal exists");
    bytes.truncate(bytes.len().saturating_sub(3));
    std::fs::write(&path, &bytes).expect("truncate journal");
    let resumed = run(&path, 2, None);
    assert!(
        resumed.is_complete(),
        "torn tail: resume left holes: {}",
        resumed.summary()
    );
    assert_outputs_bit_identical(&reference, &resumed, "torn tail");
    let _ = std::fs::remove_file(&path);

    // Scenario 2: corrupt record in the middle — everything from the
    // damaged record on is treated as truncated and re-run.
    let path = journal_path("corrupt-mid");
    let _ = run(&path, 2, Some(CrashPoint::after(1 + total_ticks / 3)));
    let mut bytes = std::fs::read(&path).expect("journal exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).expect("corrupt journal");
    let resumed = run(&path, 2, None);
    assert!(
        resumed.is_complete(),
        "corrupt record: resume left holes: {}",
        resumed.summary()
    );
    assert_outputs_bit_identical(&reference, &resumed, "corrupt record");
    let _ = std::fs::remove_file(&path);
}
