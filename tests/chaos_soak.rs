//! Chaos soak: seeded random fault plans driven through the full
//! sim → trace → analyzer → model pipeline, asserting that every layer
//! degrades gracefully — conservation invariants hold on the trace, the
//! analyzer's counters stay consistent, and the model's outputs stay
//! finite and non-negative — plus the supervised-campaign acceptance
//! scenario (an injected panicking path and an injected hanging path
//! degrade a 24-path campaign to labeled holes, never a dead run).
//!
//! Seeds are pinned (CI runs a matrix over them); set `PFTK_CHAOS_SEED`
//! to soak a single different seed.

use std::sync::Arc;
use std::time::Duration;

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::fault::FaultPlan;
use padhye_tcp_repro::sim::link::Path;
use padhye_tcp_repro::sim::loss::Bernoulli;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::stats::ConnStats;
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};
use padhye_tcp_repro::testbed::{
    run_campaign, ExperimentResult, JobSpec, Outcome, SupervisorConfig, TraceRecorder,
};
use padhye_tcp_repro::trace::analyzer::{analyze, AnalyzerConfig};
use padhye_tcp_repro::trace::karn::estimate_timing;
use padhye_tcp_repro::trace::record::Trace;
use padhye_tcp_repro::trace::stream::{StreamAnalysis, StreamConfig};
use padhye_tcp_repro::trace::validate::conservation;

/// The pinned soak seeds (the CI chaos job runs one process per seed).
const PINNED_SEEDS: [u64; 3] = [1, 2, 3];

fn soak_seeds() -> Vec<u64> {
    match std::env::var("PFTK_CHAOS_SEED") {
        Ok(s) => vec![s.trim().parse().expect("PFTK_CHAOS_SEED must be a u64")],
        Err(_) => PINNED_SEEDS.to_vec(),
    }
}

/// One chaos connection: moderate Bernoulli wire loss plus the full
/// seeded [`FaultPlan`] (reordering, duplication, ACK loss, jitter bursts,
/// link flaps, corruption), 300 simulated seconds under an event budget.
fn chaos_run(seed: u64, horizon_secs: f64) -> (Trace, ConnStats, bool) {
    let half = SimDuration::from_millis(50);
    let mut conn = Connection::builder()
        .fwd_path(Path::constant(half))
        .rev_path(Path::constant(half))
        .loss(Box::new(Bernoulli::new(0.02)))
        .fault(FaultPlan::from_seed(seed))
        .sender_config(SenderConfig::default())
        .seed(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1))
        .build_with_observer(TraceRecorder::new());
    let budget_hit = conn.run_until_budget(SimTime::from_secs_f64(horizon_secs), 5_000_000);
    conn.finish();
    let stats = conn.stats();
    (conn.into_observer().into_trace(), stats, budget_hit)
}

#[test]
fn chaos_soak_invariants_hold_for_all_pinned_seeds() {
    for seed in soak_seeds() {
        let (trace, stats, budget_hit) = chaos_run(seed, 300.0);
        assert!(
            !budget_hit,
            "seed {seed}: 300 s under chaos must fit the event budget"
        );
        assert!(stats.packets_sent > 0, "seed {seed}: nothing was sent");
        assert!(
            stats.packets_delivered <= stats.packets_sent + stats.packets_dropped,
            "seed {seed}: deliveries exceed sends (duplication must not mint data)"
        );
        assert_eq!(
            stats.packets_sent,
            stats.packets_sent_new + stats.retransmissions,
            "seed {seed}: send counters inconsistent"
        );

        // Trace-layer conservation: the sender-side trace survives the
        // chaos bit-exact in structure.
        let c = conservation(&trace);
        assert!(
            c.holds(),
            "seed {seed}: conservation violated: {c:?} over {} records",
            trace.len()
        );

        // Analyzer-layer consistency on the chaotic trace.
        let a = analyze(&trace, AnalyzerConfig::default());
        assert_eq!(
            a.packets_sent, stats.packets_sent,
            "seed {seed}: analyzer lost sends"
        );
        assert!(a.retransmissions <= a.packets_sent);
        assert!(
            (0.0..=1.0).contains(&a.loss_rate()),
            "seed {seed}: loss rate {} out of range",
            a.loss_rate()
        );
        assert!(
            a.indications
                .windows(2)
                .all(|w| w[0].time_ns <= w[1].time_ns),
            "seed {seed}: loss indications out of order"
        );
        assert_eq!(a.to_histogram().iter().sum::<u64>(), a.to_count());

        // Model-layer: fit at the measured (chaotic) operating point; the
        // outputs must stay finite and non-negative.
        let timing = estimate_timing(&trace);
        let rtt = timing.mean_rtt.unwrap_or(0.2).max(1e-3);
        let t0 = timing.mean_t0.unwrap_or(1.5).max(1e-3);
        let params = ModelParams::new(rtt, t0, 2, 64).expect("plausible params");
        for p_val in [a.loss_rate().clamp(1e-6, 0.5), 0.01, 0.1] {
            let p = LossProb::new(p_val).expect("clamped into range");
            for (name, rate) in [
                ("full", full_model(p, &params)),
                ("approx", approx_model(p, &params)),
                ("td-only", td_only(p, &params)),
            ] {
                assert!(
                    rate.is_finite() && rate >= 0.0,
                    "seed {seed}: {name} model returned {rate} at p={p_val}"
                );
            }
        }
    }
}

#[test]
fn chaos_runs_replay_identically() {
    // Replayable chaos: the same seed must give a bit-identical campaign.
    for seed in soak_seeds() {
        let (trace_a, stats_a, _) = chaos_run(seed, 120.0);
        let (trace_b, stats_b, _) = chaos_run(seed, 120.0);
        assert_eq!(stats_a, stats_b, "seed {seed}: stats diverged on replay");
        assert_eq!(trace_a, trace_b, "seed {seed}: trace diverged on replay");
    }
}

/// A cheap but real experiment for campaign jobs: 30 chaotic simulated
/// seconds, fenced by an event budget.
fn quick_experiment(seed: u64) -> ExperimentResult {
    let horizon = 30.0;
    let (trace, stats, event_budget_hit) = chaos_run(seed, horizon);
    let stream = StreamAnalysis::from_trace(&trace, StreamConfig::default(), Some(horizon));
    ExperimentResult {
        stream,
        trace: Some(trace),
        stats,
        ground_rtt: None,
        ground_t0: None,
        duration_secs: horizon,
        event_budget_hit,
    }
}

#[test]
fn campaign_with_injected_panic_and_hang_degrades_gracefully() {
    // The acceptance scenario: 24 paths, one panics, one wedges forever.
    let mut jobs: Vec<JobSpec> = (0..24u64)
        .map(|i| JobSpec {
            label: format!("path-{i}"),
            seed: i + 1,
            job: Arc::new(quick_experiment),
        })
        .collect();
    jobs[7] = JobSpec {
        label: "injected-panic".into(),
        seed: 8,
        job: Arc::new(|_seed| panic!("injected: model divergence on this path")),
    };
    jobs[15] = JobSpec {
        label: "injected-hang".into(),
        seed: 16,
        // An infinite loop that yields (so the abandoned worker does not
        // burn a core for the rest of the test binary's life).
        job: Arc::new(|_seed| loop {
            std::thread::sleep(Duration::from_millis(25));
        }),
    };
    let config = SupervisorConfig {
        wall_budget: Duration::from_secs(10),
        retry: true,
        max_workers: 0,
        schedule_chaos: None,
    };
    let report = run_campaign(jobs, &config);

    assert_eq!(report.rows.len(), 24, "every submitted path gets a row");
    assert!(
        report.ok_count() >= 22,
        "healthy paths must survive the chaos: {}",
        report.summary()
    );
    assert!(!report.is_complete());
    assert_eq!(report.rows[7].outcome, Outcome::Panicked);
    assert!(report.rows[7].result.is_none());
    assert_eq!(report.rows[15].outcome, Outcome::TimedOut);
    assert!(report.rows[15].result.is_none());
    let summary = report.summary();
    assert!(
        summary.contains("injected-panic panicked") && summary.contains("injected-hang timed-out"),
        "failures must be labeled: {summary}"
    );
    // The survivors carry real, analyzable traces.
    for (i, row) in report.rows.iter().enumerate() {
        if i == 7 || i == 15 {
            continue;
        }
        assert_eq!(row.outcome, Outcome::Ok, "row {i}: {}", row.label);
        let result = row.result.as_ref().expect("ok row has a result");
        assert!(result.stats.packets_sent > 0);
        let trace = result.trace.as_ref().expect("chaos jobs retain traces");
        assert!(conservation(trace).holds(), "row {i}");
        // The streamed analysis the job carries matches a batch re-analysis
        // of the very trace it retained — even under fault injection.
        assert_eq!(
            result.analysis(),
            &analyze(trace, AnalyzerConfig::default()),
            "row {i}: streamed analysis diverged from batch"
        );
    }
}
