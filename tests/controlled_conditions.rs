//! Controlled-conditions validation: drive the packet-level TCP Reno
//! simulator under conditions that match the model's assumptions as closely
//! as the implementation allows — per-ACK acking (b = 1), constant RTT, the
//! paper's round-correlated loss — and check that the closed form's fit
//! tightens relative to the realistic (delayed-ACK, jittered) setup.

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::RoundCorrelated;
use padhye_tcp_repro::sim::receiver::ReceiverConfig;
use padhye_tcp_repro::sim::reno::rto::RtoConfig;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::SimDuration;

const HORIZON: f64 = 1800.0;
const RTT: f64 = 0.1;
const WMAX: u32 = 48;

struct Outcome {
    rate: f64,
    p_obs: f64,
    t0_obs: f64,
}

fn run_with(b: u32, wire_p: f64, seed: u64, bursty: bool) -> Outcome {
    use padhye_tcp_repro::sim::loss::{Bernoulli, LossModel};
    let sender = SenderConfig {
        rwnd: WMAX,
        rto: RtoConfig {
            min_rto: SimDuration::from_secs_f64(1.0),
            initial_rto: SimDuration::from_secs_f64(1.0),
            ..RtoConfig::default()
        },
        ..SenderConfig::default()
    };
    let receiver = ReceiverConfig {
        ack_every: b,
        ..ReceiverConfig::default()
    };
    let loss: Box<dyn LossModel + Send> = if bursty {
        Box::new(RoundCorrelated::new(wire_p))
    } else {
        Box::new(Bernoulli::new(wire_p))
    };
    let mut c = Connection::builder()
        .rtt(RTT)
        .loss(loss)
        .sender_config(sender)
        .receiver_config(receiver)
        .seed(seed)
        .build();
    c.run_for(SimDuration::from_secs_f64(HORIZON));
    c.finish();
    let stats = c.stats();
    Outcome {
        rate: stats.packets_sent as f64 / HORIZON,
        p_obs: stats.loss_indication_rate().clamp(1e-6, 0.9),
        t0_obs: c.sender().rto_estimator().mean_t0().unwrap_or(1.0),
    }
}

fn model_fit(b: u32, wire_p: f64, bursty: bool) -> (f64, f64) {
    // Mean |model − sim| / sim and mean signed (model − sim)/sim over seeds.
    let seeds = [1u64, 2, 3];
    let mut err = 0.0;
    let mut signed = 0.0;
    for &seed in &seeds {
        let o = run_with(b, wire_p, seed, bursty);
        let params = ModelParams::new(RTT, o.t0_obs, b, WMAX).unwrap();
        let predicted = full_model(LossProb::new(o.p_obs).unwrap(), &params);
        err += (predicted - o.rate).abs() / o.rate;
        signed += (predicted - o.rate) / o.rate;
    }
    (err / seeds.len() as f64, signed / seeds.len() as f64)
}

#[test]
//= pftk#eq-32 type=test
//= pftk#loss-model type=test
fn model_fits_simulator_within_paper_error_bands() {
    // Constant RTT, the paper's round-correlated loss, generous window.
    // Whole-round bursts put real Reno in the timeout-dominated regime
    // where the paper's own full-model errors reach 0.7–0.9 (Fig. 9); we
    // require the same band, and that the deviation is the documented
    // *optimism* (model above measurement), not scatter.
    for wire_p in [0.005, 0.01, 0.02] {
        let (err, signed) = model_fit(1, wire_p, true);
        assert!(
            err < 0.7,
            "round-correlated, wire_p={wire_p}: model error {err:.3}"
        );
        assert!(
            signed > 0.0,
            "wire_p={wire_p}: deviation should be over-prediction, got {signed:.3}"
        );
    }
}

#[test]
fn bernoulli_losses_fit_tighter_than_bursts() {
    // §IV: the model predicted throughput "quite well, even with Bernoulli
    // losses". Isolated losses mostly recover by a single fast retransmit —
    // the process the closed form describes — so the fit must be tighter
    // than under whole-round bursts.
    let wire_p = 0.01;
    let (err_bern, _) = model_fit(1, wire_p, false);
    let (err_burst, _) = model_fit(1, wire_p, true);
    assert!(
        err_bern < err_burst,
        "Bernoulli error {err_bern:.3} should beat bursty error {err_burst:.3}"
    );
    assert!(
        err_bern < 0.35,
        "Bernoulli fit {err_bern:.3} should be tight"
    );
}

#[test]
//= pftk#delack-b type=test
fn delayed_acks_match_b2_model_variant() {
    // With delayed ACKs the b = 2 model must fit better than the b = 1
    // model evaluated on the same runs — the delayed-ACK factor is doing
    // real work in the formula.
    let wire_p = 0.01;
    let seeds = [5u64, 6, 7];
    let (mut err_b2, mut err_b1) = (0.0, 0.0);
    for &seed in &seeds {
        let o = run_with(2, wire_p, seed, true);
        let lp = LossProb::new(o.p_obs).unwrap();
        let m2 = full_model(lp, &ModelParams::new(RTT, o.t0_obs, 2, WMAX).unwrap());
        let m1 = full_model(lp, &ModelParams::new(RTT, o.t0_obs, 1, WMAX).unwrap());
        err_b2 += (m2 - o.rate).abs() / o.rate;
        err_b1 += (m1 - o.rate).abs() / o.rate;
    }
    assert!(
        err_b2 < err_b1,
        "b=2 model error {:.3} should beat b=1 error {:.3} on delayed-ACK runs",
        err_b2 / 3.0,
        err_b1 / 3.0
    );
}

#[test]
fn per_ack_acking_sends_faster_than_delayed() {
    // b = 1 grows the window twice as fast; the model says rate scales like
    // √(b)… verify the simulator agrees directionally.
    let fast = run_with(1, 0.01, 9, true).rate;
    let slow = run_with(2, 0.01, 9, true).rate;
    assert!(
        fast > slow,
        "per-ACK acking {fast:.1} pkt/s should beat delayed {slow:.1} pkt/s"
    );
}
