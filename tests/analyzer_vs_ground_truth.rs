//! The trace analyzer is validated against the simulator's ground-truth
//! counters — the reproduction's analogue of the paper verifying its
//! analysis programs "against tcptrace and ns" (§III).

use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::{Bernoulli, RoundCorrelated};
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::SimDuration;
use padhye_tcp_repro::testbed::TraceRecorder;
use padhye_tcp_repro::trace::analyzer::{analyze, AnalyzerConfig};
use padhye_tcp_repro::trace::karn::estimate_timing;

fn run_traced(
    p: f64,
    rtt: f64,
    dupthresh: u32,
    secs: f64,
    seed: u64,
) -> (
    padhye_tcp_repro::trace::Trace,
    padhye_tcp_repro::sim::ConnStats,
    Option<f64>,
) {
    let sender = SenderConfig {
        dupthresh,
        ..SenderConfig::default()
    };
    let mut conn = Connection::builder()
        .rtt(rtt)
        .loss(Box::new(RoundCorrelated::new(p)))
        .sender_config(sender)
        .seed(seed)
        .build_with_observer(TraceRecorder::new());
    conn.run_for(SimDuration::from_secs_f64(secs));
    conn.finish();
    let stats = conn.stats();
    let rtt_truth = conn.sender().rto_estimator().mean_rtt();
    (conn.into_observer().into_trace(), stats, rtt_truth)
}

#[test]
fn packet_counts_match_exactly() {
    let (trace, stats, _) = run_traced(0.02, 0.1, 3, 300.0, 1);
    let a = analyze(&trace, AnalyzerConfig::default());
    assert_eq!(a.packets_sent, stats.packets_sent);
    assert_eq!(a.retransmissions, stats.retransmissions);
    assert_eq!(a.acks_seen, stats.acks_received);
}

#[test]
fn loss_indication_counts_close_to_ground_truth() {
    let (trace, stats, _) = run_traced(0.02, 0.1, 3, 1800.0, 2);
    let a = analyze(&trace, AnalyzerConfig::default());
    let truth = stats.loss_indications();
    let inferred = a.indications.len() as u64;
    let diff = truth.abs_diff(inferred) as f64 / truth as f64;
    assert!(
        diff < 0.05,
        "inferred {inferred} vs ground truth {truth} indications"
    );
}

#[test]
//= pftk#td-to-classify type=test
fn td_to_split_close_to_ground_truth() {
    let (trace, stats, _) = run_traced(0.02, 0.1, 3, 1800.0, 3);
    let a = analyze(&trace, AnalyzerConfig::default());
    let td_truth = stats.td_events;
    let to_truth = stats.to_events();
    let td = a.td_count();
    let to = a.to_count();
    assert!(
        td.abs_diff(td_truth) as f64 / td_truth.max(1) as f64 <= 0.15,
        "TD: inferred {td}, truth {td_truth}"
    );
    assert!(
        to.abs_diff(to_truth) as f64 / to_truth.max(1) as f64 <= 0.15,
        "TO: inferred {to}, truth {to_truth}"
    );
}

#[test]
fn timeout_histogram_close_to_ground_truth() {
    let (trace, stats, _) = run_traced(0.05, 0.1, 3, 1800.0, 4);
    let a = analyze(&trace, AnalyzerConfig::default());
    let hist = a.to_histogram();
    for (i, (&inferred, &truth)) in hist.iter().zip(&stats.to_sequences).enumerate() {
        let tol = (truth / 5).max(4);
        assert!(
            inferred.abs_diff(truth) <= tol,
            "bucket T{i}: inferred {inferred}, truth {truth} (tolerance {tol})"
        );
    }
}

#[test]
fn linux_dupthresh_matters_and_analyzer_tracks_it() {
    // Run a Linux-style sender (dupthresh 2); analyzing with the wrong
    // threshold must misclassify TDs as timeouts, analyzing with the right
    // one must match ground truth.
    let (trace, stats, _) = run_traced(0.015, 0.1, 2, 1800.0, 5);
    let correct = analyze(
        &trace,
        AnalyzerConfig {
            dupack_threshold: 2,
        },
    );
    let wrong = analyze(
        &trace,
        AnalyzerConfig {
            dupack_threshold: 3,
        },
    );
    assert!(stats.td_events > 10, "need TDs for the comparison");
    let correct_err = correct.td_count().abs_diff(stats.td_events);
    let wrong_err = wrong.td_count().abs_diff(stats.td_events);
    assert!(
        correct_err < wrong_err,
        "threshold-2 analysis ({} TDs) must beat threshold-3 ({} TDs) \
         against ground truth {}",
        correct.td_count(),
        wrong.td_count(),
        stats.td_events
    );
}

#[test]
//= pftk#karn-rto type=test
fn karn_rtt_close_to_ground_truth() {
    let (trace, _, rtt_truth) = run_traced(0.01, 0.2, 3, 600.0, 6);
    let est = estimate_timing(&trace);
    let measured = est.mean_rtt.unwrap();
    let truth = rtt_truth.unwrap();
    assert!(
        (measured - truth).abs() / truth < 0.15,
        "trace RTT {measured:.4} vs sender ground truth {truth:.4}"
    );
}

#[test]
//= pftk#loss-rate-estimate type=test
fn estimated_p_close_to_ground_truth_rate() {
    let (trace, stats, _) = run_traced(0.03, 0.1, 3, 1800.0, 7);
    let a = analyze(&trace, AnalyzerConfig::default());
    let truth = stats.loss_indication_rate();
    assert!(
        (a.loss_rate() - truth).abs() / truth < 0.05,
        "p inferred {} vs truth {truth}",
        a.loss_rate()
    );
}

#[test]
fn analyzer_consistent_under_bernoulli_loss_too() {
    // The analyzer makes no assumption about the loss process.
    let mut conn = Connection::builder()
        .rtt(0.1)
        .loss(Box::new(Bernoulli::new(0.02)))
        .seed(8)
        .build_with_observer(TraceRecorder::new());
    conn.run_for(SimDuration::from_secs_f64(1200.0));
    conn.finish();
    let stats = conn.stats();
    let trace = conn.into_observer().into_trace();
    let a = analyze(&trace, AnalyzerConfig::default());
    assert_eq!(a.packets_sent, stats.packets_sent);
    let truth = stats.loss_indications();
    let rel = (a.indications.len() as u64).abs_diff(truth) as f64 / truth as f64;
    assert!(
        rel < 0.06,
        "inferred {} vs truth {truth}",
        a.indications.len()
    );
}
