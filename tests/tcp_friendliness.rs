//! The §I application, end to end: the PFTK equation defines the
//! "TCP-friendly" rate for a non-TCP flow, and a CBR source obeying it
//! coexists with TCP on a shared bottleneck — while one exceeding it
//! starves TCP. This is the scenario that motivated equation-based
//! congestion control (and later TFRC).

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::network::{FlowConfig, Network};
use padhye_tcp_repro::sim::queue::DropTail;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::SimDuration;

const LINK_PPS: f64 = 100.0;
const RTT: f64 = 0.1;
const HORIZON: f64 = 600.0;

fn run_tcp_vs_cbr(cbr_rate: f64, seed: u64) -> (f64, f64, f64) {
    let mut net = Network::new(LINK_PPS, Box::new(DropTail::new(25)), seed);
    let tcp = net.add_flow(FlowConfig::tcp(RTT, SenderConfig::default()));
    let cbr = net.add_flow(FlowConfig::cbr(RTT, cbr_rate));
    net.run_for(SimDuration::from_secs_f64(HORIZON));
    net.finish();
    let stats = net.stats();
    let tcp_rate = stats[tcp].delivered as f64 / HORIZON;
    let cbr_goodput = stats[cbr].delivered as f64 / HORIZON;
    let tcp_p = stats[tcp].tcp.as_ref().unwrap().loss_indication_rate();
    (tcp_rate, cbr_goodput, tcp_p)
}

/// Measures the operating point of TCP sharing the link with another TCP,
/// then computes the PFTK-friendly rate at that point.
fn friendly_rate(seed: u64) -> f64 {
    let mut net = Network::new(LINK_PPS, Box::new(DropTail::new(25)), seed);
    let f0 = net.add_flow(FlowConfig::tcp(RTT, SenderConfig::default()));
    net.add_flow(FlowConfig::tcp(RTT, SenderConfig::default()));
    net.run_for(SimDuration::from_secs_f64(HORIZON));
    net.finish();
    let stats = net.stats();
    let tcp_stats = stats[f0].tcp.as_ref().unwrap();
    let p = tcp_stats.loss_indication_rate().clamp(1e-6, 0.9);
    // RTT includes queueing at the shared bottleneck; a drop-tail buffer of
    // 25 packets at 100 pkt/s adds up to 0.25 s — use the mid-queue value,
    // as an equation-based endpoint measuring its own RTT would see.
    let measured_rtt = RTT + 25.0 / LINK_PPS / 2.0;
    let params = ModelParams::new(measured_rtt, 1.0, 2, u16::MAX as u32).unwrap();
    tcp_friendly_rate(LossProb::new(p).unwrap(), &params, ModelKind::Full)
}

#[test]
//= pftk#tcp-friendly type=test
fn friendly_rate_is_near_the_fair_share() {
    let rate = friendly_rate(11);
    // Two flows on a 100 pkt/s link: fair share is 50. The equation should
    // land in the right neighbourhood (factor ~2 band: it is a model, and
    // the measured p/RTT are themselves noisy).
    assert!(
        (25.0..=100.0).contains(&rate),
        "TCP-friendly rate {rate:.1} pkt/s vs fair share 50"
    );
}

#[test]
//= pftk#eq-33 type=test
//= pftk#tcp-friendly type=test
fn cbr_at_friendly_rate_coexists_with_tcp() {
    let friendly = friendly_rate(12).min(LINK_PPS * 0.6);
    let (tcp_rate, cbr_goodput, _) = run_tcp_vs_cbr(friendly, 13);
    // TCP keeps a substantial share.
    assert!(
        tcp_rate > 0.25 * LINK_PPS,
        "TCP got {tcp_rate:.1} pkt/s next to a friendly CBR of {friendly:.1}"
    );
    // And the CBR actually delivers close to its rate.
    assert!(cbr_goodput > 0.8 * friendly);
}

#[test]
fn cbr_above_friendly_rate_starves_tcp() {
    let friendly = friendly_rate(14).min(LINK_PPS * 0.6);
    let (tcp_ok, _, _) = run_tcp_vs_cbr(friendly, 15);
    let (tcp_starved, _, p_starved) = run_tcp_vs_cbr(LINK_PPS * 0.98, 15);
    assert!(
        tcp_starved < 0.5 * tcp_ok,
        "TCP vs near-capacity CBR: {tcp_starved:.1} pkt/s, vs friendly case {tcp_ok:.1}"
    );
    // The starved TCP sees much higher loss.
    assert!(p_starved > 0.01, "starved-TCP loss rate {p_starved}");
}

#[test]
fn model_predicts_tcp_share_under_cbr_load() {
    // Quantitative closure: run TCP against a fixed 50 pkt/s CBR, measure
    // (p, queue-inflated RTT), and check B(p) lands within a factor band of
    // TCP's actual rate.
    let (tcp_rate, _, p) = run_tcp_vs_cbr(50.0, 16);
    let measured_rtt = RTT + 25.0 / LINK_PPS / 2.0;
    let params = ModelParams::new(measured_rtt, 1.0, 2, u16::MAX as u32).unwrap();
    let predicted = full_model(LossProb::new(p.clamp(1e-6, 0.9)).unwrap(), &params);
    let ratio = predicted / tcp_rate;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "model {predicted:.1} vs simulated {tcp_rate:.1} pkt/s (ratio {ratio:.2})"
    );
}
