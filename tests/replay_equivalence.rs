//! Replay-equivalence gate: the dynamic half of the determinism audit.
//!
//! `pftk-audit` proves statically that no wall-clock, unordered-container,
//! or ad-hoc RNG nondeterminism reaches the result path; this gate proves
//! the property end to end. The same pinned-seed campaign over the first
//! eight Table II paths is executed by the supervised worker pool at 1, 2,
//! and 8 workers — and again with schedule chaos injected (seeded
//! yield-point shuffling plus rotated steal order inside the pool) — and
//! every run must reproduce the single-worker reference **bit for bit**:
//! identical traces, identical stats, identical calibration floats
//! (compared via `f64::to_bits`, not epsilon).
//!
//! Worker-pool scheduling may therefore affect only *when* a job runs,
//! never *what* it computes or *where* its row lands. CI runs a matrix
//! over `PFTK_REPLAY_WORKERS=1|2|8`; unset, each test sweeps all three.
//!
//! Jobs are real Table II hour-runs truncated by a small event budget so
//! the gate stays cheap in debug builds; truncation is itself
//! deterministic (the budget is counted in simulated events, not time).
//!
//! The `fleet_*` tests extend the gate to the sharded fleet executor:
//! the same seeded multi-cohort campaign at 1, 2, and 8 shards (CI
//! matrix: `PFTK_FLEET_SHARDS`), with and without schedule chaos, must
//! serialize to byte-identical reports — f64 folds and all.
//! `PFTK_FLEET_FLOWS` scales the population (default 2000, debug-friendly).

use std::sync::Arc;
use std::time::Duration;

use padhye_tcp_repro::sim::fleet::WheelConfig;
use padhye_tcp_repro::sim::rounds::RoundsConfig;
use padhye_tcp_repro::testbed::{
    run_campaign, run_fleet, run_fleet_with, run_hour_budgeted_with, CampaignReport,
    ExperimentOptions, FleetCampaignSpec, FleetCohortSpec, JobSpec, Outcome, SupervisorConfig,
    TABLE2_PATHS,
};

/// Pinned campaign seed. Never change it casually: the point of the gate
/// is that this exact seed replays bit-identically everywhere.
const BASE_SEED: u64 = 0x00DE_7E57_2026;

/// Simulated-event budget per job — small enough that the whole sweep
/// stays in tier-1 time even unoptimized, large enough that every path
/// sees slow start, steady state, and recovery.
const EVENT_BUDGET: u64 = 120_000;

/// How many Table II paths the campaign covers. Must be >= the largest
/// worker count exercised: `run_campaign` clamps its worker fleet to the
/// job count, so fewer jobs would silently demote the 8-worker run.
const JOBS: usize = 8;

fn campaign_jobs() -> Vec<JobSpec> {
    TABLE2_PATHS[..JOBS]
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let spec = *spec;
            JobSpec {
                label: spec.id(),
                seed: BASE_SEED.wrapping_add(i as u64),
                // Retained so the gate can compare full traces record for
                // record on top of the streamed analysis.
                job: Arc::new(move |seed| {
                    run_hour_budgeted_with(
                        &spec,
                        seed,
                        EVENT_BUDGET,
                        &ExperimentOptions::retained(),
                    )
                }),
            }
        })
        .collect()
}

fn run_with(workers: usize, schedule_chaos: Option<u64>) -> CampaignReport {
    let config = SupervisorConfig {
        wall_budget: Duration::from_secs(120),
        retry: false,
        max_workers: workers,
        schedule_chaos,
    };
    run_campaign(campaign_jobs(), &config)
}

/// Worker counts under test: the full `[1, 2, 8]` sweep, or the single
/// count named by `PFTK_REPLAY_WORKERS` (the CI determinism matrix runs
/// one process per count so a divergence names its worker count).
fn worker_counts() -> Vec<usize> {
    match std::env::var("PFTK_REPLAY_WORKERS") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("PFTK_REPLAY_WORKERS must be a worker count")],
        Err(_) => vec![1, 2, 8],
    }
}

/// Asserts two campaign reports are bit-identical, row by row. Floats are
/// compared by bit pattern: an "equal within epsilon" replay is a broken
/// replay.
fn assert_bit_identical(reference: &CampaignReport, candidate: &CampaignReport, context: &str) {
    assert_eq!(
        reference.rows.len(),
        candidate.rows.len(),
        "{context}: row count diverged"
    );
    for (i, (a, b)) in reference.rows.iter().zip(&candidate.rows).enumerate() {
        let at = format!("{context}: row {i} ({})", a.label);
        assert_eq!(a.label, b.label, "{at}: label");
        assert_eq!(a.seed, b.seed, "{at}: seed");
        assert_eq!(a.outcome, b.outcome, "{at}: outcome");
        assert_eq!(a.attempts, b.attempts, "{at}: attempts");
        let ra = a.result.as_ref().expect("reference row has a result");
        let rb = b
            .result
            .as_ref()
            .unwrap_or_else(|| panic!("{at}: no result"));
        assert_eq!(ra.stats, rb.stats, "{at}: stats diverged");
        assert_eq!(
            ra.ground_rtt.map(f64::to_bits),
            rb.ground_rtt.map(f64::to_bits),
            "{at}: ground_rtt bits diverged"
        );
        assert_eq!(
            ra.ground_t0.map(f64::to_bits),
            rb.ground_t0.map(f64::to_bits),
            "{at}: ground_t0 bits diverged"
        );
        assert_eq!(
            ra.duration_secs.to_bits(),
            rb.duration_secs.to_bits(),
            "{at}: duration bits diverged"
        );
        assert_eq!(
            ra.event_budget_hit, rb.event_budget_hit,
            "{at}: budget flag diverged"
        );
        // The streamed analysis, including its float reductions bit for
        // bit (PartialEq would call -0.0 == 0.0 a match; the bits say no).
        assert_eq!(ra.stream, rb.stream, "{at}: streamed analysis diverged");
        assert_eq!(
            ra.timing().and_then(|t| t.mean_rtt).map(f64::to_bits),
            rb.timing().and_then(|t| t.mean_rtt).map(f64::to_bits),
            "{at}: streamed RTT bits diverged"
        );
        assert_eq!(
            ra.timing().and_then(|t| t.mean_t0).map(f64::to_bits),
            rb.timing().and_then(|t| t.mean_t0).map(f64::to_bits),
            "{at}: streamed T0 bits diverged"
        );
        assert_eq!(
            ra.rtt_window_corr().map(f64::to_bits),
            rb.rtt_window_corr().map(f64::to_bits),
            "{at}: streamed correlation bits diverged"
        );
        // The big one: the full event trace, record for record (these
        // jobs run retained precisely so this compare stays meaningful).
        assert!(ra.trace.is_some(), "{at}: retained run lost its trace");
        assert_eq!(ra.trace, rb.trace, "{at}: trace diverged");
    }
}

//= pftk#det-replay type=test
#[test]
fn campaign_replays_bit_identically_across_worker_counts() {
    let reference = run_with(1, None);
    assert!(
        reference.is_complete(),
        "reference campaign must be clean: {}",
        reference.summary()
    );
    assert_eq!(reference.rows.len(), JOBS);
    for row in &reference.rows {
        assert_eq!(row.outcome, Outcome::Ok, "{}", row.label);
    }

    for workers in worker_counts() {
        let plain = run_with(workers, None);
        assert_bit_identical(&reference, &plain, &format!("{workers} workers"));

        // Same campaign under schedule chaos: the pool inserts seeded
        // yield points and rotates steal order, maximally perturbing which
        // worker runs which job when. Results must not notice.
        let chaotic = run_with(workers, Some(0xC4A0_5000 + workers as u64));
        assert_bit_identical(
            &reference,
            &chaotic,
            &format!("{workers} workers + schedule chaos"),
        );
    }
}

/// Fleet population under test: `PFTK_FLEET_FLOWS` (CI's fleet-smoke job
/// raises it to 10^4), defaulting to a debug-friendly 2000.
fn fleet_flows() -> u64 {
    match std::env::var("PFTK_FLEET_FLOWS") {
        Ok(s) => s
            .trim()
            .parse()
            .expect("PFTK_FLEET_FLOWS must be a flow count"),
        Err(_) => 2000,
    }
}

/// Shard counts under test: the full `[1, 2, 8]` sweep, or the single
/// count named by `PFTK_FLEET_SHARDS` (one CI matrix process per count).
fn fleet_shard_counts() -> Vec<usize> {
    match std::env::var("PFTK_FLEET_SHARDS") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("PFTK_FLEET_SHARDS must be a shard count")],
        Err(_) => vec![1, 2, 8],
    }
}

/// The pinned fleet campaign: two grid points (TD-heavy and
/// timeout-heavy) splitting the population 3:1, with a small wire audit
/// so the pooled-analyzer path is inside the equivalence boundary too.
fn fleet_campaign() -> FleetCampaignSpec {
    let flows = fleet_flows();
    let lossy = flows / 4;
    FleetCampaignSpec {
        cohorts: vec![
            FleetCohortSpec {
                label: "p=0.02 rtt=0.1 wmax=64".into(),
                config: RoundsConfig {
                    p: 0.02,
                    rtt: 0.1,
                    t0: 1.0,
                    b: 2,
                    wmax: 64,
                    ..RoundsConfig::default()
                },
                flows: flows - lossy,
            },
            FleetCohortSpec {
                label: "p=0.1 rtt=0.3 wmax=16".into(),
                config: RoundsConfig {
                    p: 0.1,
                    rtt: 0.3,
                    t0: 1.5,
                    b: 2,
                    wmax: 16,
                    ..RoundsConfig::default()
                },
                flows: lossy,
            },
        ],
        base_seed: BASE_SEED ^ 0xF1EE7,
        horizon_secs: 30.0,
        wheel: WheelConfig::default(),
        audit_flows_per_cohort: 2,
    }
}

/// Byte-exact report comparison: serializing to JSON makes every f64
/// fold part of the identity (two floats serialize identically iff their
/// bits match — modulo -0.0/0.0, which the fleet's sums never produce
/// from positive rates).
fn assert_fleet_identical(
    reference: &padhye_tcp_repro::testbed::FleetReport,
    candidate: &padhye_tcp_repro::testbed::FleetReport,
    context: &str,
) {
    let a = serde_json::to_string(reference).expect("reference report serializes");
    let b = serde_json::to_string(candidate).expect("candidate report serializes");
    assert_eq!(a, b, "{context}: fleet report diverged");
}

//= pftk#fleet-shard-equivalence type=test
#[test]
fn fleet_reports_are_bit_identical_across_shard_counts() {
    let spec = fleet_campaign();
    let reference = run_fleet(&spec, 1);
    assert_eq!(reference.total_flows, fleet_flows());
    assert!(reference.events > 0, "fleet did nothing");

    for shards in fleet_shard_counts() {
        let plain = run_fleet(&spec, shards);
        assert_fleet_identical(&reference, &plain, &format!("{shards} shards"));

        // Same campaign under schedule chaos: seeded yield points and
        // rotated steal order inside the worker pool perturb which worker
        // runs which shard when. Reports must not notice.
        let chaotic = run_fleet_with(&spec, shards, Some(0xF1EE_7C4A + shards as u64));
        assert_fleet_identical(
            &reference,
            &chaotic,
            &format!("{shards} shards + schedule chaos"),
        );
    }
}

/// A campaign mixing every congestion-control variant across cohorts:
/// the per-flow `CcState` dispatch must be as shard-invariant as Reno.
fn mixed_variant_campaign() -> FleetCampaignSpec {
    use padhye_tcp_repro::sim::cc::CcAlgorithm;
    let cohorts = CcAlgorithm::ALL
        .iter()
        .enumerate()
        .map(|(i, &algo)| FleetCohortSpec {
            label: format!("cc={} p=0.03 wmax=48", algo.label()),
            config: RoundsConfig {
                p: 0.03,
                rtt: 0.08 + 0.02 * i as f64,
                t0: 1.0,
                b: 2,
                wmax: 48,
                cc: algo,
                ..RoundsConfig::default()
            },
            flows: 240 + 40 * i as u64,
        })
        .collect();
    FleetCampaignSpec {
        cohorts,
        base_seed: BASE_SEED ^ 0xCC_A11,
        horizon_secs: 25.0,
        wheel: WheelConfig::default(),
        audit_flows_per_cohort: 1,
    }
}

//= pftk#fleet-shard-equivalence type=test
#[test]
fn mixed_variant_fleet_replays_bit_identically_across_shard_counts() {
    let spec = mixed_variant_campaign();
    let reference = run_fleet(&spec, 1);
    assert!(reference.events > 0, "mixed-variant fleet did nothing");
    assert_eq!(reference.cohorts.len(), spec.cohorts.len());

    for shards in fleet_shard_counts() {
        let plain = run_fleet(&spec, shards);
        assert_fleet_identical(&reference, &plain, &format!("mixed-cc {shards} shards"));

        let chaotic = run_fleet_with(&spec, shards, Some(0xCC0_5EED + shards as u64));
        assert_fleet_identical(
            &reference,
            &chaotic,
            &format!("mixed-cc {shards} shards + schedule chaos"),
        );
    }
}

//= pftk#fleet-shard-equivalence type=test
#[test]
fn fleet_chaos_seed_never_leaks_into_reports() {
    let spec = FleetCampaignSpec {
        cohorts: vec![FleetCohortSpec {
            label: "chaos-probe".into(),
            config: RoundsConfig {
                p: 0.05,
                rtt: 0.1,
                t0: 1.0,
                b: 2,
                wmax: 32,
                ..RoundsConfig::default()
            },
            flows: 600,
        }],
        base_seed: BASE_SEED ^ 0xC4A05,
        horizon_secs: 20.0,
        wheel: WheelConfig::default(),
        audit_flows_per_cohort: 0,
    };
    let a = run_fleet_with(&spec, 4, Some(1));
    let b = run_fleet_with(&spec, 4, Some(2));
    assert_fleet_identical(&a, &b, "fleet chaos seed 1 vs 2");
}

//= pftk#det-replay type=test
#[test]
fn chaos_seed_itself_never_leaks_into_results() {
    // Two different chaos seeds produce different schedules; the reports
    // must still match bit for bit — the chaos stream may only shape
    // scheduling, never observable output.
    let a = run_with(4, Some(1));
    let b = run_with(4, Some(2));
    assert_bit_identical(&a, &b, "chaos seed 1 vs 2");
}
