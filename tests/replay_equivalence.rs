//! Replay-equivalence gate: the dynamic half of the determinism audit.
//!
//! `pftk-audit` proves statically that no wall-clock, unordered-container,
//! or ad-hoc RNG nondeterminism reaches the result path; this gate proves
//! the property end to end. The same pinned-seed campaign over the first
//! eight Table II paths is executed by the supervised worker pool at 1, 2,
//! and 8 workers — and again with schedule chaos injected (seeded
//! yield-point shuffling plus rotated steal order inside the pool) — and
//! every run must reproduce the single-worker reference **bit for bit**:
//! identical traces, identical stats, identical calibration floats
//! (compared via `f64::to_bits`, not epsilon).
//!
//! Worker-pool scheduling may therefore affect only *when* a job runs,
//! never *what* it computes or *where* its row lands. CI runs a matrix
//! over `PFTK_REPLAY_WORKERS=1|2|8`; unset, each test sweeps all three.
//!
//! Jobs are real Table II hour-runs truncated by a small event budget so
//! the gate stays cheap in debug builds; truncation is itself
//! deterministic (the budget is counted in simulated events, not time).

use std::sync::Arc;
use std::time::Duration;

use padhye_tcp_repro::testbed::{
    run_campaign, run_hour_budgeted_with, CampaignReport, ExperimentOptions, JobSpec, Outcome,
    SupervisorConfig, TABLE2_PATHS,
};

/// Pinned campaign seed. Never change it casually: the point of the gate
/// is that this exact seed replays bit-identically everywhere.
const BASE_SEED: u64 = 0x00DE_7E57_2026;

/// Simulated-event budget per job — small enough that the whole sweep
/// stays in tier-1 time even unoptimized, large enough that every path
/// sees slow start, steady state, and recovery.
const EVENT_BUDGET: u64 = 120_000;

/// How many Table II paths the campaign covers. Must be >= the largest
/// worker count exercised: `run_campaign` clamps its worker fleet to the
/// job count, so fewer jobs would silently demote the 8-worker run.
const JOBS: usize = 8;

fn campaign_jobs() -> Vec<JobSpec> {
    TABLE2_PATHS[..JOBS]
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let spec = *spec;
            JobSpec {
                label: spec.id(),
                seed: BASE_SEED.wrapping_add(i as u64),
                // Retained so the gate can compare full traces record for
                // record on top of the streamed analysis.
                job: Arc::new(move |seed| {
                    run_hour_budgeted_with(
                        &spec,
                        seed,
                        EVENT_BUDGET,
                        &ExperimentOptions::retained(),
                    )
                }),
            }
        })
        .collect()
}

fn run_with(workers: usize, schedule_chaos: Option<u64>) -> CampaignReport {
    let config = SupervisorConfig {
        wall_budget: Duration::from_secs(120),
        retry: false,
        max_workers: workers,
        schedule_chaos,
    };
    run_campaign(campaign_jobs(), &config)
}

/// Worker counts under test: the full `[1, 2, 8]` sweep, or the single
/// count named by `PFTK_REPLAY_WORKERS` (the CI determinism matrix runs
/// one process per count so a divergence names its worker count).
fn worker_counts() -> Vec<usize> {
    match std::env::var("PFTK_REPLAY_WORKERS") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("PFTK_REPLAY_WORKERS must be a worker count")],
        Err(_) => vec![1, 2, 8],
    }
}

/// Asserts two campaign reports are bit-identical, row by row. Floats are
/// compared by bit pattern: an "equal within epsilon" replay is a broken
/// replay.
fn assert_bit_identical(reference: &CampaignReport, candidate: &CampaignReport, context: &str) {
    assert_eq!(
        reference.rows.len(),
        candidate.rows.len(),
        "{context}: row count diverged"
    );
    for (i, (a, b)) in reference.rows.iter().zip(&candidate.rows).enumerate() {
        let at = format!("{context}: row {i} ({})", a.label);
        assert_eq!(a.label, b.label, "{at}: label");
        assert_eq!(a.seed, b.seed, "{at}: seed");
        assert_eq!(a.outcome, b.outcome, "{at}: outcome");
        assert_eq!(a.attempts, b.attempts, "{at}: attempts");
        let ra = a.result.as_ref().expect("reference row has a result");
        let rb = b
            .result
            .as_ref()
            .unwrap_or_else(|| panic!("{at}: no result"));
        assert_eq!(ra.stats, rb.stats, "{at}: stats diverged");
        assert_eq!(
            ra.ground_rtt.map(f64::to_bits),
            rb.ground_rtt.map(f64::to_bits),
            "{at}: ground_rtt bits diverged"
        );
        assert_eq!(
            ra.ground_t0.map(f64::to_bits),
            rb.ground_t0.map(f64::to_bits),
            "{at}: ground_t0 bits diverged"
        );
        assert_eq!(
            ra.duration_secs.to_bits(),
            rb.duration_secs.to_bits(),
            "{at}: duration bits diverged"
        );
        assert_eq!(
            ra.event_budget_hit, rb.event_budget_hit,
            "{at}: budget flag diverged"
        );
        // The streamed analysis, including its float reductions bit for
        // bit (PartialEq would call -0.0 == 0.0 a match; the bits say no).
        assert_eq!(ra.stream, rb.stream, "{at}: streamed analysis diverged");
        assert_eq!(
            ra.timing().and_then(|t| t.mean_rtt).map(f64::to_bits),
            rb.timing().and_then(|t| t.mean_rtt).map(f64::to_bits),
            "{at}: streamed RTT bits diverged"
        );
        assert_eq!(
            ra.timing().and_then(|t| t.mean_t0).map(f64::to_bits),
            rb.timing().and_then(|t| t.mean_t0).map(f64::to_bits),
            "{at}: streamed T0 bits diverged"
        );
        assert_eq!(
            ra.rtt_window_corr().map(f64::to_bits),
            rb.rtt_window_corr().map(f64::to_bits),
            "{at}: streamed correlation bits diverged"
        );
        // The big one: the full event trace, record for record (these
        // jobs run retained precisely so this compare stays meaningful).
        assert!(ra.trace.is_some(), "{at}: retained run lost its trace");
        assert_eq!(ra.trace, rb.trace, "{at}: trace diverged");
    }
}

//= pftk#det-replay type=test
#[test]
fn campaign_replays_bit_identically_across_worker_counts() {
    let reference = run_with(1, None);
    assert!(
        reference.is_complete(),
        "reference campaign must be clean: {}",
        reference.summary()
    );
    assert_eq!(reference.rows.len(), JOBS);
    for row in &reference.rows {
        assert_eq!(row.outcome, Outcome::Ok, "{}", row.label);
    }

    for workers in worker_counts() {
        let plain = run_with(workers, None);
        assert_bit_identical(&reference, &plain, &format!("{workers} workers"));

        // Same campaign under schedule chaos: the pool inserts seeded
        // yield points and rotates steal order, maximally perturbing which
        // worker runs which job when. Results must not notice.
        let chaotic = run_with(workers, Some(0xC4A0_5000 + workers as u64));
        assert_bit_identical(
            &reference,
            &chaotic,
            &format!("{workers} workers + schedule chaos"),
        );
    }
}

//= pftk#det-replay type=test
#[test]
fn chaos_seed_itself_never_leaks_into_results() {
    // Two different chaos seeds produce different schedules; the reports
    // must still match bit for bit — the chaos stream may only shape
    // scheduling, never observable output.
    let a = run_with(4, Some(1));
    let b = run_with(4, Some(2));
    assert_bit_identical(&a, &b, "chaos seed 1 vs 2");
}
