//! Tahoe / Reno / NewReno / SACK comparison — the ref-[3] experiment
//! ("Simulation-based comparisons of Tahoe, Reno, and SACK TCP") run on
//! this workspace's simulator, connecting two threads of the reproduction:
//!
//! * the paper models **Reno**, and §IV notes real stacks deviate (SunOS
//!   was Tahoe-derived);
//! * our Table II calibration found that plain Reno converts one
//!   burst-lossy round into *several* loss indications (the first hole
//!   recovers by fast retransmit, later holes by timeout). SACK repairs
//!   multiple holes per episode and shows it directly; NewReno only helps
//!   once fast recovery actually starts, which whole-tail bursts often
//!   prevent (fewer than three duplicate ACKs) — so its visible gain here
//!   is in send rate, not indication count.

use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::RoundCorrelated;
use padhye_tcp_repro::sim::reno::sender::{RenoStyle, SenderConfig};
use padhye_tcp_repro::sim::time::SimDuration;
use padhye_tcp_repro::sim::ConnStats;

const HORIZON: f64 = 900.0;

fn run(style: RenoStyle, wire_p: f64, seed: u64) -> ConnStats {
    let sender = SenderConfig {
        style,
        rwnd: 32,
        ..SenderConfig::default()
    };
    let mut c = Connection::builder()
        .rtt(0.1)
        .loss(Box::new(RoundCorrelated::new(wire_p)))
        .sender_config(sender)
        .seed(seed)
        .build();
    c.run_for(SimDuration::from_secs_f64(HORIZON));
    c.finish();
    c.stats()
}

/// Averages a metric over several seeds (one connection per seed).
fn mean_over_seeds<F: Fn(&ConnStats) -> f64>(style: RenoStyle, wire_p: f64, f: F) -> f64 {
    let seeds = [1u64, 2, 3, 4];
    seeds
        .iter()
        .map(|&s| f(&run(style, wire_p, s)))
        .sum::<f64>()
        / seeds.len() as f64
}

#[test]
fn sack_takes_fewer_indications_per_burst() {
    // Under round-correlated loss a burst dooms the tail of a window.
    // SACK repairs several holes inside one recovery episode, so its
    // indication rate drops below Reno's. (NewReno's in-recovery advantage
    // barely registers at this operating point: with whole-tail bursts the
    // window usually gathers fewer than three duplicate ACKs, so fast
    // recovery rarely *starts* — the timeout-dominated regime the paper's
    // Table II documents. We only require NewReno not to be worse.)
    let p = 0.02;
    let reno = mean_over_seeds(RenoStyle::Reno, p, |s| {
        s.loss_indications() as f64 / s.packets_sent as f64
    });
    let newreno = mean_over_seeds(RenoStyle::NewReno, p, |s| {
        s.loss_indications() as f64 / s.packets_sent as f64
    });
    let sack = mean_over_seeds(RenoStyle::Sack, p, |s| {
        s.loss_indications() as f64 / s.packets_sent as f64
    });
    assert!(
        sack < reno * 0.9,
        "SACK indication rate {sack:.4} should be well below Reno's {reno:.4}"
    );
    assert!(
        newreno <= reno * 1.03,
        "NewReno indication rate {newreno:.4} must not exceed Reno's {reno:.4}"
    );
}

#[test]
fn send_rate_ordering_under_bursty_loss() {
    let p = 0.02;
    let rate = |style| mean_over_seeds(style, p, |s| s.packets_sent as f64 / HORIZON);
    let tahoe = rate(RenoStyle::Tahoe);
    let reno = rate(RenoStyle::Reno);
    let newreno = rate(RenoStyle::NewReno);
    let sack = rate(RenoStyle::Sack);
    // The ref-[3] ordering, with slack for stochastic noise: Tahoe worst,
    // SACK/NewReno best.
    assert!(reno > tahoe * 0.95, "Reno {reno:.1} vs Tahoe {tahoe:.1}");
    assert!(newreno > reno, "NewReno {newreno:.1} vs Reno {reno:.1}");
    assert!(sack > reno, "SACK {sack:.1} vs Reno {reno:.1}");
}

#[test]
fn timeout_share_shrinks_with_better_recovery() {
    // Reno's extra reductions under burst loss are mostly timeouts (later
    // holes in the window can't gather three dupacks). NewReno/SACK repair
    // those holes inside one recovery episode.
    let p = 0.02;
    let to_share = |style| {
        mean_over_seeds(style, p, |s| {
            s.to_events() as f64 / s.loss_indications().max(1) as f64
        })
    };
    let reno = to_share(RenoStyle::Reno);
    let sack = to_share(RenoStyle::Sack);
    assert!(
        sack < reno,
        "SACK timeout share {sack:.3} should be below Reno's {reno:.3}"
    );
}

#[test]
fn all_variants_conserve_and_deliver() {
    for style in [
        RenoStyle::Tahoe,
        RenoStyle::Reno,
        RenoStyle::NewReno,
        RenoStyle::Sack,
    ] {
        let s = run(style, 0.03, 9);
        assert_eq!(
            s.packets_sent,
            s.packets_sent_new + s.retransmissions,
            "{style:?}"
        );
        assert!(s.packets_delivered > 0, "{style:?} delivered nothing");
        assert!(s.packets_delivered <= s.packets_sent, "{style:?}");
        assert!(s.loss_indications() > 0, "{style:?} saw no loss at 3%");
    }
}

#[test]
fn variants_converge_under_isolated_losses() {
    // With *isolated* (Bernoulli) losses at low rate there is usually one
    // hole per window: Reno's single fast retransmit suffices, so the
    // fancier recovery algorithms buy little — all three loss-recovery
    // variants land within a narrow band (Tahoe still pays for its
    // collapse-on-every-loss).
    use padhye_tcp_repro::sim::loss::Bernoulli;
    let rate = |style| {
        let seeds = [21u64, 22, 23];
        seeds
            .iter()
            .map(|&seed| {
                let sender = SenderConfig {
                    style,
                    rwnd: 32,
                    ..SenderConfig::default()
                };
                let mut c = Connection::builder()
                    .rtt(0.1)
                    .loss(Box::new(Bernoulli::new(0.005)))
                    .sender_config(sender)
                    .seed(seed)
                    .build();
                c.run_for(SimDuration::from_secs_f64(HORIZON));
                c.finish();
                c.stats().packets_sent as f64 / HORIZON
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let reno = rate(RenoStyle::Reno);
    let newreno = rate(RenoStyle::NewReno);
    let sack = rate(RenoStyle::Sack);
    let tahoe = rate(RenoStyle::Tahoe);
    for (name, v) in [("NewReno", newreno), ("SACK", sack)] {
        let rel = (v - reno).abs() / reno;
        assert!(
            rel < 0.10,
            "{name} {v:.1} vs Reno {reno:.1}: isolated losses should converge"
        );
    }
    assert!(
        tahoe < reno,
        "Tahoe {tahoe:.1} must trail Reno {reno:.1} even here"
    );
}
