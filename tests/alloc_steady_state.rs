//! Steady-state allocation audit: after warm-up, the packet-level hot
//! path must perform **zero** heap allocations per packet.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! runs a connection past its warm-up transient (queues grown, output
//! scratch buffers at their high-water marks, the columnar trace at its
//! preallocated capacity), snapshots the allocation counter, simulates a
//! further window, and asserts the counter did not move. This pins the
//! pooling work — reused `SenderOutput`/`ReceiverOutput` scratch, lane
//! deques and timer heap that only grow, and the capacity-preallocated
//! `TraceLog` — against regressions that reintroduce per-packet `Box` or
//! `Vec` churn.
//!
//! The same harness pins the fleet shard loop: after warm-up, a
//! `FleetShard::run_until` window over hundreds of flows must be
//! allocation-free too (SoA arenas are fixed at construction; the event
//! wheel's ring slots and overflow heap recycle their high-water
//! capacity).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::fleet::{FleetCohort, FleetShard, FleetSpec};
use padhye_tcp_repro::sim::link::Path;
use padhye_tcp_repro::sim::loss::Bernoulli;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::rounds::RoundsConfig;
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};
use padhye_tcp_repro::testbed::TraceRecorder;

/// System allocator with an allocation counter in front.
///
/// Counting is gated per-thread: the libtest harness's main thread parks
/// on a channel while the test runs and allocates in `std::sync::mpmc`
/// at unpredictable instants, so a process-wide counter is flaky. Only
/// the thread that opted in via `COUNTING` contributes to the total.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether allocations on this thread are counted. Const-initialized
    /// `Cell<bool>` has no destructor and its access never allocates, so
    /// reading it inside the allocator cannot recurse.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    if COUNTING.try_with(Cell::get).unwrap_or(false) {
        //~ allow(relaxed_atomic): single-threaded count gated by the thread-local; no hand-off rides on it
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY-free wrapper: delegates every operation to `System` unchanged;
// the only addition is a counter bump on the allocating calls.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_simulation_does_not_allocate() {
    let half = SimDuration::from_millis(50);
    // A bounded receiver window (the realistic Table II situation) puts a
    // hard ceiling on packets in flight, so every queue and scratch buffer
    // reaches its high-water mark during warm-up. With the default
    // effectively-unbounded rwnd, cwnd can set new records arbitrarily
    // late and the (amortized, doubling) growth would show up as a handful
    // of spurious counts.
    let config = SenderConfig {
        rwnd: 64,
        ..SenderConfig::default()
    };
    let mut conn = Connection::builder()
        .fwd_path(Path::constant(half))
        .rev_path(Path::constant(half))
        .loss(Bernoulli::new(0.02))
        .sender_config(config)
        .seed(9)
        // Preallocate the trace columns for the whole 120 s run so the
        // recorder never grows mid-measurement.
        .build_with_observer(TraceRecorder::for_horizon(120.0, 2_000.0));

    // Warm-up: loss episodes, RTO timers, delayed-ACK timers, and queue
    // high-water marks all occur in the first stretch; every buffer that
    // will ever grow has grown by the end of it.
    let hit = conn.run_until_budget(SimTime::from_secs_f64(30.0), 10_000_000);
    assert!(!hit, "warm-up must not hit the event budget");
    let sent_at_snapshot = conn.stats().packets_sent;

    COUNTING.with(|c| c.set(true));
    //~ allow(relaxed_atomic): reads a counter only this thread bumps
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let hit = conn.run_until_budget(SimTime::from_secs_f64(120.0), 10_000_000);
    //~ allow(relaxed_atomic): reads a counter only this thread bumps
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));
    assert!(!hit, "measurement window must not hit the event budget");

    let sent_in_window = conn.stats().packets_sent - sent_at_snapshot;
    assert!(
        sent_in_window > 1_000,
        "degenerate window: only {sent_in_window} packets"
    );
    assert_eq!(
        after - before,
        0,
        "steady state allocated {} times over {} packets; the hot path \
         must be allocation-free after warm-up",
        after - before,
        sent_in_window
    );
}

#[test]
fn warm_fleet_shard_does_not_allocate() {
    // Two cohorts so the shard's inner loop exercises both the TD-heavy
    // regime (large window) and the timeout-heavy one (small window,
    // higher p — deep backoffs park events in the wheel's overflow heap).
    let spec = FleetSpec {
        cohorts: vec![
            FleetCohort {
                config: RoundsConfig {
                    p: 0.02,
                    rtt: 0.1,
                    t0: 1.0,
                    b: 2,
                    wmax: 64,
                    ..RoundsConfig::default()
                },
                flows: 384,
            },
            FleetCohort {
                config: RoundsConfig {
                    p: 0.1,
                    rtt: 0.3,
                    t0: 1.5,
                    b: 2,
                    wmax: 16,
                    ..RoundsConfig::default()
                },
                flows: 128,
            },
        ],
        base_seed: 0xA110C,
        ..FleetSpec::default()
    };
    let mut shard = FleetShard::new(&spec, 0..spec.total_flows());

    // Warm-up: long enough that every ring slot and the overflow heap
    // reach their high-water capacity (flows start maximally bunched in
    // one slot and only spread out from there, so slot maxima occur
    // early; the overflow heap is pre-reserved for fleets this size).
    let warmed = shard.run_until(SimTime::from_secs_f64(240.0));
    assert!(warmed > 10_000, "degenerate warm-up: {warmed} events");

    COUNTING.with(|c| c.set(true));
    //~ allow(relaxed_atomic): reads a counter only this thread bumps
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let in_window = shard.run_until(SimTime::from_secs_f64(300.0));
    //~ allow(relaxed_atomic): reads a counter only this thread bumps
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));

    assert!(
        in_window > 10_000,
        "degenerate window: only {in_window} events"
    );
    assert_eq!(
        after - before,
        0,
        "warm fleet shard allocated {} times over {} events; the sharded \
         inner loop must be allocation-free once arenas and wheel are warm",
        after - before,
        in_window
    );
}
