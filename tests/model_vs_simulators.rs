//! Cross-crate validation: the closed-form model, the numerically solved
//! Markov chain, and the rounds-based simulator must agree on the scenarios
//! where the paper claims they do (Fig. 12), and disagree in the direction
//! the literature documents (the closed form is mildly optimistic).

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::rounds::{RoundsConfig, RoundsSim};

fn rounds_rate(p: f64, rtt: f64, t0: f64, wmax: u32, horizon: f64) -> f64 {
    let mut sim = RoundsSim::new(
        RoundsConfig {
            p,
            rtt,
            t0,
            b: 2,
            wmax,
            ..RoundsConfig::default()
        },
        42,
    );
    sim.run_for(horizon);
    sim.send_rate()
}

#[test]
//= pftk#eq-32 type=test
//= pftk#loss-model type=test
//= pftk#infinite-source type=test
fn closed_form_tracks_rounds_sim_across_loss_range() {
    // The rounds simulator executes the §II assumptions exactly; Eq. (32)
    // linearizes them. Agreement must be within ~35% everywhere on the
    // paper's Fig. 12 parameters, and tight at low p.
    let params = ModelParams::new(0.47, 3.2, 2, 12).unwrap();
    for &p in &[0.002, 0.01, 0.05, 0.1, 0.3] {
        let model = full_model(LossProb::new(p).unwrap(), &params);
        let sim = rounds_rate(p, 0.47, 3.2, 12, 500_000.0);
        let rel = (model - sim).abs() / sim;
        assert!(
            rel < 0.35,
            "p={p}: model={model:.3}, sim={sim:.3}, rel={rel:.3}"
        );
    }
    let p = 0.002;
    let model = full_model(LossProb::new(p).unwrap(), &params);
    let sim = rounds_rate(p, 0.47, 3.2, 12, 500_000.0);
    assert!(
        (model - sim).abs() / sim < 0.08,
        "low-p agreement must be tight"
    );
}

#[test]
//= pftk#markov-crosscheck type=test
fn markov_chain_sits_between_closed_form_and_rounds_sim() {
    // Fig. 12's comparison: the chain keeps the window distribution the
    // closed form collapses to a mean, so it lands closer to the exact
    // simulation. Verify ordering closed ≥ markov ≥ sim·(1−ε) at moderate p.
    let params = ModelParams::new(0.47, 3.2, 2, 12).unwrap();
    for &p in &[0.01, 0.05, 0.1] {
        let lp = LossProb::new(p).unwrap();
        let closed = full_model(lp, &params);
        let markov = MarkovModel::solve(lp, &params).unwrap().send_rate();
        let sim = rounds_rate(p, 0.47, 3.2, 12, 500_000.0);
        assert!(
            closed >= markov * 0.98,
            "p={p}: closed {closed:.3} below markov {markov:.3}"
        );
        let rel = (markov - sim).abs() / sim;
        assert!(
            rel < 0.12,
            "p={p}: markov={markov:.3} vs sim={sim:.3}, rel={rel:.3}"
        );
    }
}

#[test]
//= pftk#eq-31 type=test
fn window_limited_regime_hits_ceiling_in_both() {
    // At negligible loss both the model and the simulator pin at W_m/RTT.
    let params = ModelParams::new(0.1, 1.0, 2, 8).unwrap();
    let ceiling = params.window_limited_rate();
    let model = full_model(LossProb::new(1e-4).unwrap(), &params);
    let sim = rounds_rate(1e-4, 0.1, 1.0, 8, 200_000.0);
    assert!(model > 0.9 * ceiling, "model {model} vs ceiling {ceiling}");
    assert!(sim > 0.85 * ceiling, "sim {sim} vs ceiling {ceiling}");
    assert!(sim <= ceiling * 1.01);
}

#[test]
fn throughput_gap_matches_rounds_sim() {
    // §V: T(p) < B(p); the rounds simulator tracks delivered packets
    // directly, so its B−T gap must resemble the model's.
    let params = ModelParams::new(0.47, 3.2, 2, 12).unwrap();
    let p = 0.05;
    let lp = LossProb::new(p).unwrap();
    let model_eff =
        padhye_tcp_repro::model::throughput::throughput(lp, &params) / full_model(lp, &params);
    let mut sim = RoundsSim::new(
        RoundsConfig {
            p,
            rtt: 0.47,
            t0: 3.2,
            b: 2,
            wmax: 12,
            ..RoundsConfig::default()
        },
        42,
    );
    sim.run_for(500_000.0);
    let sim_eff = sim.throughput() / sim.send_rate();
    assert!(
        (model_eff - sim_eff).abs() < 0.15,
        "efficiency: model {model_eff:.3} vs sim {sim_eff:.3}"
    );
}

#[test]
fn td_only_baseline_overestimates_at_high_loss() {
    // The paper's core claim (Figs. 7–10): ignoring timeouts overestimates
    // the send rate badly once p exceeds a few percent.
    let params = ModelParams::new(0.2, 2.0, 2, 64).unwrap();
    for &p in &[0.05, 0.1, 0.2] {
        let lp = LossProb::new(p).unwrap();
        let td = td_only(lp, &params);
        let sim = rounds_rate(p, 0.2, 2.0, 64, 300_000.0);
        assert!(
            td > 2.0 * sim,
            "p={p}: TD-only {td:.2} should grossly exceed the true rate {sim:.2}"
        );
        let full = full_model(lp, &params);
        assert!(
            (full - sim).abs() < (td - sim).abs(),
            "p={p}: full model must be closer to the simulator than TD-only"
        );
    }
}
