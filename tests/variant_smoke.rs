//! The CI variant-matrix consumer: `PFTK_CC=<label>` selects which
//! congestion controller this whole-stack smoke runs — packet-level
//! engine, mid-run snapshot/restore, §II rounds model, and a budgeted
//! Table II path through the testbed pipeline. Unset, it runs Reno (the
//! paper's law), so the plain tier-1 sweep covers the default and the
//! matrix (`PFTK_CC=reno|newreno|cubic|relentless|scalable`) covers the
//! rest. A typo in the matrix fails loudly in `CcAlgorithm::from_env`
//! rather than silently testing Reno five times.

use std::sync::Arc;
use std::time::Duration;

use padhye_tcp_repro::sim::cc::CcAlgorithm;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::RoundCorrelated;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::rounds::{RoundsConfig, RoundsSim};
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};
use padhye_tcp_repro::testbed::{
    run_campaign, run_hour_budgeted_with, ExperimentOptions, JobSpec, Outcome, SupervisorConfig,
    TABLE2_PATHS,
};

//= pftk#variant-envelope type=test
#[test]
fn selected_variant_runs_the_whole_stack() {
    let algo = CcAlgorithm::from_env();

    // Packet level: the variant simulates, delivers, and accounts sanely.
    let build = || {
        Connection::builder()
            .rtt(0.08)
            .sender_config(SenderConfig {
                cc: algo,
                ..SenderConfig::default()
            })
            .loss(Box::new(RoundCorrelated::new(0.03)))
            .seed(29)
            .build()
    };
    let mut whole = build();
    whole.run_for(SimDuration::from_secs_f64(120.0));
    whole.finish();
    let stats = whole.stats();
    assert!(stats.packets_sent > 500, "{algo:?}: degenerate run");
    assert!(stats.packets_delivered <= stats.packets_sent);
    assert_eq!(
        stats.packets_sent,
        stats.packets_sent_new + stats.retransmissions
    );

    // Mid-run checkpoint: the variant's controller state survives a
    // snapshot/restore cycle bit-identically.
    let mut first = build();
    first.run_until(SimTime::from_secs_f64(53.0));
    let snap = first.snapshot().expect("snapshot");
    let mut resumed = build();
    resumed.restore(&snap).expect("restore");
    resumed.run_until(SimTime::from_secs_f64(120.0));
    resumed.finish();
    assert_eq!(whole.stats(), resumed.stats(), "{algo:?}: resume diverged");

    // Rounds model: the same algorithm's round law produces a positive,
    // W_m/RTT-bounded send rate.
    let cfg = RoundsConfig {
        p: 0.03,
        rtt: 0.1,
        t0: 1.0,
        b: 2,
        wmax: 48,
        cc: algo,
        ..RoundsConfig::default()
    };
    let mut sim = RoundsSim::new(cfg, 31);
    sim.run_tdps(2_000);
    let rate = sim.send_rate();
    assert!(rate > 0.0, "{algo:?}: rounds model sent nothing");
    assert!(
        rate <= f64::from(cfg.wmax) / cfg.rtt * 1.01,
        "{algo:?}: rounds rate {rate} exceeds the window limit"
    );

    // Testbed: a budgeted Table II campaign runs clean under the variant.
    let opts = ExperimentOptions {
        cc: algo,
        ..ExperimentOptions::default()
    };
    let jobs = TABLE2_PATHS[..2]
        .iter()
        .map(|spec| {
            let spec = *spec;
            JobSpec {
                label: spec.id(),
                seed: 0x0571_00C0 ^ algo.tag(),
                job: Arc::new(move |seed| run_hour_budgeted_with(&spec, seed, 60_000, &opts)),
            }
        })
        .collect();
    let report = run_campaign(
        jobs,
        &SupervisorConfig {
            wall_budget: Duration::from_secs(120),
            retry: false,
            max_workers: 2,
            schedule_chaos: None,
        },
    );
    assert!(
        report.is_complete(),
        "{algo:?}: campaign left holes: {}",
        report.summary()
    );
    for row in &report.rows {
        assert_eq!(row.outcome, Outcome::Ok, "{algo:?}: {}", row.label);
    }
}
