//! CI memory smoke: an hour-long (simulated) Table II connection under
//! the default streaming campaign options retains **no trace** — the
//! retained-trace footprint is zero bytes regardless of duration — and
//! the incremental analyzer's peak state stays under a hard ceiling far
//! below what materializing the wire events would cost.

use padhye_tcp_repro::testbed::{run_hour, table2_path};
use padhye_tcp_repro::trace::record::TraceRecord;

/// The wire format's columnar cost per event (1 tag + 8 time + 8 payload
/// bytes) — the most compact form a retain-then-analyze pipeline can hold.
const COLUMNAR_BYTES_PER_EVENT: u64 = 17;

#[test]
fn hour_long_streaming_run_stays_under_memory_ceiling() {
    // manic → baskerville: the paper's Fig. 7(a) path, a full simulated
    // hour, default campaign options (streaming, no retention).
    let spec = table2_path("manic", "baskerville").expect("path in Table II");
    let result = run_hour(spec, 7);

    // The hour produced real traffic and a real analysis.
    let events = result.stream.events;
    assert!(events > 50_000, "an hour of traffic, got {events} events");
    assert!(result.analysis().packets_sent > 0);
    assert!(result.timing().and_then(|t| t.mean_rtt).is_some());

    // Zero retained trace bytes: the duration-proportional term is gone
    // entirely, not merely bounded.
    assert!(
        result.trace.is_none(),
        "default campaign options must not materialize the trace"
    );

    // The analyzer's own peak state (in-flight maps + reduced outputs:
    // indications, RTT samples, interval counters) is duration-honest —
    // it grows with *reductions*, not wire events — and must sit well
    // below the materialized trace it replaces, with an absolute ceiling
    // so a state leak fails loudly even if traffic volume grows.
    let peak = result.stream.peak_state_bytes;
    let columnar = events * COLUMNAR_BYTES_PER_EVENT;
    let in_ram = events * std::mem::size_of::<TraceRecord>() as u64;
    assert!(
        peak < columnar,
        "peak analyzer state {peak} B should undercut even the compact \
         {columnar} B columnar trace"
    );
    assert!(
        peak * 2 <= in_ram,
        "peak analyzer state {peak} B should be at most half the {in_ram} B \
         a batch pipeline materializes in RAM (on top of the same analysis state)"
    );
    assert!(
        peak <= 8 * 1024 * 1024,
        "peak analyzer state {peak} B blew the 8 MiB smoke ceiling"
    );
    eprintln!(
        "hour smoke: {events} events, peak state {peak} B, \
         materialized trace would be {columnar} B columnar / {in_ram} B in RAM"
    );
}
