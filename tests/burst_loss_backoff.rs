//! The mechanism behind Table II's exponential-backoff columns: loss
//! episodes must persist in *wall-clock time* (outlasting the RTO) for
//! T1+/T2+ sequences to appear — and the right process for that is
//! [`TimedGilbertElliott`], whose states live in seconds.
//!
//! Two Reno behaviours surface along the way, both documented in the
//! paper's world:
//!
//! * most timeout sequences are *singles* even under long episodes: after
//!   the episode, plain Reno repairs the doomed window's holes one
//!   timeout at a time (the multi-indication-per-burst behaviour our
//!   Table II calibration corrects for);
//! * a per-packet bursty chain ([`GilbertElliott`]) cannot model
//!   wall-clock episodes at all — packets are its clock, so a bad state
//!   freezes across timeout gaps and produces absurd 64×-capped sequences
//!   while throughput collapses.

use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::{GilbertElliott, LossModel, TimedGilbertElliott};
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::SimDuration;
use padhye_tcp_repro::sim::ConnStats;

const HORIZON: f64 = 2400.0;
const LOSS_RATE: f64 = 0.05;

fn run(loss: Box<dyn LossModel + Send>, seed: u64) -> ConnStats {
    // A realistic receiver window: without it, lossless good periods let
    // the congestion window grow without bound.
    let sender = SenderConfig {
        rwnd: 32,
        ..SenderConfig::default()
    };
    let mut c = Connection::builder()
        .rtt(0.1)
        .loss(loss)
        .sender_config(sender)
        .seed(seed)
        .build();
    c.run_for(SimDuration::from_secs_f64(HORIZON));
    c.finish();
    c.stats()
}

#[test]
//= pftk#rto-backoff type=test
//= pftk#backoff-lk type=test
fn timed_bursts_generate_exponential_backoff() {
    // ~80 episodes of mean 1.5 s against a 1 s RTO: the first retransmission
    // of each episode dies about half the time → a solid crop of T1+
    // sequences, while hole repairs keep the singles column dominant.
    let s = run(
        Box::new(TimedGilbertElliott::from_rate_and_burst_secs(
            LOSS_RATE, 1.5,
        )),
        1,
    );
    let backoffs: u64 = s.to_sequences[1..].iter().sum();
    assert!(
        backoffs > 20,
        "expected T1+ sequences, got {:?}",
        s.to_sequences
    );
    assert!(
        s.to_sequences[0] > backoffs,
        "hole-repair singles should still dominate: {:?}",
        s.to_sequences
    );
}

#[test]
fn per_packet_bursts_freeze_through_timeouts() {
    // Same long-run loss rate, bursts of 8 *packets*: during a timeout the
    // chain advances one step per RTO-spaced probe, so a bad state survives
    // ~8 probes — exponential backoff runs to its 64× cap and the
    // connection starves. The timed process at the same rate stays healthy.
    let pkt = run(
        Box::new(GilbertElliott::from_rate_and_burst(LOSS_RATE, 8.0)),
        1,
    );
    let timed = run(
        Box::new(TimedGilbertElliott::from_rate_and_burst_secs(
            LOSS_RATE, 1.5,
        )),
        1,
    );
    assert!(
        pkt.packets_sent * 20 < timed.packets_sent,
        "frozen chain should starve the connection: {} vs {}",
        pkt.packets_sent,
        timed.packets_sent
    );
    assert!(
        pkt.to_sequences[5] > 0,
        "frozen chain should reach pathological T5+ depths: {:?}",
        pkt.to_sequences
    );
    assert_eq!(
        timed.to_sequences[5], 0,
        "1.5 s episodes must not reach T5+ (that needs ≥ 31 s of outage): {:?}",
        timed.to_sequences
    );
}

#[test]
fn deeper_backoff_with_longer_episodes() {
    // Longer loss episodes → deeper backoff (T2 and beyond, not just T1).
    let deep = |mean_burst: f64| {
        let s = run(
            Box::new(TimedGilbertElliott::from_rate_and_burst_secs(
                0.08, mean_burst,
            )),
            3,
        );
        s.to_sequences[2..].iter().sum::<u64>()
    };
    let short_eps = deep(0.5);
    let long_eps = deep(4.0);
    assert!(
        long_eps > short_eps,
        "4 s episodes (T2+: {long_eps}) should back off deeper than 0.5 s ones ({short_eps})"
    );
}
