//! End-to-end pipeline tests: simulate → trace → serialize → deserialize →
//! analyze → model-compare, exactly as a downstream user would chain the
//! crates.

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::RoundCorrelated;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::SimDuration;
use padhye_tcp_repro::testbed::TraceRecorder;
use padhye_tcp_repro::trace::analyzer::{analyze, AnalyzerConfig};
use padhye_tcp_repro::trace::intervals::split_intervals_bounded;
use padhye_tcp_repro::trace::karn::estimate_timing;
use padhye_tcp_repro::trace::metrics::{average_error, Observation};
use padhye_tcp_repro::trace::record::Trace;
use padhye_tcp_repro::trace::table::TableRow;

fn simulate(secs: f64, p: f64, wmax: u32, seed: u64) -> Trace {
    let sender = SenderConfig {
        rwnd: wmax,
        ..SenderConfig::default()
    };
    let mut conn = Connection::builder()
        .rtt(0.2)
        .loss(Box::new(RoundCorrelated::new(p)))
        .sender_config(sender)
        .seed(seed)
        .build_with_observer(TraceRecorder::new());
    conn.run_for(SimDuration::from_secs_f64(secs));
    conn.finish();
    conn.into_observer().into_trace()
}

#[test]
fn full_pipeline_through_jsonl() {
    let trace = simulate(900.0, 0.02, 32, 1);
    // Serialize and re-read, as if the trace had been archived.
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let restored = Trace::read_jsonl(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(restored, trace);

    // Analyze the restored trace.
    let analysis = analyze(&restored, AnalyzerConfig::default());
    assert!(analysis.packets_sent > 500);
    assert!(!analysis.indications.is_empty());
    let timing = estimate_timing(&restored);
    let rtt = timing.mean_rtt.unwrap();
    assert!((rtt - 0.2).abs() / 0.2 < 0.3, "RTT estimate {rtt}");

    // Fit the model and score it with the paper's metric.
    let intervals = split_intervals_bounded(&restored, &analysis, 100.0, 900.0);
    assert_eq!(intervals.len(), 9);
    let observations = Observation::from_intervals(&intervals, 100.0);
    let params = ModelParams::new(rtt, timing.mean_t0.unwrap_or(1.0), 2, 32).unwrap();
    let err_full = average_error(&observations, |p| {
        full_model(LossProb::new(p).unwrap(), &params)
    });
    let err_td = average_error(&observations, |p| {
        td_only(LossProb::new(p).unwrap(), &params)
    });
    assert!(err_full.is_finite() && err_td.is_finite());
    assert!(
        err_full < 1.0,
        "full-model error {err_full:.3} should be well under 100% on its own referee"
    );
}

#[test]
fn full_pipeline_through_binary_encoding() {
    let trace = simulate(300.0, 0.05, 16, 2);
    let mut buf = Vec::new();
    trace.encode_binary(&mut buf);
    let restored = Trace::decode_binary(&mut buf.as_slice()).unwrap();
    let a1 = analyze(&trace, AnalyzerConfig::default());
    let a2 = analyze(&restored, AnalyzerConfig::default());
    assert_eq!(
        a1, a2,
        "analysis must be identical across the binary roundtrip"
    );
}

#[test]
fn table_row_assembly_from_pipeline() {
    let trace = simulate(600.0, 0.03, 16, 3);
    let analysis = analyze(&trace, AnalyzerConfig::default());
    let timing = estimate_timing(&trace);
    let row = TableRow::from_analysis(
        "senderhost",
        "receiverhost",
        &analysis,
        timing.mean_rtt.unwrap(),
        timing.mean_t0.unwrap_or(1.0),
    );
    assert_eq!(row.packets_sent, analysis.packets_sent);
    assert_eq!(row.loss_indications, analysis.indications.len() as u64);
    assert!(row.loss_rate() > 0.0);
    // The formatted table carries the row.
    let text = padhye_tcp_repro::trace::table::format_table(std::slice::from_ref(&row));
    assert!(text.contains("senderhost"));
}

#[test]
fn tcp_friendly_rate_pipeline() {
    // The §I application: measure a path, compute the rate an equation-
    // based flow may use, and verify TCP itself (the simulator) gets a
    // comparable rate under the same conditions.
    let trace = simulate(1800.0, 0.02, 64, 4);
    let analysis = analyze(&trace, AnalyzerConfig::default());
    let timing = estimate_timing(&trace);
    let params = ModelParams::new(
        timing.mean_rtt.unwrap(),
        timing.mean_t0.unwrap_or(1.0),
        2,
        64,
    )
    .unwrap();
    let p = LossProb::new(analysis.loss_rate()).unwrap();
    let friendly = tcp_friendly_rate(p, &params, ModelKind::Full);
    let actual = analysis.packets_sent as f64 / 1800.0;
    let ratio = friendly / actual;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "TCP-friendly rate {friendly:.1} vs actual TCP {actual:.1} (ratio {ratio:.2})"
    );
}

#[test]
fn deterministic_experiments_reproduce_bit_for_bit() {
    let t1 = simulate(300.0, 0.02, 32, 9);
    let t2 = simulate(300.0, 0.02, 32, 9);
    assert_eq!(t1, t2);
    let t3 = simulate(300.0, 0.02, 32, 10);
    assert_ne!(t1, t3, "different seeds must differ");
}
