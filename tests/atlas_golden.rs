//! Tier-1 gate for the variant model-domain atlas.
//!
//! The `results/atlas_<variant>.csv` files are golden outputs of
//! `cargo run --release -p tcp-repro --bin atlas`: deterministic,
//! byte-exact functions of the pinned seed/horizon/grid. This test
//! regenerates every variant's cells and compares them byte-for-byte
//! against the committed CSVs, then asserts the headline claim the atlas
//! exists to make: at least three non-Reno variants have a non-empty
//! ≥2× divergence frontier against the PFTK prediction, while Reno —
//! the law the formula was derived for — has none.

use tcp_repro::atlas::{
    csv_rows, frontier, run_atlas, CSV_HEADER, GOLDEN_HORIZON_SECS, GOLDEN_SEED,
};
use tcp_sim::cc::CcAlgorithm;

fn golden_path(algo: CcAlgorithm) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(format!("atlas_{}.csv", algo.label()))
}

//= pftk#variant-envelope type=test
#[test]
fn atlas_csvs_match_the_committed_goldens() {
    for algo in CcAlgorithm::ALL {
        let cells = run_atlas(algo, GOLDEN_HORIZON_SECS, GOLDEN_SEED);
        let mut expected = String::new();
        expected.push_str(CSV_HEADER);
        expected.push('\n');
        for row in csv_rows(&cells) {
            expected.push_str(&row);
            expected.push('\n');
        }
        let committed = std::fs::read_to_string(golden_path(algo))
            .unwrap_or_else(|e| panic!("missing golden for {:?}: {e}", algo));
        assert_eq!(
            committed,
            expected,
            "{:?} atlas drifted from results/atlas_{}.csv — if the change \
             is intentional, regenerate with `cargo run --release -p \
             tcp-repro --bin atlas`",
            algo,
            algo.label()
        );
    }
}

//= pftk#variant-envelope type=test
#[test]
fn at_least_three_non_reno_variants_cross_the_frontier() {
    let mut crossing = Vec::new();
    for algo in CcAlgorithm::ALL {
        let cells = run_atlas(algo, GOLDEN_HORIZON_SECS, GOLDEN_SEED);
        let front = frontier(&cells);
        if algo == CcAlgorithm::Reno {
            assert!(
                front.is_empty(),
                "Reno is the law Eq. (32) models; its frontier must be \
                 empty, got {} cells",
                front.len()
            );
        } else if !front.is_empty() {
            crossing.push((algo, front.len()));
        }
    }
    assert!(
        crossing.len() >= 3,
        "need ≥3 non-Reno variants past the 2x frontier, got {crossing:?}"
    );
}
