//! Golden-trace equivalence: the hybrid lane/heap event engine must be
//! observationally *bit-identical* to the legacy single-binary-heap
//! engine it replaced.
//!
//! Every case runs the same pinned-seed connection twice — once on the
//! default hybrid engine (`build_with_observer`) and once on the retained
//! legacy engine (`build_legacy_with_observer`) — and asserts that the
//! sender-side observer trace and the full [`ConnStats`] agree exactly.
//! This is the contract that lets the fast path replace the old engine
//! without re-validating any of the paper's Table II / Figs. 7–11
//! reproductions: same events, same order, same RNG draws, same numbers.

use padhye_tcp_repro::sim::connection::{Connection, ConnectionBuilder};
use padhye_tcp_repro::sim::fault::impairments::{AckLoss, Duplicate, Reorder};
use padhye_tcp_repro::sim::fault::FaultPlan;
use padhye_tcp_repro::sim::link::Path;
use padhye_tcp_repro::sim::loss::{Bernoulli, GilbertElliott, LossKind, RoundCorrelated};
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::stats::ConnStats;
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};
use padhye_tcp_repro::testbed::TraceRecorder;
use padhye_tcp_repro::trace::record::Trace;

/// Event budget generous enough that no case below ever hits it; a budget
/// stop would silently shrink the compared window.
const EVENT_BUDGET: u64 = 10_000_000;

/// Builds one connection per engine from identical specs and runs both to
/// the same horizon, returning (trace, stats) per engine.
fn run_both(
    make: impl Fn() -> ConnectionBuilder,
    horizon_secs: f64,
) -> ((Trace, ConnStats), (Trace, ConnStats)) {
    let horizon = SimTime::from_secs_f64(horizon_secs);

    let mut hybrid = make().build_with_observer(TraceRecorder::new());
    let hit = hybrid.run_until_budget(horizon, EVENT_BUDGET);
    assert!(!hit, "hybrid engine hit the event budget");
    hybrid.finish();
    let hybrid_stats = hybrid.stats();
    let hybrid_trace = hybrid.into_observer().into_trace();

    let mut legacy = make().build_legacy_with_observer(TraceRecorder::new());
    let hit = legacy.run_until_budget(horizon, EVENT_BUDGET);
    assert!(!hit, "legacy engine hit the event budget");
    legacy.finish();
    let legacy_stats = legacy.stats();
    let legacy_trace = legacy.into_observer().into_trace();

    ((hybrid_trace, hybrid_stats), (legacy_trace, legacy_stats))
}

fn assert_equivalent(make: impl Fn() -> ConnectionBuilder, horizon_secs: f64, case: &str) {
    let ((ht, hs), (lt, ls)) = run_both(make, horizon_secs);
    assert!(
        hs.packets_sent > 0,
        "{case}: degenerate run, nothing was sent"
    );
    assert_eq!(hs, ls, "{case}: ConnStats diverged between engines");
    assert_eq!(
        ht.len(),
        lt.len(),
        "{case}: trace lengths diverged between engines"
    );
    assert_eq!(ht, lt, "{case}: traces diverged between engines");
}

fn base_builder(seed: u64) -> ConnectionBuilder {
    let half = SimDuration::from_millis(50);
    Connection::builder()
        .fwd_path(Path::constant(half))
        .rev_path(Path::constant(half))
        .sender_config(SenderConfig::default())
        .seed(seed)
}

#[test]
fn bernoulli_traces_are_bit_identical_across_engines() {
    for (seed, p) in [(11u64, 0.005), (12, 0.02), (13, 0.05)] {
        assert_equivalent(
            || base_builder(seed).loss(Bernoulli::new(p)),
            120.0,
            &format!("bernoulli p={p} seed={seed}"),
        );
    }
}

#[test]
fn gilbert_elliott_traces_are_bit_identical_across_engines() {
    for seed in [21u64, 22] {
        assert_equivalent(
            || base_builder(seed).loss(GilbertElliott::new(0.001, 0.4, 0.01, 0.3)),
            120.0,
            &format!("gilbert-elliott seed={seed}"),
        );
    }
}

#[test]
fn round_correlated_traces_are_bit_identical_across_engines() {
    assert_equivalent(
        || base_builder(31).loss(RoundCorrelated::new(0.02)),
        120.0,
        "round-correlated p=0.02 seed=31",
    );
}

#[test]
fn boxed_dyn_loss_matches_too() {
    // The pre-monomorphization call shape: a type-erased `Box<dyn LossModel>`
    // routed through `LossKind::Dyn` must behave exactly like the enum path.
    assert_equivalent(
        || {
            let boxed: Box<dyn padhye_tcp_repro::sim::loss::LossModel + Send> =
                Box::new(Bernoulli::new(0.02));
            base_builder(41).loss(LossKind::from(boxed))
        },
        60.0,
        "boxed-dyn bernoulli seed=41",
    );
}

#[test]
fn seeded_fault_plan_traces_are_bit_identical_across_engines() {
    // The full chaos battery: reordering, duplication, ACK loss, jitter
    // bursts, link flaps, corruption — the hardest case for the hybrid
    // queue because extra-delay faults schedule arrivals out of lane order.
    for seed in [1u64, 2, 3] {
        assert_equivalent(
            || {
                base_builder(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1))
                    .loss(Bernoulli::new(0.02))
                    .fault(FaultPlan::from_seed(seed))
            },
            120.0,
            &format!("fault-plan from_seed({seed})"),
        );
    }
}

#[test]
fn composed_fault_plan_traces_are_bit_identical_across_engines() {
    // A hand-composed plan (as opposed to the seeded battery): heavy
    // reordering plus duplication plus ACK loss on top of wire loss.
    assert_equivalent(
        || {
            let plan = FaultPlan::none()
                .with(Box::new(Reorder::new(0.10, SimDuration::from_millis(40))))
                .with(Box::new(Duplicate::new(0.05, 1)))
                .with(Box::new(AckLoss::new(0.03)));
            base_builder(51).loss(Bernoulli::new(0.01)).fault(plan)
        },
        120.0,
        "composed reorder+duplicate+ackloss",
    );
}
