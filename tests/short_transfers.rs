//! Validates the short-transfer latency model (`pftk_model::shortflow`,
//! the ref-[2] extension) against the packet-level simulator's finite-flow
//! mode: predicted completion times must track simulated ones across
//! transfer sizes and loss rates.

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::Bernoulli;
use padhye_tcp_repro::sim::reno::rto::RtoConfig;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};

/// Mean simulated completion time over `reps` seeded runs.
fn simulate_mean(n: u64, p: f64, rtt: f64, wmax: u32, reps: u64) -> f64 {
    let mut total = 0.0;
    let mut finished = 0u64;
    for seed in 0..reps {
        let sender = SenderConfig {
            rwnd: wmax,
            data_limit: Some(n),
            rto: RtoConfig {
                min_rto: SimDuration::from_secs_f64(1.0),
                initial_rto: SimDuration::from_secs_f64(1.0),
                ..RtoConfig::default()
            },
            ..SenderConfig::default()
        };
        let mut c = Connection::builder()
            .rtt(rtt)
            .loss(Box::new(Bernoulli::new(p)))
            .sender_config(sender)
            .seed(1000 + seed)
            .build();
        if let Some(at) = c.run_until_complete(SimTime::from_secs_f64(20_000.0)) {
            total += at.as_secs_f64();
            finished += 1;
        }
    }
    assert!(finished == reps, "{finished}/{reps} runs finished");
    total / reps as f64
}

#[test]
//= pftk#short-flow type=test
fn lossless_transfers_match_slow_start_analysis() {
    // With no loss the latency is pure slow start (+ window cap): the model
    // should match the simulator within ~25% over a wide size range.
    let params = ModelParams::new(0.1, 1.0, 2, 64).unwrap();
    let p = LossProb::new(1e-9).unwrap();
    for n in [1u64, 4, 16, 64, 256, 1024] {
        let predicted = transfer_time_with_delack(n, p, &params, 0.2);
        let simulated = simulate_mean(n, 0.0, 0.1, 64, 3);
        let rel = (predicted - simulated).abs() / simulated;
        assert!(
            rel < 0.4,
            "n={n}: predicted {predicted:.2}s vs simulated {simulated:.2}s (rel {rel:.2})"
        );
    }
}

#[test]
//= pftk#short-flow type=test
fn lossy_transfers_within_factor_band() {
    // With loss, the decomposition (slow start + recovery + steady state)
    // should land within a factor-2 band of the simulator — the same
    // fidelity class as the Cardwell model's own validation.
    let params = ModelParams::new(0.1, 1.0, 2, 64).unwrap();
    for (n, p) in [(100u64, 0.02), (1_000, 0.02), (1_000, 0.05), (5_000, 0.01)] {
        let lp = LossProb::new(p).unwrap();
        let predicted = transfer_time_with_delack(n, lp, &params, 0.2);
        let simulated = simulate_mean(n, p, 0.1, 64, 8);
        let ratio = predicted / simulated;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "n={n}, p={p}: predicted {predicted:.1}s vs simulated {simulated:.1}s \
             (ratio {ratio:.2})"
        );
    }
}

#[test]
fn short_flows_beat_naive_steady_state_estimate() {
    // The whole point of the extension: for short transfers, n/B(p) is a
    // bad estimate (slow start dominates); the shortflow model must be
    // closer to the simulator.
    let params = ModelParams::new(0.1, 1.0, 2, 64).unwrap();
    let lp = LossProb::new(0.01).unwrap();
    let n = 30u64;
    let simulated = simulate_mean(n, 0.01, 0.1, 64, 8);
    let shortflow = transfer_time_with_delack(n, lp, &params, 0.2);
    let naive = n as f64 / full_model(lp, &params);
    let err_short = (shortflow - simulated).abs();
    let err_naive = (naive - simulated).abs();
    assert!(
        err_short < err_naive,
        "shortflow {shortflow:.2}s vs naive {naive:.2}s, simulated {simulated:.2}s"
    );
}
