//! The paper's qualitative findings ("shape"), checked end to end on the
//! synthetic testbed at reduced horizons (DESIGN.md §4 lists the criteria).

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::testbed::{
    error_triple_hourly, fig7_panel, fitted_params, run_modem, run_serial_100s, table2_path,
    ModemSpec, TABLE2_PATHS,
};

/// A 600-second run of a path (shorter than the paper's hour, same
/// machinery).
fn short_run(
    spec: &'static padhye_tcp_repro::testbed::PathSpec,
    seed: u64,
) -> padhye_tcp_repro::testbed::ExperimentResult {
    let mut results = run_serial_100s(spec, 1, seed);
    let _ = &mut results;
    results.remove(0)
}

#[test]
//= pftk#q-hat-24 type=test
fn timeouts_dominate_loss_indications() {
    // Table II's headline: "in all traces, time-outs constitute the
    // majority or a significant fraction of the total number of loss
    // indications." Check a representative subset of paths, aggregating
    // several 100-s connections (burst episodes are minutes apart, so a
    // single window can be quiet).
    for (name, seed) in [("alps", 11u64), ("maria", 12), ("mafalda", 13)] {
        let spec = table2_path("manic", name).unwrap();
        let results = run_serial_100s(spec, 8, seed);
        // manic is an Irix sender: the streamed analysis already classifies
        // at the standard dupack threshold of 3.
        let (mut td, mut to) = (0u64, 0u64);
        for r in &results {
            let a = r.analysis();
            td += a.td_count();
            to += a.to_count();
        }
        let to_frac = to as f64 / (td + to).max(1) as f64;
        assert!(
            to_frac > 0.4,
            "manic->{name}: timeout fraction {to_frac:.2} too low ({td} TD, {to} TO)"
        );
    }
}

#[test]
fn exponential_backoff_occurs() {
    // Table II shows multiple-timeout sequences (T1+) "with significant
    // frequency" on lossy paths.
    let spec = table2_path("void", "tove").unwrap(); // 10% loss path
    let r = short_run(spec, 21);
    // void is a Linux sender: streamed analysis uses dupack threshold 2.
    let hist = r.analysis().to_histogram();
    let backoffs: u64 = hist[1..].iter().sum();
    assert!(
        backoffs > 0,
        "expected T1+ sequences on a 10%-loss path, got {hist:?}"
    );
}

#[test]
//= pftk#eq-28 type=test
//= pftk#eq-20 type=test
fn full_model_beats_td_only_where_timeouts_dominate() {
    // Figs. 9/10: the proposed model's average error is below TD-only's on
    // timeout-dominated paths.
    let mut wins = 0;
    let mut total = 0;
    for (s, r, seed) in [
        ("manic", "maria", 31u64),
        ("manic", "mafalda", 32),
        ("babel", "tove", 33),
        ("pif", "alps", 34),
    ] {
        let spec = table2_path(s, r).unwrap();
        let result = short_run(spec, seed);
        let errs = error_triple_hourly(spec, &result, 100.0);
        total += 1;
        if errs.full < errs.td_only {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "full model won only {wins}/{total} timeout-heavy paths"
    );
}

#[test]
fn td_only_ignores_window_limit_and_overpredicts_at_low_p() {
    // §III on Fig. 7(a): "TD only overestimates the send rate at low p
    // values" because it has no W_m ceiling.
    let spec = table2_path("manic", "baskerville").unwrap(); // W_m = 6
    let r = short_run(spec, 41);
    let params = fitted_params(spec, &r);
    let lp = LossProb::new(0.001).unwrap();
    let td = td_only(lp, &params);
    let full = full_model(lp, &params);
    let ceiling = params.window_limited_rate();
    assert!(
        td > 2.0 * ceiling,
        "TD-only {td:.1} should blow through W_m/RTT {ceiling:.1}"
    );
    assert!(
        full <= ceiling * 1.01,
        "full model must respect the ceiling"
    );
}

#[test]
fn fig7_panel_shape() {
    let spec = table2_path("pif", "imagine").unwrap();
    let r = short_run(spec, 51);
    let panel = fig7_panel(spec, &r, 100.0);
    assert!(!panel.scatter.is_empty());
    // The full curve must lie at or below the TD-only curve everywhere.
    let td = &panel.curves[0];
    let full = &panel.curves[1];
    for (a, b) in td.points.iter().zip(&full.points) {
        assert!(b.1 <= a.1 * 1.001, "full above TD-only at p={}", a.0);
    }
}

#[test]
fn modem_regime_breaks_the_model() {
    // Fig. 11 / §IV: on a dedicated-buffer modem path, RTT correlates with
    // the window (paper measured up to 0.97) and the models' usefulness
    // collapses. We check the correlation and that the model cannot be
    // simultaneously accurate here and on normal paths.
    let r = run_modem(&ModemSpec::default(), 1800.0, 61);
    let corr = r.rtt_window_corr().unwrap();
    assert!(corr > 0.6, "RTT-window correlation {corr:.2} too weak");
    // Normal paths sit near zero.
    let spec = table2_path("manic", "spiff").unwrap();
    let normal = short_run(spec, 62);
    let normal_corr = normal.rtt_window_corr().unwrap();
    assert!(
        normal_corr.abs() < 0.4,
        "normal-path correlation {normal_corr:.2} unexpectedly high"
    );
    assert!(
        corr > normal_corr + 0.3,
        "modem must stand out against normal paths"
    );
}

#[test]
fn loss_rates_across_testbed_span_paper_range() {
    // §III: observed loss frequencies reach past 5% — the regime where the
    // TD-only model was known to fail. Verify the calibrated testbed spans
    // it (using the Table II targets the paths were calibrated to).
    let max = TABLE2_PATHS
        .iter()
        .map(|s| s.paper_loss_rate())
        .fold(0.0f64, f64::max);
    let min = TABLE2_PATHS
        .iter()
        .map(|s| s.paper_loss_rate())
        .fold(f64::INFINITY, f64::min);
    assert!(max > 0.08);
    assert!(min < 0.01);
}
