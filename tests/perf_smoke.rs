//! Tier-1 performance smoke test: a canary against catastrophic
//! regressions in the simulation hot path (an accidental O(n²) queue, a
//! per-packet allocation storm, a busy-wait), not a benchmark.
//!
//! The ceiling is deliberately generous — tier-1 runs this in the *debug*
//! profile on shared CI hardware, so the budget is orders of magnitude
//! above the expected time (the release-mode number lives in
//! `results/BENCH_sim.json`, produced by `cargo run -p tcp-bench --bin
//! bench_report`). If this test trips, the hot path did not get "a bit
//! slower"; it broke.
//!
//! The second half is the *committed-artifact* regression guard: both
//! `results/BENCH_sim.json` (regenerated whenever the hot path changes)
//! and `results/BENCH_baseline.json` (refreshed only deliberately) are
//! committed from the same reference machine, so diffing them is
//! machine-consistent even though this test runs elsewhere. Every
//! `ns_per_event` must stay within ±25% of the baseline; a PR that
//! regenerates the report outside that band either fixes the regression
//! or consciously refreshes the baseline (with a note in CHANGES.md).

use std::time::{Duration, Instant};

use serde_json::Value;

use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::link::Path;
use padhye_tcp_repro::sim::loss::Bernoulli;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};
use padhye_tcp_repro::testbed::TraceRecorder;

/// Wall-clock ceiling for 60 simulated seconds at p = 0.05. Release-mode
/// reality is well under a millisecond; debug mode is a few milliseconds.
const CEILING: Duration = Duration::from_secs(20);

#[test]
fn sixty_sim_seconds_at_five_percent_loss_fit_the_wall_clock_ceiling() {
    let half = SimDuration::from_millis(50);
    let mut conn = Connection::builder()
        .fwd_path(Path::constant(half))
        .rev_path(Path::constant(half))
        .loss(Bernoulli::new(0.05))
        .sender_config(SenderConfig::default())
        .seed(7)
        .build_with_observer(TraceRecorder::for_horizon(60.0, 200.0));
    let started = Instant::now();
    let budget_hit = conn.run_until_budget(SimTime::from_secs_f64(60.0), 10_000_000);
    let elapsed = started.elapsed();
    conn.finish();

    assert!(!budget_hit, "smoke run must not hit the event budget");
    let stats = conn.stats();
    assert!(stats.packets_sent > 100, "degenerate run, nothing happened");
    assert!(
        elapsed < CEILING,
        "60 simulated seconds took {elapsed:?} (ceiling {CEILING:?}); \
         the event-engine hot path has a catastrophic regression"
    );
    // The trace actually recorded the run (the observer is on the hot
    // path; an accidentally disconnected observer would make the timing
    // above meaningless).
    let trace = conn.into_observer().into_trace();
    assert!(u64::try_from(trace.len()).unwrap_or(0) >= stats.packets_sent);
}

/// Relative tolerance for the committed-artifact diff. Same-machine
/// release runs jitter a few percent; ±25% flags a real change while
/// tolerating noise.
const BENCH_TOLERANCE: f64 = 0.25;

fn load_report(name: &str) -> Value {
    let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path} must be committed (regenerate with `cargo run --release -p tcp-bench --bin bench_report`): {e}"));
    serde_json::parse_value(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"))
}

/// A field of a report row as a display string (for row keys).
fn field_str(row: &Value, field: &str) -> String {
    match row.get(field) {
        Some(Value::Str(s)) => s.clone(),
        Some(Value::U64(n)) => n.to_string(),
        Some(Value::I64(n)) => n.to_string(),
        other => panic!("row field `{field}` has unexpected shape: {other:?}"),
    }
}

/// A numeric field of a report row as `f64`.
fn field_f64(row: &Value, field: &str) -> f64 {
    //~ allow(cast): JSON integer counters to f64, exact below 2^53
    match row.get(field) {
        Some(Value::F64(x)) => *x,
        Some(Value::U64(n)) => *n as f64, //~ allow(cast): see above
        Some(Value::I64(n)) => *n as f64, //~ allow(cast): see above
        other => panic!("row field `{field}` must be a number, got {other:?}"),
    }
}

/// Pulls `(key, ns_per_event)` rows out of a report section, keyed by the
/// fields that identify a row (`group/bench` for `entries`, `shards=N`
/// for `fleet`).
fn ns_per_event_rows(report: &Value, section: &str) -> Vec<(String, f64)> {
    let Some(Value::Seq(rows)) = report.get(section) else {
        panic!("report section `{section}` must be an array");
    };
    rows.iter()
        .map(|row| {
            let key = match section {
                "fleet" => format!("fleet/shards={}", field_str(row, "shards")),
                _ => format!("{}/{}", field_str(row, "group"), field_str(row, "bench")),
            };
            (key, field_f64(row, "ns_per_event"))
        })
        .collect()
}

#[test]
fn bench_report_stays_within_tolerance_of_committed_baseline() {
    let current = load_report("BENCH_sim.json");
    let baseline = load_report("BENCH_baseline.json");

    // Only release-profile artifacts are comparable; a debug-profile
    // report committed by accident must fail loudly, not drift silently.
    for (name, report) in [
        ("BENCH_sim.json", &current),
        ("BENCH_baseline.json", &baseline),
    ] {
        assert_eq!(
            report.get("profile"),
            Some(&Value::Str("release".to_owned())),
            "{name} was generated in a non-release profile"
        );
    }

    let mut failures = Vec::new();
    for section in ["entries", "fleet"] {
        let cur = ns_per_event_rows(&current, section);
        let base = ns_per_event_rows(&baseline, section);
        let cur_keys: Vec<&String> = cur.iter().map(|(k, _)| k).collect();
        let base_keys: Vec<&String> = base.iter().map(|(k, _)| k).collect();
        assert_eq!(
            cur_keys, base_keys,
            "benchmark row sets diverged in `{section}`: regenerate BOTH \
             results/BENCH_sim.json and results/BENCH_baseline.json"
        );
        for ((key, cur_ns), (_, base_ns)) in cur.iter().zip(&base) {
            let ratio = cur_ns / base_ns;
            if !((1.0 - BENCH_TOLERANCE)..=(1.0 + BENCH_TOLERANCE)).contains(&ratio) {
                failures.push(format!(
                    "{key}: {cur_ns:.2} ns/event vs baseline {base_ns:.2} (ratio {ratio:.3})"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "committed bench report drifted more than ±{:.0}% from the baseline:\n  {}\n\
         If the change is intended, refresh results/BENCH_baseline.json on the \
         reference machine and note why in CHANGES.md.",
        BENCH_TOLERANCE * 100.0,
        failures.join("\n  ")
    );
}
