//! Tier-1 performance smoke test: a canary against catastrophic
//! regressions in the simulation hot path (an accidental O(n²) queue, a
//! per-packet allocation storm, a busy-wait), not a benchmark.
//!
//! The ceiling is deliberately generous — tier-1 runs this in the *debug*
//! profile on shared CI hardware, so the budget is orders of magnitude
//! above the expected time (the release-mode number lives in
//! `results/BENCH_sim.json`, produced by `cargo run -p tcp-bench --bin
//! bench_report`). If this test trips, the hot path did not get "a bit
//! slower"; it broke.

use std::time::{Duration, Instant};

use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::link::Path;
use padhye_tcp_repro::sim::loss::Bernoulli;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};
use padhye_tcp_repro::testbed::TraceRecorder;

/// Wall-clock ceiling for 60 simulated seconds at p = 0.05. Release-mode
/// reality is well under a millisecond; debug mode is a few milliseconds.
const CEILING: Duration = Duration::from_secs(20);

#[test]
fn sixty_sim_seconds_at_five_percent_loss_fit_the_wall_clock_ceiling() {
    let half = SimDuration::from_millis(50);
    let mut conn = Connection::builder()
        .fwd_path(Path::constant(half))
        .rev_path(Path::constant(half))
        .loss(Bernoulli::new(0.05))
        .sender_config(SenderConfig::default())
        .seed(7)
        .build_with_observer(TraceRecorder::for_horizon(60.0, 200.0));
    let started = Instant::now();
    let budget_hit = conn.run_until_budget(SimTime::from_secs_f64(60.0), 10_000_000);
    let elapsed = started.elapsed();
    conn.finish();

    assert!(!budget_hit, "smoke run must not hit the event budget");
    let stats = conn.stats();
    assert!(stats.packets_sent > 100, "degenerate run, nothing happened");
    assert!(
        elapsed < CEILING,
        "60 simulated seconds took {elapsed:?} (ceiling {CEILING:?}); \
         the event-engine hot path has a catastrophic regression"
    );
    // The trace actually recorded the run (the observer is on the hot
    // path; an accidentally disconnected observer would make the timing
    // above meaningless).
    let trace = conn.into_observer().into_trace();
    assert!(u64::try_from(trace.len()).unwrap_or(0) >= stats.packets_sent);
}
