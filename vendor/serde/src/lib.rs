//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no network access, so the real serde cannot be
//! downloaded. This crate implements a compatible *subset*: a self-describing
//! [`Content`] tree as the data model, [`Serialize`]/[`Deserialize`] traits
//! that convert to/from it, and (behind the `derive` feature) derive macros
//! that understand the container shapes and attributes this workspace
//! actually uses (`tag`, `rename_all = "snake_case"`, `flatten`).
//!
//! `serde_json` (also vendored) renders [`Content`] to JSON text and parses
//! it back, which is the only serialization format the workspace exercises.

#![deny(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both traits convert through.
///
/// This plays the role of serde's internal `Content`/`Value`: serializers
/// walk it to produce bytes, deserializers are handed a borrowed node.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also used for unit and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up `key` in a [`Content::Map`]; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }

    /// The standard "expected X, found Y" shape.
    pub fn expected(what: &str, found: &Content) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// A type that can reconstruct itself from a borrowed [`Content`] node.
///
/// The lifetime parameter mirrors real serde's signature so `T: for<'de>
/// Deserialize<'de>` bounds written against the real crate still compile;
/// this stand-in never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a [`Content`] node.
    fn from_content(content: &Content) -> Result<Self, Error>;

    /// Called when a struct field is absent from the input map.
    ///
    /// The default is an error; `Option<T>` overrides this to yield `None`,
    /// matching serde's treatment of missing optional fields.
    fn from_missing(field: &'static str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

macro_rules! ser_de_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                let v = *self;
                if v < 0 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v as u64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let out = match *content {
                    Content::U64(v) => <$ty>::try_from(v)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    Content::I64(v) => <$ty>::try_from(v)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(Error::expected("integer", content)),
                };
                out
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match *content {
                    Content::U64(v) => <$ty>::try_from(v)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    Content::I64(v) => <$ty>::try_from(v)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(Error::expected("unsigned integer", content)),
                }
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match *content {
                    Content::F64(v) => Ok(v as $ty),
                    Content::U64(v) => Ok(v as $ty),
                    Content::I64(v) => Ok(v as $ty),
                    Content::Null => Ok(<$ty>::NAN),
                    _ => Err(Error::expected("number", content)),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", content)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", content)),
        }
    }
}

/// Present so containers holding `&'static str` table constants can derive
/// `Deserialize` (as they can with real serde's borrowed-str support).
/// Actually deserializing one leaks the string — acceptable because the
/// workspace never deserializes such containers, it only serializes them.
impl<'de> Deserialize<'de> for &'static str {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::expected("string", content)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().ok_or_else(|| Error::custom("empty char"))?)
            }
            _ => Err(Error::expected("single-character string", content)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn from_missing(_field: &'static str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(Error::expected("sequence", content)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_content(content)?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        items
            .try_into()
            .map_err(|_| Error::custom("array length conversion failed"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $name::from_content(
                                    it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                                )?
                            },
                        )+))
                    }
                    _ => Err(Error::expected("sequence (tuple)", content)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + std::fmt::Display, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter().map(|(k, v)| (k.to_string(), v.to_content())).collect(),
        )
    }
}

impl<K: Serialize + std::fmt::Display, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter().map(|(k, v)| (k.to_string(), v.to_content())).collect(),
        )
    }
}

/// Support code the derive macros expand to. Not part of the public API.
pub mod __private {
    use super::{Content, Deserialize, Error, Serialize};

    /// Serializes one value (turbofish-free helper for generated code).
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
        value.to_content()
    }

    /// Deserializes a struct field from a map, honoring missing-field rules.
    pub fn from_field<T: for<'de> Deserialize<'de>>(
        map: &[(String, Content)],
        key: &'static str,
    ) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_content(v)
                .map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
            None => T::from_missing(key),
        }
    }

    /// Deserializes a `#[serde(flatten)]` field from the whole container map.
    pub fn from_flatten<T: for<'de> Deserialize<'de>>(
        content: &Content,
    ) -> Result<T, Error> {
        T::from_content(content)
    }

    /// Deserializes any value node (turbofish-free helper).
    pub fn from_content<T: for<'de> Deserialize<'de>>(
        content: &Content,
    ) -> Result<T, Error> {
        T::from_content(content)
    }
}

/// Compatibility alias: real serde exposes `serde::de::Error` as a trait;
/// generated code and this workspace only need the concrete error type.
pub mod de {
    pub use super::{Deserialize, Error};
}

/// Compatibility alias for `serde::ser`.
pub mod ser {
    pub use super::{Error, Serialize};
}
