//! Offline stand-in for `crossbeam`.
//!
//! Provides [`scope`] with crossbeam's signature (closures receive a
//! `&Scope`, the call returns `Err` if any spawned thread panicked), built
//! on `std::thread::scope` — available since Rust 1.63, which postdates
//! crossbeam's scoped-thread design.

#![deny(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    //! Scoped-thread module mirroring `crossbeam::thread`.

    pub use super::{scope, Scope};

    /// Result of a scope: `Err` carries the payload of the first panic.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;
}

/// A handle for spawning threads scoped to a [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives a
    /// `&Scope` so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope for spawning borrowing threads; all threads are joined
/// before this returns. Returns `Err` with the panic payload if any spawned
/// thread (or the closure itself) panicked.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrows() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
