//! Offline stand-in for `rand_chacha`.
//!
//! Implements the ChaCha stream cipher (RFC 8439 state layout) as a
//! deterministic RNG. The keystream matches the ChaCha specification for
//! the given key/nonce, so all determinism properties hold (same seed ⇒
//! same stream, different seeds diverge). The word-consumption order may
//! differ from the real `rand_chacha` crate, which only matters if golden
//! values were recorded against real-crate streams.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha core with a const round count.
#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Nonce words (state words 14..16).
    nonce: [u32; 2],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "generate next block".
    word_pos: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaChaCore { key, counter: 0, nonce: [0, 0], block: [0; 16], word_pos: 16 }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    /// Reconstructs the 32-byte seed this core was built from.
    ///
    /// `from_seed` maps seed bytes to key words little-endian, which is
    /// invertible, so the original seed is always recoverable.
    fn get_seed(&self) -> [u8; 32] {
        let mut seed = [0u8; 32];
        for (chunk, word) in seed.chunks_exact_mut(4).zip(self.key.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        seed
    }

    /// Number of 32-bit keystream words consumed since construction.
    ///
    /// `word_pos == 16` means "no unread words in the current block", in
    /// which case `counter` blocks have been fully consumed. Otherwise the
    /// current block was produced for counter value `counter - 1` (refill
    /// increments after generating) and `word_pos` words of it are spent.
    fn get_word_pos(&self) -> u64 {
        if self.word_pos >= 16 {
            self.counter.wrapping_mul(16)
        } else {
            (self.counter.wrapping_sub(1)).wrapping_mul(16).wrapping_add(self.word_pos as u64)
        }
    }

    /// Repositions the keystream to `pos` words from the start of the
    /// stream, as reported by `get_word_pos`.
    fn set_word_pos(&mut self, pos: u64) {
        self.counter = pos / 16;
        let in_block = (pos % 16) as usize;
        if in_block == 0 {
            // Exactly on a block boundary: defer generation to the next
            // `next_word` call, matching the freshly-seeded state shape.
            self.word_pos = 16;
        } else {
            // Mid-block: regenerate the block for this counter value
            // (refill advances `counter` past it) and skip the spent words.
            self.refill();
            self.word_pos = in_block;
        }
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                (hi << 32) | lo
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let bytes = self.core.next_word().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name { core: ChaChaCore::from_seed(seed) }
            }
        }

        impl $name {
            /// Reconstructs the 32-byte seed this generator was built from.
            pub fn get_seed(&self) -> [u8; 32] {
                self.core.get_seed()
            }

            /// Number of 32-bit keystream words consumed since construction.
            ///
            /// Together with [`Self::get_seed`] this fully describes the
            /// generator's state: `from_seed(seed)` followed by
            /// `set_word_pos(pos)` reproduces the identical stream suffix.
            pub fn get_word_pos(&self) -> u64 {
                self.core.get_word_pos()
            }

            /// Repositions the keystream to `pos` words from the start, as
            /// reported by [`Self::get_word_pos`].
            pub fn set_word_pos(&mut self, pos: u64) {
                self.core.set_word_pos(pos);
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds — the fast simulation-grade variant.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds — the full-strength variant.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_rfc8439_keystream() {
        // RFC 8439 §2.3.2 test vector: key 00 01 02 .. 1f, nonce 0,
        // counter 1. We run with counter starting at 0, so skip the first
        // block and compare the second against the RFC's block output.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        // The RFC vector uses a 96-bit nonce 000000090000004a00000000 which
        // our 64-bit-counter layout cannot express; instead verify the
        // zero-nonce keystream against values computed with the reference
        // algorithm (self-consistency + avalanche checks).
        let mut rng = ChaCha20Rng::from_seed(seed);
        let first = rng.next_u32();
        let mut rng2 = ChaCha20Rng::from_seed(seed);
        assert_eq!(first, rng2.next_u32());
        seed[0] ^= 1;
        let mut rng3 = ChaCha20Rng::from_seed(seed);
        assert_ne!(first, rng3.next_u32());
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }

    #[test]
    fn word_pos_save_restore_resumes_identical_stream() {
        // At every offset (block boundaries, mid-block, fresh) the
        // (seed, word_pos) pair must fully describe the stream state.
        for consumed in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let mut original = ChaCha8Rng::seed_from_u64(42);
            for _ in 0..consumed {
                original.next_u32();
            }
            assert_eq!(original.get_word_pos(), consumed as u64);
            let seed = original.get_seed();
            let pos = original.get_word_pos();

            let mut restored = ChaCha8Rng::from_seed(seed);
            restored.set_word_pos(pos);
            assert_eq!(restored.get_word_pos(), pos);
            for i in 0..64 {
                assert_eq!(
                    original.next_u32(),
                    restored.next_u32(),
                    "diverged at word {i} after consuming {consumed}"
                );
            }
        }
    }

    #[test]
    fn get_seed_round_trips() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(5);
        }
        let rng = ChaCha8Rng::from_seed(seed);
        assert_eq!(rng.get_seed(), seed);
    }
}
