//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). A poisoned std lock — a worker
//! panicked while holding it — degenerates to taking the inner data anyway,
//! which matches parking_lot's behavior of not tracking poison at all.

#![deny(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock (no poisoning, like the real parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(l.into_inner(), 2);
    }
}
