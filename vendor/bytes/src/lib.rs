//! Offline stand-in for the `bytes` crate.
//!
//! Implements the [`Buf`]/[`BufMut`] subset this workspace's binary trace
//! framing uses: cursor-style reads over `&[u8]` and appends into
//! `Vec<u8>`, with the little-endian fixed-width accessors.

#![deny(missing_docs)]

/// A cursor over a readable byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True while at least one byte is unread.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// A growable writable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u64_le(0xDEAD_BEEF_0123_4567);
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 9);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert!(!cursor.has_remaining());
    }
}
