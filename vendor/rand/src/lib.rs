//! Offline stand-in for the `rand` crate.
//!
//! Provides [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen_range`/`sample`/`gen_bool`/`fill`, and the
//! [`distributions::Open01`]/[`distributions::Standard`] distributions —
//! the surface this workspace uses. Algorithms follow the same shapes as
//! the real crate (Lemire-free modulo sampling is replaced by simple
//! rejection-free reduction; the tiny bias is irrelevant for simulation).
//!
//! Stream values differ from the real `rand` — any golden values derived
//! from real-rand streams would change — but all determinism guarantees
//! (same seed ⇒ same stream, forks diverge) hold.

#![deny(missing_docs)]

/// A source of random 32/64-bit words and bytes.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via SplitMix64 (same expander
    /// family as the real crate) and constructs the RNG.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut sm);
            let bytes = value.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step — used for seed expansion.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod distributions {
    //! The distributions this workspace samples from.

    use super::RngCore;

    /// A value distribution sampled with an RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform on the *open* interval `(0, 1)`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Open01;

    impl Distribution<f64> for Open01 {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, offset by half an ulp so 0 and 1 are
            // both unreachable: value ∈ [2⁻⁵⁴, 1 − 2⁻⁵⁴].
            ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0)
        }
    }

    impl Distribution<f32> for Open01 {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (((rng.next_u32() >> 8) as f32) + 0.5) * (1.0 / 16_777_216.0)
        }
    }

    /// The standard distribution: uniform bits for integers, `[0, 1)` for
    /// floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let span = span.wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64
                    * (1.0 / 9_007_199_254_740_992.0);
                let v = self.start + (self.end - self.start) * unit as $ty;
                // Floating rounding can land exactly on `end`; nudge back in.
                if v >= self.end {
                    <$ty>::max(self.start, <$ty>::min(v, self.end - (self.end - self.start) * <$ty>::EPSILON))
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Draws a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        self.sample(distributions::Standard)
    }

    /// Bernoulli draw with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        unit < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rngs` module: a deterministic fallback "thread" RNG.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast PCG-style generator (stand-in for `StdRng`/`SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Open01};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut s = self.0;
            splitmix64(&mut s)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn open01_is_open() {
        let mut rng = Counter(0);
        for _ in 0..10_000 {
            let v: f64 = Open01.sample(&mut rng);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..=7);
            assert!((3..=7).contains(&v));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }
}
