//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Content`](serde::Content) model to JSON text
//! and parses JSON text back into it. Supports the API surface this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`to_writer`],
//! [`from_str`], plus a [`Value`] alias for ad-hoc trees.

#![deny(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt::Write as _;

/// An owned JSON tree (alias of the serde stand-in's data model).
pub type Value = Content;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- writing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(content: &Content, out: &mut String, indent: Option<usize>) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` prints the shortest representation that round-trips
                // and always includes a decimal point or exponent.
                let _ = write!(out, "{v:?}");
            } else {
                out.push_str("null"); // matches real serde_json's default
            }
        }
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            out.push('[');
            let inner = indent.map(|n| n + 1);
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, inner);
                write_content(item, out, inner);
            }
            if !items.is_empty() {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            let inner = indent.map(|n| n + 1);
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, inner);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, inner);
            }
            if !entries.is_empty() {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (two-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(0));
    Ok(out)
}

/// Serializes `value` as compact JSON into an [`std::io::Write`] sink.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes a value from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &'de str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_content(&value).map_err(Error::from)
}

// ---------------------------------------------------------------- parsing

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<()> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {pos:?}",
            what as char
        )))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Content::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Content::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Content::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Content::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Content::Seq(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Content::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Content::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_at(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Content::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos:?}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos:?}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not needed by this workspace;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this slice
                // boundary is always valid).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().ok_or_else(|| Error::new("bad utf8"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u64>()
            .map(|v| Content::I64(-(v as i64)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    } else {
        text.parse::<u64>()
            .map(Content::U64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&5u64).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(from_str::<u64>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[1.0e-7f64, 0.3, 1.0 / 3.0, 6.02e23, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("5 trailing").is_err());
    }
}
