//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use:
//!
//! - [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and tuples,
//! - [`collection::vec`] for sized vectors,
//! - the [`proptest!`] macro with `#![proptest_config(...)]`,
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Inputs are sampled from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce run-to-run. There is **no shrinking**:
//! a failing case reports the sampled inputs verbatim.

#![deny(missing_docs)]

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! The deterministic RNG driving input generation.

    /// SplitMix64-based generator, seeded from the test name so each test
    //  has an independent but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name (stable across runs and platforms).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Input-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy yielding one fixed value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $ty;
                    }
                    (lo as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<char> {
        type Value = char;

        fn sample(&self, rng: &mut TestRng) -> char {
            let lo = self.start as u32;
            let hi = self.end as u32;
            assert!(lo < hi, "empty range strategy");
            char::from_u32(lo + rng.below((hi - lo) as u64) as u32).unwrap_or(self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
    /// Namespace alias so `prop::collection::vec` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` — {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)*), __l, __r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l != __r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            )));
        }
    }};
}

/// Rejects the current inputs (the case is re-drawn, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, y in 0.0f64..1.0) {
///         prop_assert!(x as f64 + y < 11.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(100);
            while __accepted < __config.cases {
                __attempts += 1;
                if __attempts > __max_attempts {
                    panic!(
                        "proptest {}: too many rejected cases ({} attempts, {} accepted)",
                        stringify!($name), __attempts, __accepted
                    );
                }
                $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut __rng);)*
                // Render inputs up front: the body may move its arguments.
                let __inputs = String::new()
                    $(+ "\n  " + stringify!($arg) + " = " + &format!("{:?}", $arg))*;
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}:\n{}\ninputs:{}",
                            stringify!($name), __accepted, __msg, __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0.5f64..1.5, z in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..4, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn maps_compose(e in (-3.0f64..-0.3).prop_map(|e| 10f64.powf(e))) {
            prop_assert!(e > 0.0 && e < 1.0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
