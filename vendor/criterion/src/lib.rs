//! Offline stand-in for `criterion`.
//!
//! A small timing harness compatible with the criterion API surface this
//! workspace's benches use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, `throughput`,
//! `bench_with_input`, `finish`), `Bencher::iter`, [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`]. It runs a short
//! fixed-budget measurement and prints a median per-iteration time —
//! useful for relative comparisons, with none of criterion's statistics.
//!
//! Like real criterion, passing `--test` on the command line (i.e.
//! `cargo bench -- --test`) switches every benchmark to validation mode:
//! each workload runs exactly once, untimed, so CI can smoke-test that
//! the benches still execute without paying for a measurement.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Passed to the closure under test; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: u64,
}

impl Bencher {
    /// Times `routine`, recording per-iteration durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one call, also used to size the sample loop. In `--test`
        // validation mode this single call is the whole run.
        let warm_start = Instant::now();
        black_box(routine());
        let one = warm_start.elapsed().max(Duration::from_nanos(1));
        // Aim each sample at ~2ms of work, capped for very slow routines.
        let per_sample = (Duration::from_millis(2).as_nanos() / one.as_nanos()).max(1) as u64;
        let per_sample = per_sample.min(10_000).min(self.iters_per_sample);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Whether `--test` was passed on the command line (criterion's
/// validation mode: run each workload once, untimed).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_one(id: &str, sample_count: u64, f: impl FnOnce(&mut Bencher)) {
    if test_mode() {
        // Validation: `Bencher::iter`'s warmup call executes the routine
        // once; a zero sample count skips the measurement loop entirely.
        let mut bencher =
            Bencher { samples: Vec::new(), iters_per_sample: 1, sample_count: 0 };
        f(&mut bencher);
        println!("test bench {id:<45} ... ok");
        return;
    }
    let mut bencher =
        Bencher { samples: Vec::new(), iters_per_sample: u64::MAX, sample_count };
    f(&mut bencher);
    println!("bench {id:<50} median {:>12.3?}/iter", bencher.median());
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = (n as u64).clamp(1, 1000);
        self
    }

    /// Declares the work per iteration (printed context only here).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benches a closure under `id` within this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_count, f);
        self
    }

    /// Benches a closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_count, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_count: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Sets the default per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = (n as u64).clamp(1, 1000);
        self
    }

    /// Benches a standalone closure.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_count, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup { name: name.into(), sample_count, _parent: self }
    }
}

/// Declares a group-runner function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
