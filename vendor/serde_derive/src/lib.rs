//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` stand-in's `Content` data model. The real crate parses
//! arbitrary Rust with `syn`; this one parses the derive input token stream
//! by hand and supports exactly the container shapes present in this
//! workspace:
//!
//! - structs with named fields (including `#[serde(flatten)]` fields),
//! - tuple structs (newtypes serialize transparently),
//! - unit structs,
//! - enums with unit / newtype / struct variants, externally tagged by
//!   default or internally tagged via `#[serde(tag = "...")]`, with
//!   `#[serde(rename_all = "snake_case")]`.
//!
//! Generic containers are intentionally unsupported (the workspace has none)
//! and produce a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    flatten: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    kind: Kind,
}

/// Derives `serde::Serialize` (vendored stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input).parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (vendored stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

/// Extracts `#[serde(...)]` arguments from an attribute bracket group, if
/// this attribute is a serde helper; returns `None` otherwise (docs, etc.).
fn serde_attr_args(bracket: &proc_macro::Group) -> Option<Vec<TokenTree>> {
    let mut inner = bracket.stream().into_iter();
    match (inner.next(), inner.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            Some(args.stream().into_iter().collect())
        }
        _ => None,
    }
}

/// Parses the tokens inside `#[serde(...)]`: bare flags (`flatten`) and
/// `key = "value"` pairs (`tag`, `rename_all`).
fn parse_serde_args(tokens: &[TokenTree], attrs: &mut ContainerAttrs, flatten: &mut bool) {
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(key) = &tokens[i] {
            let key = key.to_string();
            let has_eq = matches!(
                tokens.get(i + 1),
                Some(TokenTree::Punct(p)) if p.as_char() == '='
            );
            if has_eq {
                let value = match tokens.get(i + 2) {
                    Some(TokenTree::Literal(lit)) => unquote(&lit.to_string()),
                    other => panic!("serde_derive: expected string after `{key} =`, got {other:?}"),
                };
                match key.as_str() {
                    "tag" => attrs.tag = Some(value),
                    "rename_all" => attrs.rename_all = Some(value),
                    other => panic!("serde_derive: unsupported serde attribute `{other}`"),
                }
                i += 3;
            } else {
                match key.as_str() {
                    "flatten" => *flatten = true,
                    "default" => {} // tolerated: missing-field handling covers it for Option
                    other => panic!("serde_derive: unsupported serde attribute `{other}`"),
                }
                i += 1;
            }
        } else {
            i += 1; // separating comma
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skips attributes at `tokens[i..]`, collecting serde args into `attrs` /
/// `flatten`; returns the index of the first non-attribute token.
fn skip_attrs(
    tokens: &[TokenTree],
    mut i: usize,
    attrs: &mut ContainerAttrs,
    flatten: &mut bool,
) -> usize {
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if let Some(args) = serde_attr_args(g) {
                    parse_serde_args(&args, attrs, flatten);
                }
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut ignored = false;
    let mut i = skip_attrs(&tokens, 0, &mut attrs, &mut ignored);
    i = skip_vis(&tokens, i);

    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected container name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic containers are not supported; found `{name}<...>`");
        }
    }

    let kind = match (item_kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Kind::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        (kind, other) => panic!("serde_derive: unsupported {kind} body: {other:?}"),
    };

    Input { name, attrs, kind }
}

/// Parses `name: Type, ...` fields, honoring per-field serde attrs.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut field_attrs = ContainerAttrs::default();
        let mut flatten = false;
        i = skip_attrs(&tokens, i, &mut field_attrs, &mut flatten);
        i = skip_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        // Parens/brackets/braces arrive as atomic groups; only `<`/`>` need
        // explicit depth tracking.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, flatten });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut saw_tokens_since_comma = true;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored_attrs = ContainerAttrs::default();
        let mut ignored_flatten = false;
        i = skip_attrs(&tokens, i, &mut ignored_attrs, &mut ignored_flatten);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                panic!("serde_derive: explicit discriminants are not supported");
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- renaming

fn apply_rename(rule: Option<&str>, name: &str) -> String {
    match rule {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => name.to_ascii_lowercase(),
        Some("UPPERCASE") => name.to_ascii_uppercase(),
        Some(other) => panic!("serde_derive: unsupported rename_all rule `{other}`"),
        None => name.to_string(),
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut code = String::from(
                "let mut __map: Vec<(String, serde::Content)> = Vec::new();\n",
            );
            for f in fields {
                if f.flatten {
                    code.push_str(&format!(
                        "match serde::__private::to_content(&self.{field}) {{\n\
                         serde::Content::Map(__entries) => __map.extend(__entries),\n\
                         __other => __map.push((String::from(\"{field}\"), __other)),\n\
                         }}\n",
                        field = f.name
                    ));
                } else {
                    code.push_str(&format!(
                        "__map.push((String::from(\"{field}\"), serde::__private::to_content(&self.{field})));\n",
                        field = f.name
                    ));
                }
            }
            code.push_str("serde::Content::Map(__map)");
            code
        }
        Kind::TupleStruct(1) => "serde::__private::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::__private::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "serde::Content::Null".to_string(),
        Kind::Enum(variants) => gen_enum_serialize(input, variants),
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_content(&self) -> serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_enum_serialize(input: &Input, variants: &[Variant]) -> String {
    let name = &input.name;
    let rename = input.attrs.rename_all.as_deref();
    let tag = input.attrs.tag.as_deref();
    let mut arms = String::new();
    for v in variants {
        let wire = apply_rename(rename, &v.name);
        match (&v.shape, tag) {
            (VariantShape::Unit, None) => {
                arms.push_str(&format!(
                    "{name}::{v} => serde::Content::Str(String::from(\"{wire}\")),\n",
                    v = v.name
                ));
            }
            (VariantShape::Unit, Some(tag)) => {
                arms.push_str(&format!(
                    "{name}::{v} => serde::Content::Map(vec![(String::from(\"{tag}\"), serde::Content::Str(String::from(\"{wire}\")))]),\n",
                    v = v.name
                ));
            }
            (VariantShape::Tuple(n), None) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "serde::__private::to_content(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("serde::__private::to_content({b})"))
                        .collect();
                    format!("serde::Content::Seq(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{v}({binds}) => serde::Content::Map(vec![(String::from(\"{wire}\"), {inner})]),\n",
                    v = v.name,
                    binds = binds.join(", ")
                ));
            }
            (VariantShape::Tuple(_), Some(_)) => {
                panic!("serde_derive: tuple variants cannot be internally tagged")
            }
            (VariantShape::Struct(fields), tag) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::from(
                    "let mut __vmap: Vec<(String, serde::Content)> = Vec::new();\n",
                );
                if let Some(tag) = tag {
                    inner.push_str(&format!(
                        "__vmap.push((String::from(\"{tag}\"), serde::Content::Str(String::from(\"{wire}\"))));\n"
                    ));
                }
                for f in fields {
                    inner.push_str(&format!(
                        "__vmap.push((String::from(\"{field}\"), serde::__private::to_content({field})));\n",
                        field = f.name
                    ));
                }
                let map_expr = if tag.is_some() {
                    "serde::Content::Map(__vmap)".to_string()
                } else {
                    format!(
                        "serde::Content::Map(vec![(String::from(\"{wire}\"), serde::Content::Map(__vmap))])"
                    )
                };
                arms.push_str(&format!(
                    "{name}::{v} {{ {binds} }} => {{\n{inner}{map_expr}\n}}\n",
                    v = v.name,
                    binds = binds.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut code = format!(
                "let __map = match __c {{\n\
                 serde::Content::Map(__m) => __m,\n\
                 _ => return Err(serde::Error::expected(\"map for struct {name}\", __c)),\n\
                 }};\nlet _ = __map;\n"
            );
            let mut inits = Vec::new();
            for f in fields {
                if f.flatten {
                    inits.push(format!(
                        "{field}: serde::__private::from_flatten(__c)?",
                        field = f.name
                    ));
                } else {
                    inits.push(format!(
                        "{field}: serde::__private::from_field(__map, \"{field}\")?",
                        field = f.name
                    ));
                }
            }
            code.push_str(&format!("Ok({name} {{ {} }})", inits.join(", ")));
            code
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(serde::__private::from_content(__c)?))")
        }
        Kind::TupleStruct(n) => {
            let mut code = format!(
                "let __seq = match __c {{\n\
                 serde::Content::Seq(__s) => __s,\n\
                 _ => return Err(serde::Error::expected(\"sequence for tuple struct {name}\", __c)),\n\
                 }};\n\
                 if __seq.len() != {n} {{\n\
                 return Err(serde::Error::custom(\"wrong tuple length for {name}\"));\n\
                 }}\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::__private::from_content(&__seq[{i}])?"))
                .collect();
            code.push_str(&format!("Ok({name}({}))", items.join(", ")));
            code
        }
        Kind::UnitStruct => format!(
            "match __c {{\n\
             serde::Content::Null => Ok({name}),\n\
             _ => Err(serde::Error::expected(\"null for unit struct {name}\", __c)),\n\
             }}"
        ),
        Kind::Enum(variants) => gen_enum_deserialize(input, variants),
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn from_content(__c: &serde::Content) -> Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_struct_variant_init(name: &str, v: &Variant, fields: &[Field], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{field}: serde::__private::from_field({map_expr}, \"{field}\")?",
                field = f.name
            )
        })
        .collect();
    format!("Ok({name}::{v} {{ {} }})", inits.join(", "), v = v.name)
}

fn gen_enum_deserialize(input: &Input, variants: &[Variant]) -> String {
    let name = &input.name;
    let rename = input.attrs.rename_all.as_deref();
    if let Some(tag) = input.attrs.tag.as_deref() {
        // Internally tagged: one map holds the tag and the variant fields.
        let mut arms = String::new();
        for v in variants {
            let wire = apply_rename(rename, &v.name);
            match &v.shape {
                VariantShape::Unit => {
                    arms.push_str(&format!("\"{wire}\" => Ok({name}::{v}),\n", v = v.name));
                }
                VariantShape::Struct(fields) => {
                    arms.push_str(&format!(
                        "\"{wire}\" => {{ {} }}\n",
                        gen_struct_variant_init(name, v, fields, "__map")
                    ));
                }
                VariantShape::Tuple(_) => {
                    panic!("serde_derive: tuple variants cannot be internally tagged")
                }
            }
        }
        format!(
            "let __map = match __c {{\n\
             serde::Content::Map(__m) => __m,\n\
             _ => return Err(serde::Error::expected(\"map for enum {name}\", __c)),\n\
             }};\n\
             let __tag = match __map.iter().find(|(__k, _)| __k == \"{tag}\") {{\n\
             Some((_, serde::Content::Str(__s))) => __s.as_str(),\n\
             _ => return Err(serde::Error::custom(\"missing tag `{tag}` for enum {name}\")),\n\
             }};\n\
             match __tag {{\n{arms}\
             __other => Err(serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }}"
        )
    } else {
        // Externally tagged: unit variants are strings, data variants are
        // single-entry maps.
        let mut str_arms = String::new();
        let mut map_arms = String::new();
        for v in variants {
            let wire = apply_rename(rename, &v.name);
            match &v.shape {
                VariantShape::Unit => {
                    str_arms.push_str(&format!("\"{wire}\" => Ok({name}::{v}),\n", v = v.name));
                }
                VariantShape::Tuple(1) => {
                    map_arms.push_str(&format!(
                        "\"{wire}\" => Ok({name}::{v}(serde::__private::from_content(__v)?)),\n",
                        v = v.name
                    ));
                }
                VariantShape::Tuple(n) => {
                    let mut code = format!(
                        "\"{wire}\" => {{\n\
                         let __seq = match __v {{\n\
                         serde::Content::Seq(__s) => __s,\n\
                         _ => return Err(serde::Error::expected(\"sequence for variant {wire}\", __v)),\n\
                         }};\n\
                         if __seq.len() != {n} {{\n\
                         return Err(serde::Error::custom(\"wrong tuple length for {name}::{v}\"));\n\
                         }}\n",
                        v = v.name
                    );
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::__private::from_content(&__seq[{i}])?"))
                        .collect();
                    code.push_str(&format!(
                        "Ok({name}::{v}({}))\n}}\n",
                        items.join(", "),
                        v = v.name
                    ));
                    map_arms.push_str(&code);
                }
                VariantShape::Struct(fields) => {
                    map_arms.push_str(&format!(
                        "\"{wire}\" => {{\n\
                         let __vmap = match __v {{\n\
                         serde::Content::Map(__m) => __m,\n\
                         _ => return Err(serde::Error::expected(\"map for variant {wire}\", __v)),\n\
                         }};\n\
                         {}\n}}\n",
                        gen_struct_variant_init(name, v, fields, "__vmap")
                    ));
                }
            }
        }
        format!(
            "match __c {{\n\
             serde::Content::Str(__s) => match __s.as_str() {{\n{str_arms}\
             __other => Err(serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }},\n\
             serde::Content::Map(__m) if __m.len() == 1 => {{\n\
             let (__k, __v) = &__m[0];\n\
             let _ = __v;\n\
             match __k.as_str() {{\n{map_arms}\
             __other => Err(serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }}\n\
             }},\n\
             _ => Err(serde::Error::expected(\"string or single-entry map for enum {name}\", __c)),\n\
             }}"
        )
    }
}
