//! Simulated time.
//!
//! Integer nanoseconds in a newtype: total order, exact arithmetic, no
//! floating-point drift in the event queue. An hour-long trace is ~3.6e12 ns,
//! comfortably inside `u64` (which holds ~584 years).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span between two [`SimTime`]s (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from (possibly fractional) seconds. Panics on
    /// negative or non-finite input — simulation clocks don't run backwards.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * 1e9).round() as u64) //~ allow(cast): deliberate float truncation after round/floor
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9 //~ allow(cast): integer count to f64, exact below 2^53
    }

    /// Saturating difference: `self - earlier`, clamped at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from (possibly fractional) seconds. Panics on negative
    /// or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}"); //~ allow(hot_panic): boundary guard; rejects NaN/negative spans at construction
        SimDuration((secs * 1e9).round() as u64) //~ allow(cast): deliberate float truncation after round/floor
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9 //~ allow(cast): integer count to f64, exact below 2^53
    }

    /// Doubles the span, saturating — used by RTO exponential backoff.
    pub fn saturating_double(self) -> SimDuration {
        SimDuration(self.0.saturating_mul(2))
    }

    /// Multiplies by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Element-wise maximum.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Element-wise minimum.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                //~ allow(expect): clock overflow is a simulation bug; panicking is this Add/Sub contract
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration")) //~ allow(expect): clock overflow is a simulation bug; panicking is this Add/Sub contract
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow")) //~ allow(expect): clock overflow is a simulation bug; panicking is this Add/Sub contract
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(0.243);
        assert!((t.as_secs_f64() - 0.243).abs() < 1e-9);
        assert_eq!(SimTime::from_nanos(5).as_nanos(), 5);
        assert_eq!(SimDuration::from_millis(200).as_nanos(), 200_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!((t + d).as_nanos(), 150);
        assert_eq!(((t + d) - t).as_nanos(), 50);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2.as_nanos(), 150);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn backwards_subtraction_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 1);
    }

    #[test]
    fn doubling_saturates() {
        let d = SimDuration::from_nanos(u64::MAX - 1);
        assert_eq!(d.saturating_double().as_nanos(), u64::MAX);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_nanos(3),
            SimTime::from_nanos(1),
            SimTime::from_nanos(2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::from_nanos(1),
                SimTime::from_nanos(2),
                SimTime::from_nanos(3)
            ]
        );
    }

    #[test]
    #[should_panic]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-0.1);
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.5)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250000s");
    }
}
