//! The full packet-level connection: sender ⇄ paths ⇄ receiver, driven by
//! the discrete-event engine.
//!
//! The [`Connection`] owns the event queue and translates the sans-I/O
//! outputs of [`Sender`] and [`Receiver`] into scheduled events. An
//! [`Observer`] sees exactly what `tcpdump` at the sender would see — data
//! segments leaving and ACKs arriving — which is what the `tcp-trace`
//! analysis programs consume.
//!
//! The hot path is monomorphized two ways: over the event engine
//! ([`EngineKind`] — the hybrid lane scheduler by default, the legacy heap
//! via [`ConnectionBuilder::build_legacy`] for equivalence testing), and
//! over the loss process (the builder converts any concrete model into a
//! [`LossKind`], so per-packet drop draws inline instead of going through a
//! `dyn` call). Sender/receiver outputs are pooled: the steady-state event
//! loop reuses two scratch buffers instead of allocating per event.

use crate::event::{EngineKind, EventScheduler, HybridEngine, Lane, LegacyEngine};
use crate::fault::{Direction, FaultPlan, Impairment};
use crate::link::Path;
use crate::loss::{LossKind, LossModel, NoLoss};
use crate::packet::{Ack, Segment, Seq};
use crate::receiver::{DelAckTimer, Receiver, ReceiverConfig, ReceiverOutput};
use crate::reno::sender::{Sender, SenderConfig, SenderOutput, TimerCmd};
use crate::rng::SimRng;
use crate::stats::ConnStats;
use crate::time::{SimDuration, SimTime};

/// A sender-side wire observer (what `tcpdump` on the sender host records).
pub trait Observer {
    /// A data segment left the sender at `at`.
    fn on_segment_sent(&mut self, at: SimTime, seg: Segment) {
        let _ = (at, seg);
    }
    /// An ACK arrived at the sender at `at`.
    fn on_ack_received(&mut self, at: SimTime, ack: Ack) {
        let _ = (at, ack);
    }
}

/// The "no trace" observer.
impl Observer for () {}

#[derive(Debug)]
enum Ev {
    DataArrive(Segment),
    AckArrive(Ack),
    Rto(u64),
    DelAck(u64),
}

/// Configuration for a simulated connection; see [`Connection::builder`].
pub struct ConnectionBuilder {
    sender: SenderConfig,
    receiver: ReceiverConfig,
    fwd: Option<Path>,
    rev: Option<Path>,
    loss: LossKind,
    ack_loss: Option<LossKind>,
    fault: FaultPlan,
    rtt: SimDuration,
    seed: u64,
}

impl ConnectionBuilder {
    /// Round-trip propagation delay; ignored for a direction that gets an
    /// explicit [`Path`] via [`Self::fwd_path`]/[`Self::rev_path`].
    pub fn rtt(mut self, secs: f64) -> Self {
        self.rtt = SimDuration::from_secs_f64(secs);
        self
    }

    /// Explicit data-direction path (overrides [`Self::rtt`] for that leg).
    pub fn fwd_path(mut self, path: Path) -> Self {
        self.fwd = Some(path);
        self
    }

    /// Explicit ACK-direction path.
    pub fn rev_path(mut self, path: Path) -> Self {
        self.rev = Some(path);
        self
    }

    /// The data-packet loss process (default: no loss). Accepts any
    /// concrete model (bare or boxed — `Box<dyn LossModel + Send>` still
    /// works); concrete models dispatch with an inlined match per packet.
    pub fn loss<L: Into<LossKind>>(mut self, loss: L) -> Self {
        self.loss = loss.into();
        self
    }

    /// An optional ACK loss process (default: ACKs never dropped).
    pub fn ack_loss<L: Into<LossKind>>(mut self, loss: L) -> Self {
        self.ack_loss = Some(loss.into());
        self
    }

    /// A composed impairment plan ([`crate::fault`]) layered on top of the
    /// loss model and paths: reordering, duplication, ACK loss, delay
    /// spikes, link flaps (default: no impairments). Applied after path
    /// transit so delays can reorder across the path's FIFO clamp.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Sender tunables (window, dupthresh, RTO machinery).
    pub fn sender_config(mut self, config: SenderConfig) -> Self {
        self.sender = config;
        self
    }

    /// Receiver tunables (delayed ACKs).
    pub fn receiver_config(mut self, config: ReceiverConfig) -> Self {
        self.receiver = config;
        self
    }

    /// RNG seed; two builds with identical configuration and seed replay
    /// identical traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds with a custom observer (on the default hybrid engine).
    pub fn build_with_observer<O: Observer>(self, observer: O) -> Connection<O> {
        self.build_engine(observer)
    }

    /// Builds without tracing (on the default hybrid engine).
    pub fn build(self) -> Connection<()> {
        self.build_with_observer(())
    }

    /// Builds on the **legacy single-heap engine** with a custom observer.
    /// Exists for the golden-trace equivalence tests and engine
    /// benchmarks; simulation results are bit-identical to the default
    /// engine, only slower.
    pub fn build_legacy_with_observer<O: Observer>(
        self,
        observer: O,
    ) -> Connection<O, LegacyEngine> {
        self.build_engine(observer)
    }

    /// Builds on the legacy single-heap engine without tracing.
    pub fn build_legacy(self) -> Connection<(), LegacyEngine> {
        self.build_legacy_with_observer(())
    }

    fn build_engine<O: Observer, K: EngineKind>(mut self, observer: O) -> Connection<O, K> {
        // A SACK sender is useless without a SACK-reporting receiver;
        // enable it implicitly (mirrors the SYN-time option negotiation).
        if self.sender.style == crate::reno::sender::RenoStyle::Sack {
            self.receiver.sack = true;
        }
        let mut root = SimRng::seed_from_u64(self.seed);
        let loss_rng = root.fork(1);
        let path_rng = root.fork(2);
        // Forked last so that adding (or removing) a fault plan leaves the
        // loss and path streams — and thus every pre-existing seeded test —
        // bit-for-bit unchanged.
        let fault_rng = root.fork(3);
        let half = SimDuration::from_nanos(self.rtt.as_nanos() / 2);
        Connection {
            now: SimTime::ZERO,
            queue: K::Queue::<Ev>::default(),
            sender: Sender::new(self.sender),
            receiver: Receiver::new(self.receiver),
            fwd: self.fwd.unwrap_or_else(|| Path::constant(half)),
            rev: self.rev.unwrap_or_else(|| Path::constant(half)),
            loss: self.loss,
            ack_loss: self.ack_loss,
            fault: self.fault,
            loss_rng,
            path_rng,
            fault_rng,
            observer,
            rto_gen: 0,
            delack_gen: 0,
            next_round_seq: 0,
            started: false,
            events_processed: 0,
            sender_out: SenderOutput::default(),
            receiver_out: ReceiverOutput::default(),
        }
    }
}

/// A running simulated TCP connection, monomorphized over its event
/// engine `K` (hybrid by default; legacy via
/// [`ConnectionBuilder::build_legacy`]).
pub struct Connection<O: Observer = (), K: EngineKind = HybridEngine> {
    now: SimTime,
    queue: K::Queue<Ev>,
    sender: Sender,
    receiver: Receiver,
    fwd: Path,
    rev: Path,
    loss: LossKind,
    ack_loss: Option<LossKind>,
    fault: FaultPlan,
    loss_rng: SimRng,
    path_rng: SimRng,
    fault_rng: SimRng,
    observer: O,
    rto_gen: u64,
    delack_gen: u64,
    next_round_seq: Seq,
    started: bool,
    events_processed: u64,
    /// Pooled sender-output scratch: reused across events so the steady
    /// state allocates nothing per packet.
    sender_out: SenderOutput,
    /// Pooled receiver-output scratch.
    receiver_out: ReceiverOutput,
}

impl Connection<()> {
    /// Starts building a connection with library defaults: 100 ms RTT,
    /// lossless, delayed ACKs, 64 KiB-equivalent window.
    pub fn builder() -> ConnectionBuilder {
        ConnectionBuilder {
            sender: SenderConfig::default(),
            receiver: ReceiverConfig::default(),
            fwd: None,
            rev: None,
            loss: LossKind::None(NoLoss),
            ack_loss: None,
            fault: FaultPlan::none(),
            rtt: SimDuration::from_millis(100),
            seed: 0,
        }
    }
}

impl<O: Observer, K: EngineKind> Connection<O, K> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ground-truth counters (sender counters + receiver delivery count).
    pub fn stats(&self) -> ConnStats {
        let mut s = self.sender.stats.clone();
        s.packets_delivered = self.receiver.distinct_received();
        s
    }

    /// Read access to the sender (RTT/T0 ground truth, window state).
    pub fn sender(&self) -> &Sender {
        &self.sender
    }

    /// Read access to the receiver.
    pub fn receiver(&self) -> &Receiver {
        &self.receiver
    }

    /// Read access to the observer (e.g. to extract a recorded trace).
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Consumes the connection, returning the observer.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Packets dropped by path bottlenecks (in addition to the loss model).
    pub fn bottleneck_drops(&self) -> u64 {
        self.fwd.bottleneck_drops() + self.rev.bottleneck_drops()
    }

    /// Total discrete events processed so far. Monotone over the life of
    /// the connection; the testbed supervisor uses it as a sim-event budget
    /// so a pathological configuration cannot spin the event loop forever.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs the connection until the simulated clock reaches `until`.
    /// May be called repeatedly with increasing horizons.
    pub fn run_until(&mut self, until: SimTime) {
        let _ = self.run_until_budget(until, u64::MAX);
    }

    /// Like [`Connection::run_until`], but aborts once the *total* event
    /// count ([`Connection::events_processed`]) reaches `max_events`,
    /// returning `true` on abort. The clock is left at the last processed
    /// event rather than advanced to `until`, so callers can report how
    /// far the simulation actually got. This is the sim-side deadline the
    /// testbed supervisor arms against runaway event loops.
    pub fn run_until_budget(&mut self, until: SimTime, max_events: u64) -> bool {
        if !self.started {
            self.started = true;
            // The scratch outputs are taken out for the duration of a
            // dispatch (the borrow checker cannot see that
            // `apply_*_output` leaves them alone) and put back after —
            // a pointer swap, not an allocation.
            let mut out = std::mem::take(&mut self.sender_out);
            self.sender.on_start_into(self.now, &mut out);
            self.apply_sender_output(&out);
            self.sender_out = out;
        }
        while let Some(at) = self.queue.peek_time() {
            if at > until {
                break;
            }
            if self.events_processed >= max_events {
                return true;
            }
            let Some((at, ev)) = self.queue.pop() else {
                break;
            };
            self.now = at;
            self.events_processed += 1;
            match ev {
                Ev::DataArrive(seg) => {
                    let mut out = std::mem::take(&mut self.receiver_out);
                    self.receiver.on_segment_into(self.now, seg, &mut out);
                    self.apply_receiver_output(&out);
                    self.receiver_out = out;
                }
                Ev::AckArrive(ack) => {
                    self.observer.on_ack_received(self.now, ack);
                    let mut out = std::mem::take(&mut self.sender_out);
                    self.sender.on_ack_into(self.now, ack, &mut out);
                    self.apply_sender_output(&out);
                    self.sender_out = out;
                }
                Ev::Rto(gen) => {
                    if gen == self.rto_gen {
                        let mut out = std::mem::take(&mut self.sender_out);
                        self.sender.on_rto_into(self.now, &mut out);
                        self.apply_sender_output(&out);
                        self.sender_out = out;
                    }
                }
                Ev::DelAck(gen) => {
                    if gen == self.delack_gen {
                        let mut out = std::mem::take(&mut self.receiver_out);
                        self.receiver.on_delack_into(&mut out);
                        self.apply_receiver_output(&out);
                        self.receiver_out = out;
                    }
                }
            }
        }
        self.now = until;
        false
    }

    /// Convenience: run for a span from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        self.run_until(self.now + span);
    }

    /// For a finite transfer ([`crate::reno::sender::SenderConfig::data_limit`]):
    /// runs until the transfer completes or `deadline` passes, returning the
    /// completion instant if reached. Events are drained in bounded slices
    /// so the clock cannot run past `deadline`.
    pub fn run_until_complete(&mut self, deadline: SimTime) -> Option<SimTime> {
        while self.now < deadline && !self.sender.is_complete() {
            let step = SimDuration::from_millis(50).min(deadline - self.now);
            self.run_until(self.now + step);
        }
        self.sender.completed_at()
    }

    /// Flushes end-of-run bookkeeping (open timeout sequences) into the
    /// stats. Call once after the final `run_until`.
    pub fn finish(&mut self) {
        self.sender.finish();
    }

    fn apply_sender_output(&mut self, out: &SenderOutput) {
        for &seg in &out.segments {
            self.observer.on_segment_sent(self.now, seg);
            // Round accounting for intra-round-correlated loss models.
            if seg.retransmit {
                self.loss.on_round_boundary();
                self.next_round_seq = self.sender.snd_nxt();
            } else if seg.seq >= self.next_round_seq {
                self.loss.on_round_boundary();
                self.next_round_seq = seg.seq + self.sender.usable_window().max(1);
            }
            if self.loss.should_drop(self.now, &mut self.loss_rng) {
                self.sender.stats.packets_dropped += 1;
                continue;
            }
            match self.fwd.transit(self.now, &mut self.path_rng) {
                Some(arrival) => {
                    if self.fault.is_empty() {
                        self.queue
                            .schedule(Lane::Data, arrival, Ev::DataArrive(seg));
                    } else {
                        let fate = self
                            .fault
                            .apply(self.now, Direction::Data, &mut self.fault_rng);
                        if fate.dropped {
                            self.sender.stats.packets_dropped += 1;
                        } else {
                            let at = arrival + fate.extra_delay;
                            self.queue.schedule(Lane::Data, at, Ev::DataArrive(seg));
                            // Extra copies land a nanosecond apart: distinct
                            // arrivals, effectively simultaneous.
                            for k in 1..=u64::from(fate.duplicates) {
                                let dup_at = at + SimDuration::from_nanos(k);
                                self.queue.schedule(Lane::Data, dup_at, Ev::DataArrive(seg));
                            }
                        }
                    }
                }
                None => self.sender.stats.packets_dropped += 1,
            }
        }
        if let TimerCmd::Arm(at) = out.timer {
            self.rto_gen += 1;
            self.queue.schedule(Lane::Rto, at, Ev::Rto(self.rto_gen));
        }
    }

    fn apply_receiver_output(&mut self, out: &ReceiverOutput) {
        for &ack in &out.acks {
            if let Some(al) = &mut self.ack_loss {
                if al.should_drop(self.now, &mut self.loss_rng) {
                    continue;
                }
            }
            if let Some(arrival) = self.rev.transit(self.now, &mut self.path_rng) {
                if self.fault.is_empty() {
                    self.queue.schedule(Lane::Ack, arrival, Ev::AckArrive(ack));
                } else {
                    let fate = self
                        .fault
                        .apply(self.now, Direction::Ack, &mut self.fault_rng);
                    if !fate.dropped {
                        let at = arrival + fate.extra_delay;
                        self.queue.schedule(Lane::Ack, at, Ev::AckArrive(ack));
                        for k in 1..=u64::from(fate.duplicates) {
                            let dup_at = at + SimDuration::from_nanos(k);
                            self.queue.schedule(Lane::Ack, dup_at, Ev::AckArrive(ack));
                        }
                    }
                }
            }
        }
        match out.timer {
            DelAckTimer::Keep => {}
            DelAckTimer::Arm(at) => {
                self.delack_gen += 1;
                self.queue
                    .schedule(Lane::DelAck, at, Ev::DelAck(self.delack_gen));
            }
            DelAckTimer::Cancel => {
                self.delack_gen += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Bernoulli, Deterministic, RoundCorrelated};

    fn secs(v: f64) -> SimDuration {
        SimDuration::from_secs_f64(v)
    }

    #[test]
    fn lossless_connection_is_window_limited() {
        // RTT 100 ms, W_m = 10 → steady state 10 pkts / 0.1 s = 100 pkt/s.
        let sender = SenderConfig {
            rwnd: 10,
            ..SenderConfig::default()
        };
        let mut c = Connection::builder().rtt(0.1).sender_config(sender).build();
        c.run_for(secs(60.0));
        c.finish();
        let stats = c.stats();
        let rate = stats.packets_sent as f64 / 60.0;
        assert!(
            (rate - 100.0).abs() / 100.0 < 0.1,
            "rate {rate} pkt/s, expected ≈100 (window-limited)"
        );
        assert_eq!(stats.loss_indications(), 0);
        assert_eq!(stats.retransmissions, 0);
    }

    #[test]
    fn delivered_never_exceeds_sent() {
        let mut c = Connection::builder()
            .rtt(0.05)
            .loss(Box::new(Bernoulli::new(0.05)))
            .seed(42)
            .build();
        c.run_for(secs(120.0));
        c.finish();
        let s = c.stats();
        assert!(s.packets_delivered <= s.packets_sent);
        assert!(s.packets_delivered > 0);
        assert_eq!(s.packets_sent, s.packets_sent_new + s.retransmissions);
    }

    #[test]
    fn loss_produces_loss_indications() {
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(7)
            .build();
        c.run_for(secs(300.0));
        c.finish();
        let s = c.stats();
        assert!(
            s.loss_indications() > 10,
            "indications: {}",
            s.loss_indications()
        );
        // With a healthy window most single losses should be recoverable by
        // fast retransmit, but some timeouts are expected too.
        assert!(s.td_events > 0, "expected some TD events");
        assert!(s.to_events() > 0, "expected some timeouts");
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut c = Connection::builder()
                .rtt(0.08)
                .loss(Box::new(Bernoulli::new(0.03)))
                .seed(seed)
                .build();
            c.run_for(secs(60.0));
            c.finish();
            c.stats()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).packets_sent, run(6).packets_sent);
    }

    #[test]
    fn higher_loss_means_lower_send_rate() {
        let rate = |p| {
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(p)))
                .seed(11)
                .build();
            c.run_for(secs(300.0));
            c.stats().packets_sent as f64 / 300.0
        };
        let r_low = rate(0.01);
        let r_high = rate(0.10);
        assert!(
            r_low > 1.5 * r_high,
            "expected clear separation: p=1% → {r_low}, p=10% → {r_high}"
        );
    }

    #[test]
    fn shorter_rtt_sends_faster_under_loss() {
        let rate = |rtt| {
            let mut c = Connection::builder()
                .rtt(rtt)
                .loss(Box::new(Bernoulli::new(0.02)))
                .seed(3)
                .build();
            c.run_for(secs(300.0));
            c.stats().packets_sent as f64 / 300.0
        };
        assert!(rate(0.05) > 1.5 * rate(0.4));
    }

    #[test]
    fn total_loss_stalls_but_does_not_hang() {
        // Every packet dropped: the connection must keep backing off without
        // an infinite event loop, and send only retransmissions.
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Deterministic::every(1)))
            .build();
        c.run_for(secs(600.0));
        c.finish();
        let s = c.stats();
        assert_eq!(s.packets_delivered, 0);
        assert!(s.rto_firings >= 5, "rto firings: {}", s.rto_firings);
        assert!(s.packets_sent < 100, "runaway sends: {}", s.packets_sent);
        // One long exponential-backoff sequence.
        assert_eq!(s.to_sequences[5], 1);
    }

    #[test]
    fn round_correlated_loss_integrates() {
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(RoundCorrelated::new(0.02)))
            .seed(9)
            .build();
        c.run_for(secs(300.0));
        c.finish();
        let s = c.stats();
        assert!(s.loss_indications() > 10);
        assert!(s.packets_delivered > 0);
    }

    #[test]
    fn ack_loss_degrades_but_works() {
        let mut c = Connection::builder()
            .rtt(0.1)
            .ack_loss(Box::new(Bernoulli::new(0.2)))
            .seed(13)
            .build();
        c.run_for(secs(60.0));
        c.finish();
        let s = c.stats();
        // Cumulative ACKs make ACK loss mostly harmless: data still flows.
        assert!(s.packets_delivered > 100);
    }

    #[test]
    fn observer_sees_wire_events() {
        #[derive(Default)]
        struct Counter {
            sends: u64,
            acks: u64,
        }
        impl Observer for Counter {
            fn on_segment_sent(&mut self, _at: SimTime, _seg: Segment) {
                self.sends += 1;
            }
            fn on_ack_received(&mut self, _at: SimTime, _ack: Ack) {
                self.acks += 1;
            }
        }
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.01)))
            .seed(1)
            .build_with_observer(Counter::default());
        c.run_for(secs(30.0));
        let stats = c.stats();
        let obs = c.into_observer();
        assert_eq!(obs.sends, stats.packets_sent);
        assert_eq!(obs.acks, stats.acks_received);
        assert!(obs.sends > 0 && obs.acks > 0);
    }

    #[test]
    fn finite_transfer_completes_and_reports_latency() {
        use crate::reno::sender::SenderConfig;
        let sender = SenderConfig {
            data_limit: Some(200),
            ..SenderConfig::default()
        };
        let mut c = Connection::builder()
            .rtt(0.1)
            .sender_config(sender)
            .loss(Box::new(Bernoulli::new(0.01)))
            .seed(17)
            .build();
        let done = c.run_until_complete(SimTime::from_secs_f64(600.0));
        let at = done.expect("200 packets at 1% loss finish well before 600 s");
        c.finish();
        let s = c.stats();
        assert_eq!(s.packets_sent_new, 200);
        assert_eq!(s.packets_delivered, 200);
        // Lossless slow start from cwnd 1 would take ~log2(200) ≈ 8 RTTs;
        // with losses allow a wide but finite band.
        let secs = at.as_secs_f64();
        assert!(secs > 0.5 && secs < 120.0, "completion at {secs}s");
    }

    #[test]
    fn events_processed_is_monotone_and_positive() {
        let mut c = Connection::builder().rtt(0.1).build();
        assert_eq!(c.events_processed(), 0);
        c.run_for(secs(1.0));
        let after_1s = c.events_processed();
        assert!(after_1s > 0);
        c.run_for(secs(1.0));
        assert!(c.events_processed() > after_1s);
    }

    #[test]
    fn event_budget_aborts_without_advancing_to_horizon() {
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(8)
            .build();
        let aborted = c.run_until_budget(SimTime::from_secs_f64(600.0), 500);
        assert!(aborted, "500 events must not cover 600 s");
        assert!(c.events_processed() >= 500);
        assert!(c.now() < SimTime::from_secs_f64(600.0));
        // The abort is clean: the run can be resumed with a larger budget.
        let aborted = c.run_until_budget(SimTime::from_secs_f64(600.0), u64::MAX);
        assert!(!aborted);
        assert_eq!(c.now(), SimTime::from_secs_f64(600.0));
    }

    #[test]
    fn faulted_connection_replays_identically() {
        use crate::fault::FaultPlan;
        // Composed FaultPlan determinism: same plan seed + connection seed
        // ⇒ identical trace (stats are a digest of the wire trace).
        let run = |plan_seed| {
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(0.01)))
                .fault(FaultPlan::from_seed(plan_seed))
                .seed(33)
                .build();
            c.run_for(secs(120.0));
            c.finish();
            c.stats()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let baseline = {
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(0.02)))
                .seed(5)
                .build();
            c.run_for(secs(60.0));
            c.finish();
            c.stats()
        };
        let with_empty_plan = {
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(0.02)))
                .fault(FaultPlan::none())
                .seed(5)
                .build();
            c.run_for(secs(60.0));
            c.finish();
            c.stats()
        };
        assert_eq!(baseline, with_empty_plan);
    }

    #[test]
    //= pftk#random-drop-robustness type=test
    fn connection_survives_heavy_chaos() {
        use crate::fault::{
            AckLoss, CorruptDrop, Duplicate, FaultPlan, JitterBurst, LinkFlap, Reorder,
        };
        use crate::time::SimTime;
        let plan = FaultPlan::none()
            .with(Box::new(Reorder::new(0.1, SimDuration::from_millis(150))))
            .with(Box::new(Duplicate::new(0.05, 2)))
            .with(Box::new(AckLoss::new(0.2)))
            .with(Box::new(JitterBurst::new(
                5.0,
                1.0,
                SimDuration::from_millis(300),
            )))
            .with(Box::new(LinkFlap::new(
                SimTime::from_secs_f64(20.0),
                SimDuration::from_secs_f64(40.0),
                SimDuration::from_secs_f64(6.0),
            )))
            .with(Box::new(CorruptDrop::new(0.02)));
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .fault(plan)
            .seed(91)
            .build();
        c.run_for(secs(300.0));
        c.finish();
        let s = c.stats();
        // Under heavy chaos the connection must still make progress and the
        // core accounting identities must hold.
        assert!(s.packets_delivered > 0, "no progress under chaos");
        assert!(s.packets_delivered <= s.packets_sent);
        assert_eq!(s.packets_sent, s.packets_sent_new + s.retransmissions);
        assert!(s.to_events() > 0, "multi-RTO outages must force timeouts");
    }

    #[test]
    fn run_until_is_resumable() {
        let mut whole = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(21)
            .build();
        whole.run_for(secs(100.0));
        let mut pieces = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(21)
            .build();
        for _ in 0..10 {
            pieces.run_for(secs(10.0));
        }
        assert_eq!(
            whole.stats(),
            pieces.stats(),
            "segmented run must replay identically"
        );
        assert_eq!(pieces.now(), SimTime::from_secs_f64(100.0));
    }
}
