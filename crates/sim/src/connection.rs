//! The full packet-level connection: sender ⇄ paths ⇄ receiver, driven by
//! the discrete-event engine.
//!
//! The [`Connection`] owns the event queue and translates the sans-I/O
//! outputs of [`Sender`] and [`Receiver`] into scheduled events. An
//! [`Observer`] sees exactly what `tcpdump` at the sender would see — data
//! segments leaving and ACKs arriving — which is what the `tcp-trace`
//! analysis programs consume.
//!
//! The hot path is monomorphized two ways: over the event engine
//! ([`EngineKind`] — the hybrid lane scheduler by default, the legacy heap
//! via [`ConnectionBuilder::build_legacy`] for equivalence testing), and
//! over the loss process (the builder converts any concrete model into a
//! [`LossKind`], so per-packet drop draws inline instead of going through a
//! `dyn` call). Sender/receiver outputs are pooled: the steady-state event
//! loop reuses two scratch buffers instead of allocating per event.

use crate::event::{EngineKind, EventScheduler, HybridEngine, Lane, LegacyEngine};
use crate::fault::{Direction, FaultPlan, Impairment};
use crate::link::Path;
use crate::loss::{LossKind, LossModel, NoLoss};
use crate::packet::{Ack, SackBlocks, Segment, Seq};
use crate::receiver::{DelAckTimer, Receiver, ReceiverConfig, ReceiverOutput};
use crate::reno::sender::{Sender, SenderConfig, SenderOutput, TimerCmd};
use crate::rng::SimRng;
use crate::stats::ConnStats;
use crate::time::{SimDuration, SimTime};
use pftk_snap::{frame, unframe, SnapError, SnapReader, SnapResult, SnapWriter};

/// A sender-side wire observer (what `tcpdump` on the sender host records).
pub trait Observer {
    /// A data segment left the sender at `at`.
    fn on_segment_sent(&mut self, at: SimTime, seg: Segment) {
        let _ = (at, seg);
    }
    /// An ACK arrived at the sender at `at`.
    fn on_ack_received(&mut self, at: SimTime, ack: Ack) {
        let _ = (at, ack);
    }
}

/// The "no trace" observer.
impl Observer for () {}

#[derive(Debug)]
enum Ev {
    DataArrive(Segment),
    AckArrive(Ack),
    Rto(u64),
    DelAck(u64),
}

impl Ev {
    /// Payload codec for queue snapshots: a one-byte discriminant, then the
    /// variant's fields.
    fn snapshot_into(&self, w: &mut SnapWriter) {
        match self {
            Ev::DataArrive(seg) => {
                w.put_u8(0);
                w.put_u64(seg.seq);
                w.put_bool(seg.retransmit);
            }
            Ev::AckArrive(ack) => {
                w.put_u8(1);
                w.put_u64(ack.ack);
                ack.sack.snapshot_into(w);
            }
            Ev::Rto(gen) => {
                w.put_u8(2);
                w.put_u64(*gen);
            }
            Ev::DelAck(gen) => {
                w.put_u8(3);
                w.put_u64(*gen);
            }
        }
    }

    fn restore_from(r: &mut SnapReader<'_>) -> SnapResult<Ev> {
        match r.get_u8()? {
            0 => Ok(Ev::DataArrive(Segment {
                seq: r.get_u64()?,
                retransmit: r.get_bool()?,
            })),
            1 => Ok(Ev::AckArrive(Ack {
                ack: r.get_u64()?,
                sack: SackBlocks::restore_from(r)?,
            })),
            2 => Ok(Ev::Rto(r.get_u64()?)),
            3 => Ok(Ev::DelAck(r.get_u64()?)),
            _ => Err(SnapError::Invalid("event payload discriminant")),
        }
    }
}

/// Frame kind identifying a full connection snapshot (DESIGN.md §13).
pub const CONN_SNAPSHOT_KIND: u32 = 1;
/// Newest connection-snapshot format version this build reads and writes.
/// v2 added the sender's congestion-control algorithm tag plus
/// per-variant controller state (CUBIC carries an epoch clock that Reno's
/// three words don't).
pub const CONN_SNAPSHOT_VERSION: u32 = 2;

/// Configuration for a simulated connection; see [`Connection::builder`].
pub struct ConnectionBuilder {
    sender: SenderConfig,
    receiver: ReceiverConfig,
    fwd: Option<Path>,
    rev: Option<Path>,
    loss: LossKind,
    ack_loss: Option<LossKind>,
    fault: FaultPlan,
    rtt: SimDuration,
    seed: u64,
}

impl ConnectionBuilder {
    /// Round-trip propagation delay; ignored for a direction that gets an
    /// explicit [`Path`] via [`Self::fwd_path`]/[`Self::rev_path`].
    pub fn rtt(mut self, secs: f64) -> Self {
        self.rtt = SimDuration::from_secs_f64(secs);
        self
    }

    /// Explicit data-direction path (overrides [`Self::rtt`] for that leg).
    pub fn fwd_path(mut self, path: Path) -> Self {
        self.fwd = Some(path);
        self
    }

    /// Explicit ACK-direction path.
    pub fn rev_path(mut self, path: Path) -> Self {
        self.rev = Some(path);
        self
    }

    /// The data-packet loss process (default: no loss). Accepts any
    /// concrete model (bare or boxed — `Box<dyn LossModel + Send>` still
    /// works); concrete models dispatch with an inlined match per packet.
    pub fn loss<L: Into<LossKind>>(mut self, loss: L) -> Self {
        self.loss = loss.into();
        self
    }

    /// An optional ACK loss process (default: ACKs never dropped).
    pub fn ack_loss<L: Into<LossKind>>(mut self, loss: L) -> Self {
        self.ack_loss = Some(loss.into());
        self
    }

    /// A composed impairment plan ([`crate::fault`]) layered on top of the
    /// loss model and paths: reordering, duplication, ACK loss, delay
    /// spikes, link flaps (default: no impairments). Applied after path
    /// transit so delays can reorder across the path's FIFO clamp.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Sender tunables (window, dupthresh, RTO machinery).
    pub fn sender_config(mut self, config: SenderConfig) -> Self {
        self.sender = config;
        self
    }

    /// Receiver tunables (delayed ACKs).
    pub fn receiver_config(mut self, config: ReceiverConfig) -> Self {
        self.receiver = config;
        self
    }

    /// RNG seed; two builds with identical configuration and seed replay
    /// identical traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds with a custom observer (on the default hybrid engine).
    pub fn build_with_observer<O: Observer>(self, observer: O) -> Connection<O> {
        self.build_engine(observer)
    }

    /// Builds without tracing (on the default hybrid engine).
    pub fn build(self) -> Connection<()> {
        self.build_with_observer(())
    }

    /// Builds on the **legacy single-heap engine** with a custom observer.
    /// Exists for the golden-trace equivalence tests and engine
    /// benchmarks; simulation results are bit-identical to the default
    /// engine, only slower.
    pub fn build_legacy_with_observer<O: Observer>(
        self,
        observer: O,
    ) -> Connection<O, LegacyEngine> {
        self.build_engine(observer)
    }

    /// Builds on the legacy single-heap engine without tracing.
    pub fn build_legacy(self) -> Connection<(), LegacyEngine> {
        self.build_legacy_with_observer(())
    }

    fn build_engine<O: Observer, K: EngineKind>(mut self, observer: O) -> Connection<O, K> {
        // A SACK sender is useless without a SACK-reporting receiver;
        // enable it implicitly (mirrors the SYN-time option negotiation).
        if self.sender.style == crate::reno::sender::RenoStyle::Sack {
            self.receiver.sack = true;
        }
        let mut root = SimRng::seed_from_u64(self.seed);
        let loss_rng = root.fork(1);
        let path_rng = root.fork(2);
        // Forked last so that adding (or removing) a fault plan leaves the
        // loss and path streams — and thus every pre-existing seeded test —
        // bit-for-bit unchanged.
        let fault_rng = root.fork(3);
        let half = SimDuration::from_nanos(self.rtt.as_nanos() / 2);
        Connection {
            now: SimTime::ZERO,
            queue: K::Queue::<Ev>::default(),
            sender: Sender::new(self.sender),
            receiver: Receiver::new(self.receiver),
            fwd: self.fwd.unwrap_or_else(|| Path::constant(half)),
            rev: self.rev.unwrap_or_else(|| Path::constant(half)),
            loss: self.loss,
            ack_loss: self.ack_loss,
            fault: self.fault,
            loss_rng,
            path_rng,
            fault_rng,
            observer,
            rto_gen: 0,
            delack_gen: 0,
            next_round_seq: 0,
            started: false,
            events_processed: 0,
            sender_out: SenderOutput::default(),
            receiver_out: ReceiverOutput::default(),
        }
    }
}

/// A running simulated TCP connection, monomorphized over its event
/// engine `K` (hybrid by default; legacy via
/// [`ConnectionBuilder::build_legacy`]).
pub struct Connection<O: Observer = (), K: EngineKind = HybridEngine> {
    now: SimTime,
    queue: K::Queue<Ev>,
    sender: Sender,
    receiver: Receiver,
    fwd: Path,
    rev: Path,
    loss: LossKind,
    ack_loss: Option<LossKind>,
    fault: FaultPlan,
    loss_rng: SimRng,
    path_rng: SimRng,
    fault_rng: SimRng,
    observer: O,
    rto_gen: u64,
    delack_gen: u64,
    next_round_seq: Seq,
    started: bool,
    events_processed: u64,
    /// Pooled sender-output scratch: reused across events so the steady
    /// state allocates nothing per packet.
    sender_out: SenderOutput,
    /// Pooled receiver-output scratch.
    receiver_out: ReceiverOutput,
}

impl Connection<()> {
    /// Starts building a connection with library defaults: 100 ms RTT,
    /// lossless, delayed ACKs, 64 KiB-equivalent window.
    pub fn builder() -> ConnectionBuilder {
        ConnectionBuilder {
            sender: SenderConfig::default(),
            receiver: ReceiverConfig::default(),
            fwd: None,
            rev: None,
            loss: LossKind::None(NoLoss),
            ack_loss: None,
            fault: FaultPlan::none(),
            rtt: SimDuration::from_millis(100),
            seed: 0,
        }
    }
}

impl<O: Observer, K: EngineKind> Connection<O, K> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ground-truth counters (sender counters + receiver delivery count).
    pub fn stats(&self) -> ConnStats {
        let mut s = self.sender.stats.clone();
        s.packets_delivered = self.receiver.distinct_received();
        s
    }

    /// Read access to the sender (RTT/T0 ground truth, window state).
    pub fn sender(&self) -> &Sender {
        &self.sender
    }

    /// Read access to the receiver.
    pub fn receiver(&self) -> &Receiver {
        &self.receiver
    }

    /// Read access to the observer (e.g. to extract a recorded trace).
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer (e.g. to restore a snapshotted
    /// streaming analyzer alongside [`Connection::restore`] — the
    /// connection snapshot deliberately excludes the observer, whose
    /// persistence is the owner's concern).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consumes the connection, returning the observer.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Packets dropped by path bottlenecks (in addition to the loss model).
    pub fn bottleneck_drops(&self) -> u64 {
        self.fwd.bottleneck_drops() + self.rev.bottleneck_drops()
    }

    /// Total discrete events processed so far. Monotone over the life of
    /// the connection; the testbed supervisor uses it as a sim-event budget
    /// so a pathological configuration cannot spin the event loop forever.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs the connection until the simulated clock reaches `until`.
    /// May be called repeatedly with increasing horizons.
    pub fn run_until(&mut self, until: SimTime) {
        let _ = self.run_until_budget(until, u64::MAX);
    }

    /// Like [`Connection::run_until`], but aborts once the *total* event
    /// count ([`Connection::events_processed`]) reaches `max_events`,
    /// returning `true` on abort. The clock is left at the last processed
    /// event rather than advanced to `until`, so callers can report how
    /// far the simulation actually got. This is the sim-side deadline the
    /// testbed supervisor arms against runaway event loops.
    pub fn run_until_budget(&mut self, until: SimTime, max_events: u64) -> bool {
        if !self.started {
            self.started = true;
            // The scratch outputs are taken out for the duration of a
            // dispatch (the borrow checker cannot see that
            // `apply_*_output` leaves them alone) and put back after —
            // a pointer swap, not an allocation.
            let mut out = std::mem::take(&mut self.sender_out);
            self.sender.on_start_into(self.now, &mut out);
            self.apply_sender_output(&out);
            self.sender_out = out;
        }
        while let Some(at) = self.queue.peek_time() {
            if at > until {
                break;
            }
            if self.events_processed >= max_events {
                return true;
            }
            let Some((at, ev)) = self.queue.pop() else {
                break;
            };
            self.now = at;
            self.events_processed += 1;
            match ev {
                Ev::DataArrive(seg) => {
                    let mut out = std::mem::take(&mut self.receiver_out);
                    self.receiver.on_segment_into(self.now, seg, &mut out);
                    self.apply_receiver_output(&out);
                    self.receiver_out = out;
                }
                Ev::AckArrive(ack) => {
                    self.observer.on_ack_received(self.now, ack);
                    let mut out = std::mem::take(&mut self.sender_out);
                    self.sender.on_ack_into(self.now, ack, &mut out);
                    self.apply_sender_output(&out);
                    self.sender_out = out;
                }
                Ev::Rto(gen) => {
                    if gen == self.rto_gen {
                        let mut out = std::mem::take(&mut self.sender_out);
                        self.sender.on_rto_into(self.now, &mut out);
                        self.apply_sender_output(&out);
                        self.sender_out = out;
                    }
                }
                Ev::DelAck(gen) => {
                    if gen == self.delack_gen {
                        let mut out = std::mem::take(&mut self.receiver_out);
                        self.receiver.on_delack_into(&mut out);
                        self.apply_receiver_output(&out);
                        self.receiver_out = out;
                    }
                }
            }
        }
        self.now = until;
        false
    }

    /// Convenience: run for a span from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        self.run_until(self.now + span);
    }

    /// For a finite transfer ([`crate::reno::sender::SenderConfig::data_limit`]):
    /// runs until the transfer completes or `deadline` passes, returning the
    /// completion instant if reached. Events are drained in bounded slices
    /// so the clock cannot run past `deadline`.
    pub fn run_until_complete(&mut self, deadline: SimTime) -> Option<SimTime> {
        while self.now < deadline && !self.sender.is_complete() {
            let step = SimDuration::from_millis(50).min(deadline - self.now);
            self.run_until(self.now + step);
        }
        self.sender.completed_at()
    }

    /// Flushes end-of-run bookkeeping (open timeout sequences) into the
    /// stats. Call once after the final `run_until`.
    pub fn finish(&mut self) {
        self.sender.finish();
    }

    fn apply_sender_output(&mut self, out: &SenderOutput) {
        for &seg in &out.segments {
            self.observer.on_segment_sent(self.now, seg);
            // Round accounting for intra-round-correlated loss models.
            if seg.retransmit {
                self.loss.on_round_boundary();
                self.next_round_seq = self.sender.snd_nxt();
            } else if seg.seq >= self.next_round_seq {
                self.loss.on_round_boundary();
                self.next_round_seq = seg.seq + self.sender.usable_window().max(1);
            }
            if self.loss.should_drop(self.now, &mut self.loss_rng) {
                self.sender.stats.packets_dropped += 1;
                continue;
            }
            match self.fwd.transit(self.now, &mut self.path_rng) {
                Some(arrival) => {
                    if self.fault.is_empty() {
                        self.queue
                            .schedule(Lane::Data, arrival, Ev::DataArrive(seg));
                    } else {
                        let fate = self
                            .fault
                            .apply(self.now, Direction::Data, &mut self.fault_rng);
                        if fate.dropped {
                            self.sender.stats.packets_dropped += 1;
                        } else {
                            let at = arrival + fate.extra_delay;
                            self.queue.schedule(Lane::Data, at, Ev::DataArrive(seg));
                            // Extra copies land a nanosecond apart: distinct
                            // arrivals, effectively simultaneous.
                            for k in 1..=u64::from(fate.duplicates) {
                                let dup_at = at + SimDuration::from_nanos(k);
                                self.queue.schedule(Lane::Data, dup_at, Ev::DataArrive(seg));
                            }
                        }
                    }
                }
                None => self.sender.stats.packets_dropped += 1,
            }
        }
        if let TimerCmd::Arm(at) = out.timer {
            self.rto_gen += 1;
            self.queue.schedule(Lane::Rto, at, Ev::Rto(self.rto_gen));
        }
    }

    fn apply_receiver_output(&mut self, out: &ReceiverOutput) {
        for &ack in &out.acks {
            if let Some(al) = &mut self.ack_loss {
                if al.should_drop(self.now, &mut self.loss_rng) {
                    continue;
                }
            }
            if let Some(arrival) = self.rev.transit(self.now, &mut self.path_rng) {
                if self.fault.is_empty() {
                    self.queue.schedule(Lane::Ack, arrival, Ev::AckArrive(ack));
                } else {
                    let fate = self
                        .fault
                        .apply(self.now, Direction::Ack, &mut self.fault_rng);
                    if !fate.dropped {
                        let at = arrival + fate.extra_delay;
                        self.queue.schedule(Lane::Ack, at, Ev::AckArrive(ack));
                        for k in 1..=u64::from(fate.duplicates) {
                            let dup_at = at + SimDuration::from_nanos(k);
                            self.queue.schedule(Lane::Ack, dup_at, Ev::AckArrive(ack));
                        }
                    }
                }
            }
        }
        match out.timer {
            DelAckTimer::Keep => {}
            DelAckTimer::Arm(at) => {
                self.delack_gen += 1;
                self.queue
                    .schedule(Lane::DelAck, at, Ev::DelAck(self.delack_gen));
            }
            DelAckTimer::Cancel => {
                self.delack_gen += 1;
            }
        }
    }
}

/// Checkpoint/restore — available on the default hybrid engine (the one
/// campaigns run on).
impl<O: Observer> Connection<O, HybridEngine> {
    /// Encodes the connection's full mutable state — clock, event queue,
    /// sender/receiver protocol state, path and loss-process cursors, fault
    /// plan cursors, and all three RNG stream positions — as a framed,
    /// checksummed snapshot ([`CONN_SNAPSHOT_KIND`]).
    ///
    /// A connection restored from this snapshot into an identically
    /// configured build produces a bit-identical event stream to the
    /// uninterrupted run. The observer is *not* captured: trace state is
    /// snapshotted separately by the caller (observers are caller-owned and
    /// arbitrary).
    ///
    /// Errors only when the state is not snapshottable
    /// ([`SnapError::Unsupported`], e.g. a type-erased
    /// [`crate::loss::LossKind::Dyn`] loss process).
    pub fn snapshot(&self) -> SnapResult<Vec<u8>> {
        let mut w = SnapWriter::with_capacity(4096);
        w.put_u64(self.now.as_nanos());
        w.put_u64(self.rto_gen);
        w.put_u64(self.delack_gen);
        w.put_u64(self.next_round_seq);
        w.put_bool(self.started);
        w.put_u64(self.events_processed);
        // The pooled sender/receiver scratch buffers are intentionally not
        // captured: they are dead between events (each dispatch clears and
        // refills them before they are read).
        self.queue.snapshot_into(&mut w, Ev::snapshot_into);
        self.sender.snapshot_into(&mut w);
        self.receiver.snapshot_into(&mut w);
        self.fwd.snapshot_into(&mut w);
        self.rev.snapshot_into(&mut w);
        self.loss.snapshot_into(&mut w)?;
        match &self.ack_loss {
            Some(al) => {
                w.put_bool(true);
                al.snapshot_into(&mut w)?;
            }
            None => w.put_bool(false),
        }
        self.fault.state_snapshot_into(&mut w);
        self.loss_rng.snapshot_into(&mut w);
        self.path_rng.snapshot_into(&mut w);
        self.fault_rng.snapshot_into(&mut w);
        Ok(frame(
            CONN_SNAPSHOT_KIND,
            CONN_SNAPSHOT_VERSION,
            &w.into_bytes(),
        ))
    }

    /// Applies a snapshot produced by [`Connection::snapshot`] into this
    /// connection, which must have been built with the same configuration
    /// (builder parameters and seed). Shape tags catch mismatched
    /// configurations ([`SnapError::TagMismatch`]); corrupt or truncated
    /// bytes fail the frame checksum or a bounds check — never a panic.
    ///
    /// On error the connection is left in an unspecified partially-restored
    /// state: rebuild it before further use.
    pub fn restore(&mut self, bytes: &[u8]) -> SnapResult<()> {
        let framed = unframe(bytes, CONN_SNAPSHOT_VERSION)?;
        if framed.kind != CONN_SNAPSHOT_KIND {
            return Err(SnapError::Invalid("not a connection snapshot"));
        }
        let mut r = SnapReader::new(framed.payload);
        self.now = SimTime::from_nanos(r.get_u64()?);
        self.rto_gen = r.get_u64()?;
        self.delack_gen = r.get_u64()?;
        self.next_round_seq = r.get_u64()?;
        self.started = r.get_bool()?;
        self.events_processed = r.get_u64()?;
        self.queue.restore_from(&mut r, Ev::restore_from)?;
        self.sender.restore_from(&mut r)?;
        self.receiver.restore_from(&mut r)?;
        self.fwd.restore_from(&mut r)?;
        self.rev.restore_from(&mut r)?;
        self.loss.restore_from(&mut r)?;
        let snap_has_ack_loss = r.get_bool()?;
        match (&mut self.ack_loss, snap_has_ack_loss) {
            (Some(al), true) => al.restore_from(&mut r)?,
            (None, false) => {}
            (target, found) => {
                return Err(SnapError::TagMismatch {
                    context: "ack-loss-presence",
                    expected: u64::from(target.is_some()),
                    found: u64::from(found),
                });
            }
        }
        self.fault.state_restore_from(&mut r)?;
        self.loss_rng.restore_from(&mut r)?;
        self.path_rng.restore_from(&mut r)?;
        self.fault_rng.restore_from(&mut r)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Bernoulli, Deterministic, RoundCorrelated};

    fn secs(v: f64) -> SimDuration {
        SimDuration::from_secs_f64(v)
    }

    #[test]
    fn lossless_connection_is_window_limited() {
        // RTT 100 ms, W_m = 10 → steady state 10 pkts / 0.1 s = 100 pkt/s.
        let sender = SenderConfig {
            rwnd: 10,
            ..SenderConfig::default()
        };
        let mut c = Connection::builder().rtt(0.1).sender_config(sender).build();
        c.run_for(secs(60.0));
        c.finish();
        let stats = c.stats();
        let rate = stats.packets_sent as f64 / 60.0;
        assert!(
            (rate - 100.0).abs() / 100.0 < 0.1,
            "rate {rate} pkt/s, expected ≈100 (window-limited)"
        );
        assert_eq!(stats.loss_indications(), 0);
        assert_eq!(stats.retransmissions, 0);
    }

    #[test]
    fn delivered_never_exceeds_sent() {
        let mut c = Connection::builder()
            .rtt(0.05)
            .loss(Box::new(Bernoulli::new(0.05)))
            .seed(42)
            .build();
        c.run_for(secs(120.0));
        c.finish();
        let s = c.stats();
        assert!(s.packets_delivered <= s.packets_sent);
        assert!(s.packets_delivered > 0);
        assert_eq!(s.packets_sent, s.packets_sent_new + s.retransmissions);
    }

    #[test]
    fn loss_produces_loss_indications() {
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(7)
            .build();
        c.run_for(secs(300.0));
        c.finish();
        let s = c.stats();
        assert!(
            s.loss_indications() > 10,
            "indications: {}",
            s.loss_indications()
        );
        // With a healthy window most single losses should be recoverable by
        // fast retransmit, but some timeouts are expected too.
        assert!(s.td_events > 0, "expected some TD events");
        assert!(s.to_events() > 0, "expected some timeouts");
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut c = Connection::builder()
                .rtt(0.08)
                .loss(Box::new(Bernoulli::new(0.03)))
                .seed(seed)
                .build();
            c.run_for(secs(60.0));
            c.finish();
            c.stats()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).packets_sent, run(6).packets_sent);
    }

    #[test]
    fn higher_loss_means_lower_send_rate() {
        let rate = |p| {
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(p)))
                .seed(11)
                .build();
            c.run_for(secs(300.0));
            c.stats().packets_sent as f64 / 300.0
        };
        let r_low = rate(0.01);
        let r_high = rate(0.10);
        assert!(
            r_low > 1.5 * r_high,
            "expected clear separation: p=1% → {r_low}, p=10% → {r_high}"
        );
    }

    #[test]
    fn shorter_rtt_sends_faster_under_loss() {
        let rate = |rtt| {
            let mut c = Connection::builder()
                .rtt(rtt)
                .loss(Box::new(Bernoulli::new(0.02)))
                .seed(3)
                .build();
            c.run_for(secs(300.0));
            c.stats().packets_sent as f64 / 300.0
        };
        assert!(rate(0.05) > 1.5 * rate(0.4));
    }

    #[test]
    fn total_loss_stalls_but_does_not_hang() {
        // Every packet dropped: the connection must keep backing off without
        // an infinite event loop, and send only retransmissions.
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Deterministic::every(1)))
            .build();
        c.run_for(secs(600.0));
        c.finish();
        let s = c.stats();
        assert_eq!(s.packets_delivered, 0);
        assert!(s.rto_firings >= 5, "rto firings: {}", s.rto_firings);
        assert!(s.packets_sent < 100, "runaway sends: {}", s.packets_sent);
        // One long exponential-backoff sequence.
        assert_eq!(s.to_sequences[5], 1);
    }

    #[test]
    fn round_correlated_loss_integrates() {
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(RoundCorrelated::new(0.02)))
            .seed(9)
            .build();
        c.run_for(secs(300.0));
        c.finish();
        let s = c.stats();
        assert!(s.loss_indications() > 10);
        assert!(s.packets_delivered > 0);
    }

    #[test]
    fn ack_loss_degrades_but_works() {
        let mut c = Connection::builder()
            .rtt(0.1)
            .ack_loss(Box::new(Bernoulli::new(0.2)))
            .seed(13)
            .build();
        c.run_for(secs(60.0));
        c.finish();
        let s = c.stats();
        // Cumulative ACKs make ACK loss mostly harmless: data still flows.
        assert!(s.packets_delivered > 100);
    }

    #[test]
    fn observer_sees_wire_events() {
        #[derive(Default)]
        struct Counter {
            sends: u64,
            acks: u64,
        }
        impl Observer for Counter {
            fn on_segment_sent(&mut self, _at: SimTime, _seg: Segment) {
                self.sends += 1;
            }
            fn on_ack_received(&mut self, _at: SimTime, _ack: Ack) {
                self.acks += 1;
            }
        }
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.01)))
            .seed(1)
            .build_with_observer(Counter::default());
        c.run_for(secs(30.0));
        let stats = c.stats();
        let obs = c.into_observer();
        assert_eq!(obs.sends, stats.packets_sent);
        assert_eq!(obs.acks, stats.acks_received);
        assert!(obs.sends > 0 && obs.acks > 0);
    }

    #[test]
    fn finite_transfer_completes_and_reports_latency() {
        use crate::reno::sender::SenderConfig;
        let sender = SenderConfig {
            data_limit: Some(200),
            ..SenderConfig::default()
        };
        let mut c = Connection::builder()
            .rtt(0.1)
            .sender_config(sender)
            .loss(Box::new(Bernoulli::new(0.01)))
            .seed(17)
            .build();
        let done = c.run_until_complete(SimTime::from_secs_f64(600.0));
        let at = done.expect("200 packets at 1% loss finish well before 600 s");
        c.finish();
        let s = c.stats();
        assert_eq!(s.packets_sent_new, 200);
        assert_eq!(s.packets_delivered, 200);
        // Lossless slow start from cwnd 1 would take ~log2(200) ≈ 8 RTTs;
        // with losses allow a wide but finite band.
        let secs = at.as_secs_f64();
        assert!(secs > 0.5 && secs < 120.0, "completion at {secs}s");
    }

    #[test]
    fn events_processed_is_monotone_and_positive() {
        let mut c = Connection::builder().rtt(0.1).build();
        assert_eq!(c.events_processed(), 0);
        c.run_for(secs(1.0));
        let after_1s = c.events_processed();
        assert!(after_1s > 0);
        c.run_for(secs(1.0));
        assert!(c.events_processed() > after_1s);
    }

    #[test]
    fn event_budget_aborts_without_advancing_to_horizon() {
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(8)
            .build();
        let aborted = c.run_until_budget(SimTime::from_secs_f64(600.0), 500);
        assert!(aborted, "500 events must not cover 600 s");
        assert!(c.events_processed() >= 500);
        assert!(c.now() < SimTime::from_secs_f64(600.0));
        // The abort is clean: the run can be resumed with a larger budget.
        let aborted = c.run_until_budget(SimTime::from_secs_f64(600.0), u64::MAX);
        assert!(!aborted);
        assert_eq!(c.now(), SimTime::from_secs_f64(600.0));
    }

    #[test]
    fn faulted_connection_replays_identically() {
        use crate::fault::FaultPlan;
        // Composed FaultPlan determinism: same plan seed + connection seed
        // ⇒ identical trace (stats are a digest of the wire trace).
        let run = |plan_seed| {
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(0.01)))
                .fault(FaultPlan::from_seed(plan_seed))
                .seed(33)
                .build();
            c.run_for(secs(120.0));
            c.finish();
            c.stats()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let baseline = {
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(0.02)))
                .seed(5)
                .build();
            c.run_for(secs(60.0));
            c.finish();
            c.stats()
        };
        let with_empty_plan = {
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(0.02)))
                .fault(FaultPlan::none())
                .seed(5)
                .build();
            c.run_for(secs(60.0));
            c.finish();
            c.stats()
        };
        assert_eq!(baseline, with_empty_plan);
    }

    #[test]
    //= pftk#random-drop-robustness type=test
    fn connection_survives_heavy_chaos() {
        use crate::fault::{
            AckLoss, CorruptDrop, Duplicate, FaultPlan, JitterBurst, LinkFlap, Reorder,
        };
        use crate::time::SimTime;
        let plan = FaultPlan::none()
            .with(Box::new(Reorder::new(0.1, SimDuration::from_millis(150))))
            .with(Box::new(Duplicate::new(0.05, 2)))
            .with(Box::new(AckLoss::new(0.2)))
            .with(Box::new(JitterBurst::new(
                5.0,
                1.0,
                SimDuration::from_millis(300),
            )))
            .with(Box::new(LinkFlap::new(
                SimTime::from_secs_f64(20.0),
                SimDuration::from_secs_f64(40.0),
                SimDuration::from_secs_f64(6.0),
            )))
            .with(Box::new(CorruptDrop::new(0.02)));
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .fault(plan)
            .seed(91)
            .build();
        c.run_for(secs(300.0));
        c.finish();
        let s = c.stats();
        // Under heavy chaos the connection must still make progress and the
        // core accounting identities must hold.
        assert!(s.packets_delivered > 0, "no progress under chaos");
        assert!(s.packets_delivered <= s.packets_sent);
        assert_eq!(s.packets_sent, s.packets_sent_new + s.retransmissions);
        assert!(s.to_events() > 0, "multi-RTO outages must force timeouts");
    }

    #[test]
    fn run_until_is_resumable() {
        let mut whole = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(21)
            .build();
        whole.run_for(secs(100.0));
        let mut pieces = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(21)
            .build();
        for _ in 0..10 {
            pieces.run_for(secs(10.0));
        }
        assert_eq!(
            whole.stats(),
            pieces.stats(),
            "segmented run must replay identically"
        );
        assert_eq!(pieces.now(), SimTime::from_secs_f64(100.0));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let build = || {
            Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(0.02)))
                .seed(21)
                .build()
        };
        let mut whole = build();
        whole.run_for(secs(100.0));
        whole.finish();

        let mut interrupted = build();
        interrupted.run_for(secs(37.0));
        let snap = interrupted.snapshot().expect("snapshot");
        // Snapshot encoding is deterministic: same state, same bytes.
        assert_eq!(snap, interrupted.snapshot().expect("snapshot again"));

        let mut resumed = build();
        resumed.restore(&snap).expect("restore");
        assert_eq!(resumed.now(), interrupted.now());
        assert_eq!(resumed.events_processed(), interrupted.events_processed());
        assert_eq!(resumed.stats(), interrupted.stats());

        // Both the original and the restored copy continue identically to
        // the uninterrupted run.
        for c in [&mut interrupted, &mut resumed] {
            c.run_until(SimTime::from_secs_f64(100.0));
            c.finish();
            assert_eq!(
                whole.stats(),
                c.stats(),
                "resume must replay bit-identically"
            );
            assert_eq!(c.now(), SimTime::from_secs_f64(100.0));
        }
    }

    #[test]
    fn snapshot_restore_under_chaos_resumes_bit_identically() {
        use crate::fault::FaultPlan;
        use crate::reno::sender::{RenoStyle, SenderConfig};
        // The stress configuration: stateful loss cursor, ACK loss, a
        // seeded fault plan (reordering/duplication/jitter cursors), SACK
        // scoreboard, delayed ACKs — every snapshottable subsystem live.
        let build = || {
            Connection::builder()
                .rtt(0.08)
                .sender_config(SenderConfig {
                    style: RenoStyle::Sack,
                    ..SenderConfig::default()
                })
                .loss(Box::new(RoundCorrelated::new(0.02)))
                .ack_loss(Box::new(Bernoulli::new(0.1)))
                .fault(FaultPlan::from_seed(7))
                .seed(91)
                .build()
        };
        let mut whole = build();
        whole.run_for(secs(120.0));
        whole.finish();

        for cut in [13.0, 61.7, 119.9] {
            let mut first = build();
            first.run_until(SimTime::from_secs_f64(cut));
            let snap = first.snapshot().expect("snapshot");
            let mut resumed = build();
            resumed.restore(&snap).expect("restore");
            resumed.run_until(SimTime::from_secs_f64(120.0));
            resumed.finish();
            assert_eq!(whole.stats(), resumed.stats(), "cut at {cut}s");
        }
    }

    #[test]
    fn snapshot_restore_is_bit_identical_for_every_cc_variant() {
        use crate::cc::CcAlgorithm;
        use crate::reno::sender::SenderConfig;
        for algo in CcAlgorithm::ALL {
            let build = |cc| {
                Connection::builder()
                    .rtt(0.09)
                    .sender_config(SenderConfig {
                        cc,
                        ..SenderConfig::default()
                    })
                    .loss(Box::new(RoundCorrelated::new(0.03)))
                    .seed(17)
                    .build()
            };
            let mut whole = build(algo);
            whole.run_for(secs(90.0));
            whole.finish();

            let mut first = build(algo);
            first.run_until(SimTime::from_secs_f64(41.3));
            let snap = first.snapshot().expect("snapshot");
            let mut resumed = build(algo);
            resumed.restore(&snap).expect("restore");
            resumed.run_until(SimTime::from_secs_f64(90.0));
            resumed.finish();
            assert_eq!(
                whole.stats(),
                resumed.stats(),
                "{algo:?}: resume must replay bit-identically"
            );

            // Cross-variant restore: the sender's algorithm tag rejects a
            // snapshot taken under a different controller.
            let other = if algo == CcAlgorithm::Reno {
                CcAlgorithm::Cubic
            } else {
                CcAlgorithm::Reno
            };
            assert!(
                matches!(
                    build(other).restore(&snap),
                    Err(pftk_snap::SnapError::TagMismatch {
                        context: "sender-cc",
                        ..
                    })
                ),
                "{algo:?} snapshot restored into {other:?}"
            );

            // Torn tail: every truncation errors, never panics, for every
            // variant's state layout.
            for cut in [0, 1, snap.len() / 2, snap.len() - 1] {
                assert!(
                    build(algo).restore(&snap[..cut]).is_err(),
                    "{algo:?}: truncation to {cut} bytes restored"
                );
            }
        }
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        let mut donor = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(3)
            .build();
        donor.run_for(secs(10.0));
        let snap = donor.snapshot().expect("snapshot");

        // Different loss-process kind.
        let mut wrong_loss = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(RoundCorrelated::new(0.02)))
            .seed(3)
            .build();
        assert!(matches!(
            wrong_loss.restore(&snap),
            Err(pftk_snap::SnapError::TagMismatch { .. })
        ));

        // ACK-loss process present in the target but not the snapshot.
        let mut wrong_ack = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .ack_loss(Box::new(Bernoulli::new(0.1)))
            .seed(3)
            .build();
        assert!(matches!(
            wrong_ack.restore(&snap),
            Err(pftk_snap::SnapError::TagMismatch {
                context: "ack-loss-presence",
                ..
            })
        ));
    }

    #[test]
    fn restore_rejects_corruption_without_panicking() {
        use pftk_snap::SnapError;
        let mut donor = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(0.02)))
            .seed(3)
            .build();
        donor.run_for(secs(10.0));
        let snap = donor.snapshot().expect("snapshot");
        let fresh = || {
            Connection::builder()
                .rtt(0.1)
                .loss(Box::new(Bernoulli::new(0.02)))
                .seed(3)
                .build()
        };

        // Bit flip anywhere in the payload: the frame checksum catches it.
        let mut flipped = snap.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(fresh().restore(&flipped), Err(SnapError::ChecksumMismatch));

        // Truncations at every prefix length must error, never panic.
        for cut in 0..snap.len().min(64) {
            assert!(fresh().restore(&snap[..cut]).is_err(), "prefix {cut}");
        }
        assert!(fresh().restore(&snap[..snap.len() - 1]).is_err());

        // Garbage input: bad magic.
        assert_eq!(
            fresh().restore(&[0u8; 64]),
            Err(SnapError::BadMagic),
            "garbage must be rejected at the magic check"
        );

        // The pristine snapshot still restores after all that.
        let mut ok = fresh();
        ok.restore(&snap).expect("pristine restore");
        assert_eq!(ok.stats(), donor.stats());
    }

    #[test]
    fn dyn_loss_snapshot_is_unsupported_not_a_panic() {
        use crate::loss::LossModel;
        let dynamic: Box<dyn LossModel + Send> = Box::new(Bernoulli::new(0.01));
        let mut c = Connection::builder().rtt(0.1).loss(dynamic).seed(1).build();
        c.run_for(secs(5.0));
        assert!(matches!(
            c.snapshot(),
            Err(pftk_snap::SnapError::Unsupported(_))
        ));
    }
}
