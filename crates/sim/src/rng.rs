//! Deterministic random-number generation.
//!
//! Every stochastic element of the simulator (loss draws, RTT jitter,
//! timeout placement) pulls from a [`SimRng`] seeded explicitly, so a run is
//! a pure function of its configuration — reruns reproduce traces bit for
//! bit, which the integration tests rely on.

use pftk_snap::{SnapReader, SnapResult, SnapWriter};
use rand::distributions::Open01;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seedable, deterministic RNG (ChaCha8 — fast, high-quality, portable
/// across platforms, unlike `SmallRng` whose algorithm may change).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    //= pftk#det-seeded-streams
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream; used so that e.g. the loss
    /// process and the jitter process cannot influence each other by
    /// consuming from a shared stream.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let mut seed = [0u8; 32];
        self.inner.fill_bytes(&mut seed);
        // Mix the label in so identical fork orders with different labels
        // still diverge.
        for (i, b) in label.to_le_bytes().iter().enumerate() {
            seed[i] ^= b;
        }
        SimRng {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    /// Writes the stream state (seed + keystream position) so a restored
    /// generator continues the identical random stream.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_raw(&self.inner.get_seed());
        w.put_u64(self.inner.get_word_pos());
    }

    /// Repositions this generator to a state written by
    /// [`Self::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        let mut seed = [0u8; 32];
        seed.copy_from_slice(r.get_raw(32)?);
        let pos = r.get_u64()?;
        let mut inner = ChaCha8Rng::from_seed(seed);
        inner.set_word_pos(pos);
        self.inner = inner;
        Ok(())
    }

    /// A uniform draw in the open interval (0, 1).
    #[inline]
    pub fn open01(&mut self) -> f64 {
        self.inner.sample(Open01)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.open01() < p
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn uniform_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform integer in `[lo, hi]` inclusive (64-bit; used for
    /// nanosecond-granularity delay draws).
    #[inline]
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// A geometric draw: number of Bernoulli(p) trials up to and including
    /// the first success, i.e. `P[K = k] = (1-p)^{k-1} p`. Used by the
    /// rounds-based simulator for first-loss positions. Capped at `cap` to
    /// bound pathological draws when `p` is microscopic.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        debug_assert!(p > 0.0 && p < 1.0);
        // Inverse-CDF sampling: K = ceil(ln(U) / ln(1-p)).
        let u: f64 = self.open01();
        let k = (u.ln() / (1.0 - p).ln()).ceil();
        if k < 1.0 {
            1
        //~ allow(cast): integer count to f64, exact below 2^53
        } else if k >= cap as f64 {
            cap
        } else {
            k as u64 //~ allow(cast): deliberate float truncation after round/floor
        }
    }
}

/// Deterministic per-flow seed for fleet campaigns: a splitmix64-style
/// finalizer over the campaign seed and the *global* flow id.
///
/// A flow's random stream is a pure function of `(base_seed, flow_id)` —
/// never of the shard the flow landed on, the shard count, or the worker
/// schedule — which is what makes fleet output bit-identical across
/// 1/2/8-shard runs (the fleet analogue of `PFTK_REPLAY_WORKERS`).
//= pftk#det-seeded-streams
pub fn flow_seed(base_seed: u64, flow_id: u64) -> u64 {
    let mut z = base_seed ^ flow_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    //= pftk#det-seeded-streams type=test
    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.open01(), b.open01());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.open01() == b.open01()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from_u64(42);
        let mut root2 = SimRng::seed_from_u64(42);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        for _ in 0..10 {
            assert_eq!(f1.open01(), f2.open01());
        }
        // Different labels at the same fork point give different streams.
        let mut r1 = SimRng::seed_from_u64(42);
        let mut g1 = r1.fork(1);
        let mut r2 = SimRng::seed_from_u64(42);
        let mut g2 = r2.fork(2);
        assert_ne!(g1.open01(), g2.open01());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 200_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn geometric_mean_close_to_1_over_p() {
        let mut rng = SimRng::seed_from_u64(9);
        let p = 0.05;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p, u64::MAX)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn geometric_respects_cap() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.geometric(1e-9, 10) <= 10);
        }
    }

    #[test]
    fn snapshot_resumes_identical_stream() {
        let mut root = SimRng::seed_from_u64(11);
        let mut rng = root.fork(2);
        for _ in 0..37 {
            rng.open01();
        }
        let mut w = SnapWriter::new();
        rng.snapshot_into(&mut w);
        let bytes = w.into_bytes();
        let mut restored = SimRng::seed_from_u64(0);
        let mut r = SnapReader::new(&bytes);
        restored.restore_from(&mut r).unwrap();
        r.finish().unwrap();
        for _ in 0..100 {
            assert_eq!(rng.open01().to_bits(), restored.open01().to_bits());
        }
    }

    #[test]
    fn flow_seed_depends_only_on_base_and_flow() {
        assert_eq!(flow_seed(1, 2), flow_seed(1, 2));
        assert_ne!(flow_seed(1, 2), flow_seed(1, 3));
        assert_ne!(flow_seed(1, 2), flow_seed(2, 2));
        // Adjacent flow ids must not produce correlated seeds that collide.
        let seeds: std::collections::BTreeSet<u64> =
            (0..10_000u64).map(|f| flow_seed(0xABCD, f)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.uniform_u32(3, 7);
            assert!((3..=7).contains(&v));
            let w = rng.uniform_u64(10, 20);
            assert!((10..=20).contains(&w));
            let f = rng.uniform_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
        }
        assert_eq!(rng.uniform_f64(5.0, 5.0), 5.0);
    }
}
