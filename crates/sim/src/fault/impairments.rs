//! The concrete impairments: reordering, duplication, ACK loss, delay
//! bursts, link flaps, and corruption-as-drop.
//!
//! Each one models a failure mode the paper's measured connections were
//! exposed to but the clean testbed never exercised. All are deterministic
//! functions of their configuration and the RNG stream they are handed.

use super::{Direction, Impairment, PacketFate};
use crate::loss::TimedGilbertElliott;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Packet reordering by bounded hold-back: with probability `p` a packet
/// is delayed by a uniform extra hold in `(0, max_hold]`, letting packets
/// sent after it overtake it. The displacement is *bounded*: no packet is
/// ever held longer than `max_hold`.
#[derive(Debug, Clone)]
pub struct Reorder {
    p: f64,
    max_hold: SimDuration,
}

impl Reorder {
    /// Reorders a fraction `p` of packets (clamped to `[0, 1]`) with a
    /// hold-back of at most `max_hold`.
    pub fn new(p: f64, max_hold: SimDuration) -> Self {
        Reorder {
            p: p.clamp(0.0, 1.0),
            max_hold,
        }
    }

    /// The displacement bound.
    pub fn max_hold(&self) -> SimDuration {
        self.max_hold
    }
}

impl Impairment for Reorder {
    fn apply(&mut self, _now: SimTime, _dir: Direction, rng: &mut SimRng) -> PacketFate {
        if !rng.chance(self.p) || self.max_hold == SimDuration::ZERO {
            return PacketFate::clean();
        }
        let hold = rng.uniform_u64(1, self.max_hold.as_nanos());
        PacketFate {
            extra_delay: SimDuration::from_nanos(hold),
            ..PacketFate::clean()
        }
    }

    fn label(&self) -> &'static str {
        "reorder"
    }
}

/// Packet duplication: with probability `p`, exactly `copies` extra copies
/// of the packet are delivered (both directions — duplicated ACKs are the
/// interesting case, since they can trip the fast-retransmit threshold).
#[derive(Debug, Clone)]
pub struct Duplicate {
    p: f64,
    copies: u32,
}

impl Duplicate {
    /// Duplicates a fraction `p` of packets `copies` extra times.
    pub fn new(p: f64, copies: u32) -> Self {
        Duplicate {
            p: p.clamp(0.0, 1.0),
            copies,
        }
    }

    /// Extra copies delivered per duplicated packet.
    pub fn copies(&self) -> u32 {
        self.copies
    }
}

impl Impairment for Duplicate {
    fn apply(&mut self, _now: SimTime, _dir: Direction, rng: &mut SimRng) -> PacketFate {
        if rng.chance(self.p) {
            PacketFate {
                duplicates: self.copies,
                ..PacketFate::clean()
            }
        } else {
            PacketFate::clean()
        }
    }

    fn label(&self) -> &'static str {
        "duplicate"
    }
}

/// Reverse-path Bernoulli ACK loss. The §II model assumes ACKs are never
/// lost; this impairment exists to stress exactly that assumption (TCP's
/// cumulative ACKs make moderate ACK loss mostly harmless, which the
/// chaos tests confirm).
//= pftk#ack-path-lossless
#[derive(Debug, Clone)]
pub struct AckLoss {
    p: f64,
}

impl AckLoss {
    /// Drops each ACK independently with probability `p`.
    pub fn new(p: f64) -> Self {
        AckLoss {
            p: p.clamp(0.0, 1.0),
        }
    }
}

impl Impairment for AckLoss {
    fn apply(&mut self, _now: SimTime, dir: Direction, rng: &mut SimRng) -> PacketFate {
        if dir == Direction::Ack && rng.chance(self.p) {
            PacketFate::drop_packet()
        } else {
            PacketFate::clean()
        }
    }

    fn label(&self) -> &'static str {
        "ack-loss"
    }
}

/// Timed delay bursts (RTT spikes): during an episode every packet in both
/// directions is delayed by `spike` on top of its normal path delay.
/// Episode timing reuses the [`TimedGilbertElliott`] chain: exponential
/// Good (quiet) and Bad (spiking) durations in seconds, so an episode can
/// span a timeout and distort the sender's RTT estimator — the clock
/// weirdness of real traces.
#[derive(Debug, Clone)]
pub struct JitterBurst {
    episodes: TimedGilbertElliott,
    spike: SimDuration,
}

impl JitterBurst {
    /// Quiet periods of mean `mean_quiet_secs`, spiking episodes of mean
    /// `mean_burst_secs`, adding `spike` delay per packet while active.
    pub fn new(mean_quiet_secs: f64, mean_burst_secs: f64, spike: SimDuration) -> Self {
        JitterBurst {
            episodes: TimedGilbertElliott::new(mean_quiet_secs, mean_burst_secs),
            spike,
        }
    }

    /// The added per-packet delay during an episode.
    pub fn spike(&self) -> SimDuration {
        self.spike
    }
}

impl Impairment for JitterBurst {
    fn apply(&mut self, now: SimTime, _dir: Direction, rng: &mut SimRng) -> PacketFate {
        if self.episodes.is_bad_at(now, rng) {
            PacketFate {
                extra_delay: self.spike,
                ..PacketFate::clean()
            }
        } else {
            PacketFate::clean()
        }
    }

    fn label(&self) -> &'static str {
        "jitter-burst"
    }

    // The only stateful impairment: the episode chain's cursor must survive
    // a checkpoint or the restored run re-draws episode boundaries.
    fn state_snapshot_into(&self, w: &mut SnapWriter) {
        self.episodes.state_snapshot_into(w);
    }

    fn state_restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.episodes.state_restore_from(r)
    }
}

/// Periodic full link outages ("flaps"): starting at `first_at`, every
/// `period` the link goes down for `down_for`, dropping *everything* in
/// both directions. An outage longer than the RTO also kills the timeout
/// retransmissions, chaining the exponential-backoff sequences behind the
/// T1+ columns of Table II.
//= pftk#rto-backoff
#[derive(Debug, Clone)]
pub struct LinkFlap {
    first_at: SimTime,
    period: SimDuration,
    down_for: SimDuration,
}

impl LinkFlap {
    /// Outages of length `down_for` every `period`, the first beginning at
    /// `first_at`. `period` must be positive and no shorter than
    /// `down_for` (the link must come back up between flaps).
    pub fn new(first_at: SimTime, period: SimDuration, down_for: SimDuration) -> Self {
        assert!(
            period > SimDuration::ZERO && period >= down_for,
            "flap period must be positive and cover the outage"
        );
        LinkFlap {
            first_at,
            period,
            down_for,
        }
    }

    /// True while the link is down at `now`.
    pub fn is_down(&self, now: SimTime) -> bool {
        if now < self.first_at {
            return false;
        }
        let since = now.saturating_since(self.first_at);
        let phase = since.as_nanos() % self.period.as_nanos();
        phase < self.down_for.as_nanos()
    }

    /// The configured outage length.
    pub fn down_for(&self) -> SimDuration {
        self.down_for
    }
}

impl Impairment for LinkFlap {
    fn apply(&mut self, now: SimTime, _dir: Direction, _rng: &mut SimRng) -> PacketFate {
        if self.is_down(now) {
            PacketFate::drop_packet()
        } else {
            PacketFate::clean()
        }
    }

    fn label(&self) -> &'static str {
        "link-flap"
    }
}

/// Corruption-as-drop: a corrupted segment fails its checksum at the
/// receiver and is discarded, which at the sender-side trace is
/// indistinguishable from a wire loss. Applies to the data direction only
/// (corrupted ACKs are modeled by [`AckLoss`]).
#[derive(Debug, Clone)]
pub struct CorruptDrop {
    p: f64,
}

impl CorruptDrop {
    /// Corrupts (and so drops) each data segment with probability `p`.
    pub fn new(p: f64) -> Self {
        CorruptDrop {
            p: p.clamp(0.0, 1.0),
        }
    }
}

impl Impairment for CorruptDrop {
    fn apply(&mut self, _now: SimTime, dir: Direction, rng: &mut SimRng) -> PacketFate {
        if dir == Direction::Data && rng.chance(self.p) {
            PacketFate::drop_packet()
        } else {
            PacketFate::clean()
        }
    }

    fn label(&self) -> &'static str {
        "corrupt-drop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(77)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn reorder_bound_respected() {
        // Every hold-back must be in (0, max_hold]; with p = 1 every packet
        // is held.
        let bound = ms(40);
        let mut imp = Reorder::new(1.0, bound);
        let mut r = rng();
        for i in 0..5_000u64 {
            let fate = imp.apply(SimTime::from_nanos(i), Direction::Data, &mut r);
            assert!(!fate.dropped);
            assert!(fate.extra_delay > SimDuration::ZERO, "packet {i} not held");
            assert!(
                fate.extra_delay <= bound,
                "packet {i} held {} > bound {}",
                fate.extra_delay,
                bound
            );
        }
        assert_eq!(imp.max_hold(), bound);
    }

    #[test]
    fn reorder_rate_matches_p() {
        let mut imp = Reorder::new(0.25, ms(10));
        let mut r = rng();
        let held = (0..100_000)
            .filter(|_| {
                imp.apply(SimTime::ZERO, Direction::Data, &mut r)
                    .extra_delay
                    > SimDuration::ZERO
            })
            .count();
        let rate = held as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn reorder_zero_hold_is_noop() {
        let mut imp = Reorder::new(1.0, SimDuration::ZERO);
        let mut r = rng();
        assert_eq!(
            imp.apply(SimTime::ZERO, Direction::Data, &mut r),
            PacketFate::clean()
        );
    }

    #[test]
    fn duplicate_count_exact() {
        let mut imp = Duplicate::new(1.0, 3);
        let mut r = rng();
        for _ in 0..100 {
            let fate = imp.apply(SimTime::ZERO, Direction::Ack, &mut r);
            assert_eq!(fate.duplicates, 3, "duplicate count must be exact");
            assert!(!fate.dropped);
            assert_eq!(fate.extra_delay, SimDuration::ZERO);
        }
        assert_eq!(imp.copies(), 3);
        let mut never = Duplicate::new(0.0, 3);
        assert_eq!(
            never.apply(SimTime::ZERO, Direction::Data, &mut r),
            PacketFate::clean()
        );
    }

    #[test]
    //= pftk#ack-path-lossless type=test
    fn ack_loss_only_touches_acks() {
        let mut imp = AckLoss::new(1.0);
        let mut r = rng();
        assert!(
            imp.apply(SimTime::ZERO, Direction::Ack, &mut r).dropped,
            "p = 1 must drop every ACK"
        );
        assert!(
            !imp.apply(SimTime::ZERO, Direction::Data, &mut r).dropped,
            "data direction must pass untouched"
        );
    }

    #[test]
    fn ack_loss_rate_matches_p() {
        let mut imp = AckLoss::new(0.3);
        let mut r = rng();
        let dropped = (0..100_000)
            .filter(|_| imp.apply(SimTime::ZERO, Direction::Ack, &mut r).dropped)
            .count();
        let rate = dropped as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn jitter_burst_adds_spike_during_episodes() {
        // Mean quiet 1 s, mean burst 50 s: once spiking starts it almost
        // surely persists across the next 100 ms probe.
        let mut imp = JitterBurst::new(1.0, 50.0, ms(200));
        let mut r = rng();
        let mut t_ns = 0u64;
        while imp
            .apply(SimTime::from_nanos(t_ns), Direction::Data, &mut r)
            .extra_delay
            == SimDuration::ZERO
        {
            t_ns += 100_000_000;
            assert!(t_ns < 60_000_000_000, "never started spiking");
        }
        let fate = imp.apply(
            SimTime::from_nanos(t_ns + 100_000_000),
            Direction::Ack,
            &mut r,
        );
        assert_eq!(fate.extra_delay, ms(200), "episode must persist in time");
        assert_eq!(imp.spike(), ms(200));
    }

    #[test]
    //= pftk#rto-backoff type=test
    fn flap_duration_honored() {
        // Down for 3 s every 10 s, starting at t = 5 s.
        let mut imp = LinkFlap::new(
            SimTime::from_secs_f64(5.0),
            SimDuration::from_secs_f64(10.0),
            SimDuration::from_secs_f64(3.0),
        );
        let mut r = rng();
        let down_at = |imp: &mut LinkFlap, r: &mut SimRng, secs: f64| {
            imp.apply(SimTime::from_secs_f64(secs), Direction::Data, r)
                .dropped
        };
        // Before the first flap: up.
        assert!(!down_at(&mut imp, &mut r, 0.0));
        assert!(!down_at(&mut imp, &mut r, 4.9));
        // During the first outage: down for exactly [5, 8).
        assert!(down_at(&mut imp, &mut r, 5.0));
        assert!(down_at(&mut imp, &mut r, 7.9));
        assert!(!down_at(&mut imp, &mut r, 8.1));
        // Next period: down again in [15, 18), both directions.
        assert!(down_at(&mut imp, &mut r, 15.5));
        assert!(
            imp.apply(SimTime::from_secs_f64(16.0), Direction::Ack, &mut r)
                .dropped
        );
        assert!(!down_at(&mut imp, &mut r, 18.5));
        assert_eq!(imp.down_for(), SimDuration::from_secs_f64(3.0));
    }

    #[test]
    #[should_panic(expected = "flap period")]
    fn flap_rejects_outage_longer_than_period() {
        let _ = LinkFlap::new(
            SimTime::ZERO,
            SimDuration::from_secs_f64(1.0),
            SimDuration::from_secs_f64(2.0),
        );
    }

    #[test]
    fn corrupt_drop_is_data_only() {
        let mut imp = CorruptDrop::new(1.0);
        let mut r = rng();
        assert!(imp.apply(SimTime::ZERO, Direction::Data, &mut r).dropped);
        assert!(!imp.apply(SimTime::ZERO, Direction::Ack, &mut r).dropped);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Reorder::new(0.1, ms(1)).label(),
            Duplicate::new(0.1, 1).label(),
            AckLoss::new(0.1).label(),
            JitterBurst::new(1.0, 1.0, ms(1)).label(),
            LinkFlap::new(SimTime::ZERO, ms(10), ms(1)).label(),
            CorruptDrop::new(0.1).label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
