//! Deterministic composition of impairments into a replayable chaos plan.

use super::impairments::{AckLoss, CorruptDrop, Duplicate, JitterBurst, LinkFlap, Reorder};
use super::{Direction, Impairment, PacketFate};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// A composed set of impairments applied to every packet of a connection.
///
/// The plan is itself an [`Impairment`]: it offers each packet to every
/// component (no short-circuiting — stateful impairments must observe the
/// full packet stream) and merges their fates with [`PacketFate::merge`].
///
/// [`FaultPlan::from_seed`] draws a random composition deterministically:
/// two plans built from the same seed are identical, so a chaos run is a
/// pure function of `(connection config, connection seed, plan seed)` and
/// any failure it uncovers is replayable.
pub struct FaultPlan {
    components: Vec<Box<dyn Impairment + Send>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("components", &self.labels())
            .finish()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan with the given components.
    pub fn new(components: Vec<Box<dyn Impairment + Send>>) -> Self {
        FaultPlan { components }
    }

    /// The empty plan: every packet passes untouched (and no RNG draws are
    /// consumed, so a faultless connection replays identically to one built
    /// before this module existed).
    pub fn none() -> Self {
        FaultPlan {
            components: Vec::new(),
        }
    }

    /// Adds one impairment (builder style).
    pub fn with(mut self, impairment: Box<dyn Impairment + Send>) -> Self {
        self.components.push(impairment);
        self
    }

    /// True when the plan has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of composed impairments.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// The component labels, in application order.
    pub fn labels(&self) -> Vec<&'static str> {
        self.components.iter().map(|c| c.label()).collect()
    }

    /// Draws a random chaos composition from `seed`, deterministically.
    ///
    /// Each impairment class joins the plan with its own probability, with
    /// parameters drawn from ranges calibrated to the messy end of what the
    /// paper's 1997 measurement campaign plausibly saw: percent-level
    /// reordering and duplication, up to 20% ACK loss, delay spikes of a
    /// few hundred milliseconds, and outages of several seconds — long
    /// enough to span multiple RTO backoffs on short-RTO paths.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        if rng.chance(0.6) {
            let p = rng.uniform_f64(0.005, 0.05);
            let hold = SimDuration::from_secs_f64(rng.uniform_f64(0.01, 0.25));
            plan = plan.with(Box::new(Reorder::new(p, hold)));
        }
        if rng.chance(0.5) {
            let p = rng.uniform_f64(0.002, 0.02);
            let copies = rng.uniform_u32(1, 2);
            plan = plan.with(Box::new(Duplicate::new(p, copies)));
        }
        if rng.chance(0.6) {
            plan = plan.with(Box::new(AckLoss::new(rng.uniform_f64(0.01, 0.2))));
        }
        if rng.chance(0.5) {
            let quiet = rng.uniform_f64(5.0, 30.0);
            let burst = rng.uniform_f64(0.2, 1.5);
            let spike = SimDuration::from_secs_f64(rng.uniform_f64(0.05, 0.4));
            plan = plan.with(Box::new(JitterBurst::new(quiet, burst, spike)));
        }
        if rng.chance(0.4) {
            let first = SimTime::from_secs_f64(rng.uniform_f64(5.0, 30.0));
            let down = SimDuration::from_secs_f64(rng.uniform_f64(2.0, 10.0));
            let period = down + SimDuration::from_secs_f64(rng.uniform_f64(20.0, 60.0));
            plan = plan.with(Box::new(LinkFlap::new(first, period, down)));
        }
        if rng.chance(0.5) {
            plan = plan.with(Box::new(CorruptDrop::new(rng.uniform_f64(0.001, 0.02))));
        }
        plan
    }
}

impl Impairment for FaultPlan {
    fn apply(&mut self, now: SimTime, dir: Direction, rng: &mut SimRng) -> PacketFate {
        let mut fate = PacketFate::clean();
        for c in &mut self.components {
            fate = fate.merge(c.apply(now, dir, rng));
        }
        fate
    }

    fn label(&self) -> &'static str {
        "fault-plan"
    }

    // Component count is a shape tag: restore requires a plan with the same
    // composition (guaranteed when both were built from the same seed).
    fn state_snapshot_into(&self, w: &mut SnapWriter) {
        w.put_tag(self.components.len() as u64); //~ allow(cast): usize length to u64, lossless on this platform set
        for c in &self.components {
            c.state_snapshot_into(w);
        }
    }

    fn state_restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.expect_tag("fault-plan-len", self.components.len() as u64)?; //~ allow(cast): usize length to u64, lossless on this platform set
        for c in &mut self.components {
            c.state_restore_from(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_transparent_and_drawless() {
        let mut plan = FaultPlan::none();
        let mut r = SimRng::seed_from_u64(1);
        let before = r.clone();
        for i in 0..100u64 {
            assert_eq!(
                plan.apply(SimTime::from_nanos(i), Direction::Data, &mut r),
                PacketFate::clean()
            );
        }
        // No draws consumed: the stream is untouched.
        let mut untouched = before;
        assert_eq!(r.open01(), untouched.open01());
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn same_seed_same_composition_and_behavior() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let mut a = FaultPlan::from_seed(seed);
            let mut b = FaultPlan::from_seed(seed);
            assert_eq!(a.labels(), b.labels(), "seed {seed}");
            let mut ra = SimRng::seed_from_u64(9);
            let mut rb = SimRng::seed_from_u64(9);
            for i in 0..20_000u64 {
                let now = SimTime::from_nanos(i * 3_000_000);
                let dir = if i % 3 == 0 {
                    Direction::Ack
                } else {
                    Direction::Data
                };
                assert_eq!(
                    a.apply(now, dir, &mut ra),
                    b.apply(now, dir, &mut rb),
                    "seed {seed} packet {i}"
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        // Across a handful of seeds, at least two distinct compositions
        // must appear (each class joins with probability < 1).
        let compositions: std::collections::HashSet<Vec<&'static str>> = (0..16u64)
            .map(|s| FaultPlan::from_seed(s).labels())
            .collect();
        assert!(compositions.len() > 1, "all 16 seeds drew the same plan");
    }

    #[test]
    fn plan_merges_component_fates() {
        let mut plan = FaultPlan::new(vec![
            Box::new(Duplicate::new(1.0, 2)),
            Box::new(CorruptDrop::new(1.0)),
        ]);
        let mut r = SimRng::seed_from_u64(4);
        let fate = plan.apply(SimTime::ZERO, Direction::Data, &mut r);
        assert!(fate.dropped, "corrupt-drop must dominate");
        assert_eq!(fate.duplicates, 2, "duplicate decision still recorded");
        let ack = plan.apply(SimTime::ZERO, Direction::Ack, &mut r);
        assert!(!ack.dropped, "corruption is data-only");
        assert_eq!(ack.duplicates, 2);
        assert_eq!(plan.labels(), vec!["duplicate", "corrupt-drop"]);
        assert_eq!(plan.label(), "fault-plan");
    }
}
