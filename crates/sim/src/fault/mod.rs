//! Composable network impairments — the chaos layer of the testbed.
//!
//! The paper's validation ran over the 1997 Internet, where connections
//! saw far more than clean data-packet loss: packet reordering, duplicated
//! deliveries, ACK loss on the reverse path, delay spikes, and outages
//! long enough to span several RTO backoffs (the T5+ columns of Table II
//! exist because of them). The [`crate::loss::LossModel`] family only
//! covers the forward data path; this module layers arbitrary impairments
//! *on top of* any loss model so the reproduction can be stressed the way
//! the measured connections were.
//!
//! Design:
//!
//! * An [`Impairment`] sees every packet (data and ACK directions, via
//!   [`Direction`]) and returns a [`PacketFate`]: drop it, delay it
//!   (reordering, RTT spikes), or duplicate it.
//! * [`plan::FaultPlan`] composes impairments; [`plan::FaultPlan::from_seed`]
//!   draws a random composition deterministically from a [`SimRng`] seed,
//!   so every chaos run is replayable bit for bit.
//! * The connection applies the plan after the path model computes an
//!   arrival time, so impairments can reorder across the FIFO clamp of
//!   [`crate::link::Path`] — real cross-path reordering, not just jitter.
//!
//! Concrete impairments live in [`impairments`]:
//!
//! | impairment                   | effect                                        |
//! |------------------------------|-----------------------------------------------|
//! | [`impairments::Reorder`]     | bounded extra hold-back delay → reordering    |
//! | [`impairments::Duplicate`]   | exact extra copies of a packet                |
//! | [`impairments::AckLoss`]     | reverse-path Bernoulli ACK drops              |
//! | [`impairments::JitterBurst`] | timed episodes of added delay (RTT spikes)    |
//! | [`impairments::LinkFlap`]    | periodic full outages spanning multiple RTOs  |
//! | [`impairments::CorruptDrop`] | corruption detected by checksum → drop        |

pub mod impairments;
pub mod plan;

pub use impairments::{AckLoss, CorruptDrop, Duplicate, JitterBurst, LinkFlap, Reorder};
pub use plan::FaultPlan;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Which leg of the connection a packet travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Sender → receiver data segments.
    Data,
    /// Receiver → sender cumulative ACKs.
    Ack,
}

/// The combined fate of one packet after an impairment layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use]
pub struct PacketFate {
    /// The packet is dropped entirely (loss, corruption, outage).
    pub dropped: bool,
    /// Extra one-way delay added on top of the path's arrival time.
    pub extra_delay: SimDuration,
    /// Number of *extra* copies delivered (0 = delivered once).
    pub duplicates: u32,
}

impl PacketFate {
    /// An untouched packet: delivered once, on time.
    pub fn clean() -> PacketFate {
        PacketFate::default()
    }

    /// A dropped packet.
    pub fn drop_packet() -> PacketFate {
        PacketFate {
            dropped: true,
            ..PacketFate::default()
        }
    }

    /// Combines two layers' decisions: drops dominate, delays add,
    /// duplicate counts add.
    pub fn merge(self, other: PacketFate) -> PacketFate {
        PacketFate {
            dropped: self.dropped || other.dropped,
            extra_delay: self.extra_delay + other.extra_delay,
            duplicates: self.duplicates.saturating_add(other.duplicates),
        }
    }
}

/// A network impairment: decides the fate of each packet offered to it.
///
/// Like [`crate::loss::LossModel`], implementations must observe *every*
/// packet (stateful processes advance per call) and must be deterministic
/// given the same call sequence and RNG stream.
//= pftk#random-drop-robustness
pub trait Impairment {
    /// Decides the fate of one packet departing at `now` in direction
    /// `dir`. Time-correlated impairments advance their state by `now`;
    /// calls arrive in non-decreasing time order.
    fn apply(&mut self, now: SimTime, dir: Direction, rng: &mut SimRng) -> PacketFate;

    /// A short human-readable label for reports.
    fn label(&self) -> &'static str;

    /// Writes the impairment's mutable state into a snapshot. Stateless
    /// impairments (the default — most draw fresh from the RNG per packet)
    /// write nothing.
    fn state_snapshot_into(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Reads state written by [`Impairment::state_snapshot_into`].
    fn state_restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        let _ = r;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_merge_combines_effects() {
        let a = PacketFate {
            dropped: false,
            extra_delay: SimDuration::from_millis(10),
            duplicates: 1,
        };
        let b = PacketFate {
            dropped: true,
            extra_delay: SimDuration::from_millis(5),
            duplicates: 2,
        };
        let m = a.merge(b);
        assert!(m.dropped);
        assert_eq!(m.extra_delay, SimDuration::from_millis(15));
        assert_eq!(m.duplicates, 3);
        assert_eq!(
            PacketFate::clean().merge(PacketFate::clean()),
            PacketFate::clean()
        );
        assert!(PacketFate::drop_packet().dropped);
    }
}
