//! Ground-truth connection statistics.
//!
//! These counters are maintained by the simulator itself (not inferred from
//! the trace), so the trace-analysis programs in `tcp-trace` can be validated
//! against them — mirroring how the paper's authors verified their analysis
//! programs against `tcptrace` and `ns`.

use pftk_snap::{SnapReader, SnapResult, SnapWriter};
use serde::{Deserialize, Serialize};

/// Counters for one simulated connection.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnStats {
    /// Total data transmissions (first transmissions + retransmissions) —
    /// the paper's "packets sent" (send rate counts all of these).
    pub packets_sent: u64,
    /// First transmissions only.
    pub packets_sent_new: u64,
    /// Retransmissions only.
    pub retransmissions: u64,
    /// Data packets dropped by the loss process or a queue.
    pub packets_dropped: u64,
    /// Distinct data packets that reached the receiver.
    pub packets_delivered: u64,
    /// ACKs that arrived at the sender.
    pub acks_received: u64,
    /// Triple-duplicate (fast-retransmit) loss indications.
    pub td_events: u64,
    /// Timeout *sequences*, bucketed by length: `to_sequences[k]` counts
    /// sequences of exactly `k + 1` consecutive timeouts (index 0 = the
    /// paper's "T0" single timeouts, 1 = "T1" doubles, …). Sequences of 7 or
    /// more land in the final bucket, matching Table II's "T5 or more".
    pub to_sequences: [u64; 6],
    /// Total individual RTO firings.
    pub rto_firings: u64,
}

impl ConnStats {
    /// Total number of timeout sequences (loss indications of type TO).
    pub fn to_events(&self) -> u64 {
        self.to_sequences.iter().sum()
    }

    /// Total loss indications (TD + TO sequences) — the denominator quantity
    /// in the paper's `p` estimate is `packets_sent`, the numerator this.
    pub fn loss_indications(&self) -> u64 {
        self.td_events + self.to_events()
    }

    /// The paper's loss-rate estimate: loss indications ÷ packets sent
    /// (§III, "similar to the one used in \[9\]"). Zero when nothing was sent.
    //= pftk#loss-rate-estimate
    pub fn loss_indication_rate(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.loss_indications() as f64 / self.packets_sent as f64 //~ allow(cast): integer count to f64, exact below 2^53
        }
    }

    /// Records the end of a run of `len` consecutive timeouts.
    //= pftk#to-sequence
    pub fn record_to_sequence(&mut self, len: u32) {
        debug_assert!(len >= 1);
        let idx = (len as usize - 1).min(self.to_sequences.len() - 1); //~ allow(cast): wmax-bounded index, fits usize
        self.to_sequences[idx] += 1; //~ allow(hot_panic): idx clamped to len-1 on the line above
    }

    /// Writes every counter to a snapshot (fixed-width, field order is part
    /// of the snapshot format — see DESIGN.md §13).
    pub fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.packets_sent);
        w.put_u64(self.packets_sent_new);
        w.put_u64(self.retransmissions);
        w.put_u64(self.packets_dropped);
        w.put_u64(self.packets_delivered);
        w.put_u64(self.acks_received);
        w.put_u64(self.td_events);
        for bucket in &self.to_sequences {
            w.put_u64(*bucket);
        }
        w.put_u64(self.rto_firings);
    }

    /// Reads counters written by [`Self::snapshot_into`].
    pub fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.packets_sent = r.get_u64()?;
        self.packets_sent_new = r.get_u64()?;
        self.retransmissions = r.get_u64()?;
        self.packets_dropped = r.get_u64()?;
        self.packets_delivered = r.get_u64()?;
        self.acks_received = r.get_u64()?;
        self.td_events = r.get_u64()?;
        for bucket in &mut self.to_sequences {
            *bucket = r.get_u64()?;
        }
        self.rto_firings = r.get_u64()?;
        Ok(())
    }

    /// Merges another connection's counters into this one (used when
    /// aggregating the 100×100-s serial experiments).
    pub fn merge(&mut self, other: &ConnStats) {
        self.packets_sent += other.packets_sent;
        self.packets_sent_new += other.packets_sent_new;
        self.retransmissions += other.retransmissions;
        self.packets_dropped += other.packets_dropped;
        self.packets_delivered += other.packets_delivered;
        self.acks_received += other.acks_received;
        self.td_events += other.td_events;
        for (a, b) in self.to_sequences.iter_mut().zip(&other.to_sequences) {
            *a += b;
        }
        self.rto_firings += other.rto_firings;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_sequence_bucketing() {
        let mut s = ConnStats::default();
        s.record_to_sequence(1); // single timeout → T0 bucket
        s.record_to_sequence(2); // one backoff → T1
        s.record_to_sequence(6); // T5
        s.record_to_sequence(9); // clamps into "T5 or more"
        assert_eq!(s.to_sequences, [1, 1, 0, 0, 0, 2]);
        assert_eq!(s.to_events(), 4);
    }

    #[test]
    fn loss_indications_combine_td_and_to() {
        let mut s = ConnStats {
            td_events: 3,
            ..Default::default()
        };
        s.record_to_sequence(1);
        s.record_to_sequence(4);
        assert_eq!(s.loss_indications(), 5);
    }

    #[test]
    fn loss_rate_estimate() {
        let mut s = ConnStats::default();
        assert_eq!(s.loss_indication_rate(), 0.0);
        s.packets_sent = 1000;
        s.td_events = 10;
        assert!((s.loss_indication_rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = ConnStats {
            packets_sent: 10,
            packets_sent_new: 8,
            retransmissions: 2,
            packets_dropped: 1,
            packets_delivered: 9,
            acks_received: 5,
            td_events: 1,
            to_sequences: [1, 0, 0, 0, 0, 0],
            rto_firings: 1,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.packets_sent, 20);
        assert_eq!(a.to_sequences[0], 2);
        assert_eq!(a.loss_indications(), 4);
    }
}
