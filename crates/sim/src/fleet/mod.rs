//! Fleet-scale sharded simulation: 10^5–10^6 concurrent Reno flows.
//!
//! The paper validates its formula one connection at a time (Table II);
//! the formula itself, though, is a statement about *steady-state send
//! rate*, which is cheapest to stress across a **population** of flows —
//! sweep `(p, RTT, T0, W_m)` and compare the empirical per-flow rate
//! distribution against the Eq. (32) prediction at each grid point.
//! Running that sweep at fleet scale needs a different execution shape
//! than [`crate::connection::Connection`]:
//!
//! * **SoA arenas** (`FlowArena` — internal): hot per-flow state (the
//!   fractional window, slow-start threshold, RNG stream, counters) lives
//!   in dense parallel arrays indexed by flow, so a shard's inner loop
//!   walks cache-line-friendly memory instead of pointer-chasing boxed
//!   connections. Cold per-cohort configuration (loss rate, RTT, `T0`,
//!   quirk knobs) is shared in a small cohort table.
//! * **Per-shard event wheels** ([`ShardWheel`]): a calendar wheel keyed
//!   by `(slot, flow)` with per-flow generation counters, so scheduling
//!   the flow's next event — which *supersedes* its previous one, exactly
//!   like the single-slot RTO lane of `HybridQueue` — is O(1), and the
//!   wheel never rebalances.
//! * **Deterministic flow seeding** ([`crate::rng::flow_seed`]): a flow's
//!   random stream is a pure function of `(campaign seed, global flow
//!   id)`, so partitioning the flow space across 1, 2 or 8 shards cannot
//!   change any flow's trajectory — the fleet analogue of the
//!   `PFTK_REPLAY_WORKERS` replay-equivalence contract.
//!
//! Each flow executes the **rounds-based model** of
//! [`crate::rounds::RoundsSim`] — the paper's §II assumptions, executed
//! literally — re-expressed as an event-per-round state machine over the
//! arena. The correspondence is exact: a fleet flow seeded with
//! `flow_seed(base, id)` consumes the *same RNG draws in the same order*
//! as `RoundsSim::new(config, flow_seed(base, id))` and produces
//! bit-identical counters (pinned by a unit test). The packet-level
//! simulator stays the ground truth for protocol fidelity; the testbed's
//! fleet driver cross-checks cohorts against it with a handful of
//! packet-level "audit" flows per grid point.
//!
//! ```
//! use tcp_sim::fleet::{FleetCohort, FleetShard, FleetSpec};
//! use tcp_sim::rounds::RoundsConfig;
//! use tcp_sim::time::SimTime;
//!
//! let spec = FleetSpec {
//!     cohorts: vec![FleetCohort {
//!         config: RoundsConfig {
//!             p: 0.02,
//!             wmax: 64,
//!             ..RoundsConfig::default()
//!         },
//!         flows: 1_000,
//!     }],
//!     base_seed: 7,
//!     ..FleetSpec::default()
//! };
//! let mut shard = FleetShard::new(&spec, 0..spec.total_flows());
//! shard.run_until(SimTime::from_secs_f64(30.0));
//! let stats = shard.flow_stats(0);
//! assert!(stats.packets_sent > 0);
//! ```

mod arena;
mod shard;
mod wheel;

pub use arena::FlowStats;
pub use shard::FleetShard;
pub use wheel::{ShardWheel, WheelConfig};

use crate::rounds::RoundsConfig;

/// One grid point of a fleet campaign: a flow population sharing model
/// parameters.
#[derive(Debug, Clone)]
pub struct FleetCohort {
    /// The §II model parameters every flow in the cohort runs.
    pub config: RoundsConfig,
    /// Number of flows in the cohort.
    pub flows: u64,
}

/// A fleet specification: the cohort grid plus the campaign seed.
///
/// The global flow space is the concatenation of the cohorts in order:
/// cohort 0 owns global flow ids `[0, flows_0)`, cohort 1 owns
/// `[flows_0, flows_0 + flows_1)`, and so on. Shards slice this space
/// into contiguous ranges, so concatenating shard outputs in shard order
/// always reproduces global-flow-id order regardless of shard count.
#[derive(Debug, Clone, Default)]
pub struct FleetSpec {
    /// The cohort grid.
    pub cohorts: Vec<FleetCohort>,
    /// Campaign seed; flow `g` draws from
    /// [`crate::rng::flow_seed`]`(base_seed, g)`.
    pub base_seed: u64,
    /// Event-wheel geometry shared by every shard.
    pub wheel: WheelConfig,
}

impl FleetSpec {
    /// Total flows across all cohorts.
    pub fn total_flows(&self) -> u64 {
        self.cohorts.iter().map(|c| c.flows).sum()
    }
}
