//! The per-shard event wheel: an intrusive calendar wheel keyed by
//! `(slot, flow)`.
//!
//! Derived from the `HybridQueue` observation that drove DESIGN.md §9:
//! almost every event a TCP flow schedules *supersedes* the one before it
//! (the next round replaces the previous round's continuation, a new RTO
//! replaces the pending one). `HybridQueue` exploits that with
//! single-slot timer lanes per connection; at fleet scale the same idea
//! becomes **one pending event per flow**, held in fixed SoA arrays:
//!
//! * each flow owns one intrusive list node (`prev`/`next` indices in
//!   flow-indexed arrays) that is linked into at most one ring slot;
//! * [`ShardWheel::schedule`] is O(1): unlink the node from wherever it
//!   is and relink it at the tail of the new slot (or park the event in
//!   the far-future overflow heap);
//! * draining unlinks each fired node eagerly, so slots never accumulate
//!   stale entries and the warm inner loop performs **zero heap
//!   allocation per event** — the only allocations ever are the arrays
//!   at construction and (rare, amortized, pre-reserved) overflow-heap
//!   growth. `tests/alloc_steady_state.rs` pins this.
//!
//! ## Ordering contract (determinism)
//!
//! Every flow's own events fire at exact nanosecond times in its own
//! causal order (a flow has at most one pending event). *Cross-flow*
//! order inside one slot is link order (insertion order), not time order
//! — sound for the fleet because flows are mutually independent, and
//! deterministic because link order is itself deterministic. The fleet's
//! shard-count equivalence gate rests on per-flow exactness, not on
//! cross-flow interleaving.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel geometry: `slots` ring positions of `granularity` each, giving a
/// `slots × granularity` horizon; events due beyond the horizon park in
/// an overflow heap until the wheel turns within range.
#[derive(Debug, Clone, Copy)]
pub struct WheelConfig {
    /// Width of one slot.
    pub granularity: SimDuration,
    /// Ring size; must be a power of two.
    pub slots: usize,
}

impl Default for WheelConfig {
    fn default() -> Self {
        // 1 ms × 8192 ≈ an 8.2 s horizon: rounds (one RTT out) always land
        // in the ring; only deep timeout backoffs (up to 64 · T0) overflow.
        WheelConfig {
            granularity: SimDuration::from_millis(1),
            slots: 8192,
        }
    }
}

/// Niche index value: "no node" in the intrusive lists, "no slot" in the
/// per-flow slot map.
const NIL: u32 = u32::MAX;

/// The per-shard event wheel. See the module docs for the design and the
/// ordering contract.
#[derive(Debug)]
pub struct ShardWheel {
    granularity_ns: u64,
    /// Head node (flow index) of each ring slot's intrusive list.
    head: Vec<u32>,
    /// Tail node of each ring slot's list (tail insertion keeps link
    /// order = schedule order, so chained same-slot events fire in the
    /// order they were produced).
    tail: Vec<u32>,
    /// Intrusive list links, flow-indexed.
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Ring slot index each flow's node is linked in; `NIL` when the flow
    /// is idle or parked in the overflow heap.
    in_slot: Vec<u32>,
    /// Absolute slot number the drain cursor is positioned on.
    cursor_slot: u64,
    /// Last *deferred* (still-linked) node scanned in the cursor slot;
    /// `NIL` = scan from the slot head. Fired nodes are unlinked eagerly,
    /// so this always references a live node of the current slot.
    cursor_prev: u32,
    /// Events due beyond the ring horizon: `(due_ns, flow, generation)`.
    overflow: BinaryHeap<Reverse<(u64, u32, u32)>>,
    /// Per-flow schedule generation; a parked overflow entry is valid
    /// only if its generation still matches (superseding a parked event
    /// cannot remove it from the heap, so staleness is checked on pull).
    gen: Vec<u32>,
    /// Due time per flow; `u64::MAX` = no pending event.
    next_at: Vec<u64>,
    /// Number of flows with a pending event.
    live: usize,
}

impl ShardWheel {
    /// An empty wheel for `flows` flows (indices `0..flows`).
    pub fn new(config: WheelConfig, flows: usize) -> Self {
        assert!(
            config.slots.is_power_of_two(),
            "slot count must be a power of two"
        );
        let granularity_ns = config.granularity.as_nanos();
        assert!(granularity_ns > 0, "granularity must be positive");
        ShardWheel {
            granularity_ns,
            head: vec![NIL; config.slots],
            tail: vec![NIL; config.slots],
            prev: vec![NIL; flows],
            next: vec![NIL; flows],
            in_slot: vec![NIL; flows],
            cursor_slot: 0,
            cursor_prev: NIL,
            // Pre-reserved so a first-ever burst of deep backoffs cannot
            // allocate mid-measurement; one entry per flow covers even a
            // fleet where every flow parks at once (plus stale entries,
            // which are rare — superseding a *parked* event needs a
            // timeout gap beyond the ring horizon to be re-planned).
            overflow: BinaryHeap::with_capacity(flows.max(64)),
            gen: vec![0; flows],
            next_at: vec![u64::MAX; flows],
            live: 0,
        }
    }

    /// Number of flows with a pending event.
    pub fn live(&self) -> usize {
        self.live
    }

    /// The pending due time of `flow`, if any.
    pub fn pending(&self, flow: u32) -> Option<SimTime> {
        //~ allow(cast): u32 flow index widens losslessly
        match self.next_at[flow as usize] {
            u64::MAX => None,
            ns => Some(SimTime::from_nanos(ns)),
        }
    }

    /// Unlinks `flow`'s node from its ring slot, if linked. O(1); keeps
    /// the scan cursor valid by stepping it back over the removed node.
    fn unlink(&mut self, flow: u32) {
        let fi = flow as usize; //~ allow(cast): u32 flow index widens losslessly
        let s = self.in_slot[fi];
        if s == NIL {
            return;
        }
        if self.cursor_prev == flow {
            self.cursor_prev = self.prev[fi];
        }
        let (p, n) = (self.prev[fi], self.next[fi]);
        if p == NIL {
            self.head[s as usize] = n; //~ allow(cast): u32 slot index widens losslessly
        } else {
            self.next[p as usize] = n; //~ allow(cast): u32 flow index widens losslessly
        }
        if n == NIL {
            self.tail[s as usize] = p; //~ allow(cast): u32 slot index widens losslessly
        } else {
            self.prev[n as usize] = p; //~ allow(cast): u32 flow index widens losslessly
        }
        self.in_slot[fi] = NIL;
    }

    /// Links `flow`'s node at the tail of ring slot `idx`. O(1).
    fn link_tail(&mut self, flow: u32, idx: usize) {
        let fi = flow as usize; //~ allow(cast): u32 flow index widens losslessly
        debug_assert_eq!(self.in_slot[fi], NIL, "linking an already-linked node");
        let t = self.tail[idx];
        self.prev[fi] = t;
        self.next[fi] = NIL;
        if t == NIL {
            self.head[idx] = flow;
        } else {
            self.next[t as usize] = flow; //~ allow(cast): u32 flow index widens losslessly
        }
        self.tail[idx] = flow;
        self.in_slot[fi] = idx as u32; //~ allow(cast): ring index bounded by the power-of-two slot count
    }

    /// Schedules (or — O(1) — *supersedes*) the pending event of `flow`
    /// to fire at `at`. `at` must not lie before the drain cursor.
    pub fn schedule(&mut self, flow: u32, at: SimTime) {
        let at_ns = at.as_nanos();
        let slot = at_ns / self.granularity_ns;
        debug_assert!(slot >= self.cursor_slot, "scheduling into the past");
        let fi = flow as usize; //~ allow(cast): u32 flow index widens losslessly
        if self.next_at[fi] == u64::MAX {
            self.live += 1;
        }
        self.gen[fi] = self.gen[fi].wrapping_add(1);
        self.next_at[fi] = at_ns;
        self.unlink(flow);
        //~ allow(cast): slot count (usize) widens losslessly to u64
        if slot < self.cursor_slot + self.head.len() as u64 {
            let idx = (slot as usize) & (self.head.len() - 1); //~ allow(cast): slot masked into ring range
            self.link_tail(flow, idx);
        } else {
            self.overflow.push(Reverse((at_ns, flow, self.gen[fi]))); //~ allow(hot_alloc): pre-reserved one-entry-per-flow heap; growth past it is a rare amortized resize
        }
    }

    /// Cancels the pending event of `flow`, if any.
    pub fn cancel(&mut self, flow: u32) {
        let fi = flow as usize; //~ allow(cast): u32 flow index widens losslessly
        if self.next_at[fi] != u64::MAX {
            self.gen[fi] = self.gen[fi].wrapping_add(1);
            self.next_at[fi] = u64::MAX;
            self.live -= 1;
            self.unlink(flow);
        }
    }

    /// Starts a drain pass: rewinds the scan cursor so events deferred by
    /// an earlier, shorter `pop_due` horizon are reconsidered.
    pub fn begin_pass(&mut self) {
        self.cursor_prev = NIL;
    }

    /// Pops — and *consumes* — the next due event with `due ≤ until`,
    /// advancing the cursor over drained slots. Returns `(flow, due_ns)`;
    /// the flow is idle afterwards until rescheduled.
    pub(crate) fn pop_due(&mut self, until_ns: u64) -> Option<(u32, u64)> {
        if self.live == 0 {
            return None;
        }
        loop {
            let slot_start = self.cursor_slot * self.granularity_ns;
            if slot_start > until_ns {
                return None;
            }
            self.pull_overflow();
            let idx = (self.cursor_slot as usize) & (self.head.len() - 1); //~ allow(cast): slot masked into ring range
            loop {
                let cur = if self.cursor_prev == NIL {
                    self.head[idx]
                } else {
                    self.next[self.cursor_prev as usize] //~ allow(cast): u32 flow index widens losslessly
                };
                if cur == NIL {
                    break;
                }
                let fi = cur as usize; //~ allow(cast): u32 flow index widens losslessly
                let at = self.next_at[fi];
                debug_assert_eq!(at / self.granularity_ns, self.cursor_slot);
                if at > until_ns {
                    // Due later within this partially-drained slot: leave
                    // it linked, scan past it.
                    self.cursor_prev = cur;
                    continue;
                }
                self.unlink(cur);
                self.next_at[fi] = u64::MAX;
                self.live -= 1;
                return Some((cur, at));
            }
            let slot_end = slot_start + self.granularity_ns;
            if until_ns >= slot_end {
                // Every node in this slot was due (deferral needs
                // `at > until ≥ slot_end`, impossible within the slot),
                // hence consumed; the slot is empty. Advance.
                debug_assert_eq!(self.head[idx], NIL);
                self.cursor_slot += 1;
                self.cursor_prev = NIL;
            } else {
                return None; // partial slot; a later pass rescans it
            }
        }
    }

    /// Moves overflow events whose due slot has come within the ring
    /// horizon into their slots, dropping entries superseded while parked.
    fn pull_overflow(&mut self) {
        let horizon = self.head.len() as u64; //~ allow(cast): slot count widens losslessly
        while let Some(&Reverse((at, flow, gen))) = self.overflow.peek() {
            let slot = at / self.granularity_ns;
            if slot >= self.cursor_slot + horizon {
                break;
            }
            self.overflow.pop();
            //~ allow(cast): u32 flow index widens losslessly
            if self.gen[flow as usize] != gen {
                continue; // superseded or cancelled while parked
            }
            debug_assert!(slot >= self.cursor_slot);
            let idx = (slot as usize) & (self.head.len() - 1); //~ allow(cast): slot masked into ring range
            self.link_tail(flow, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel(flows: usize) -> ShardWheel {
        ShardWheel::new(WheelConfig::default(), flows)
    }

    fn drain(w: &mut ShardWheel, until_secs: f64) -> Vec<(u32, u64)> {
        let until = SimTime::from_secs_f64(until_secs).as_nanos();
        let mut out = Vec::new();
        w.begin_pass();
        while let Some((flow, at)) = w.pop_due(until) {
            out.push((flow, at));
        }
        out
    }

    #[test]
    fn fires_in_slot_order_with_exact_times() {
        let mut w = wheel(4);
        w.schedule(0, SimTime::from_secs_f64(0.0301));
        w.schedule(1, SimTime::from_secs_f64(0.0105));
        w.schedule(2, SimTime::from_secs_f64(0.0202));
        let fired = drain(&mut w, 1.0);
        assert_eq!(fired.len(), 3);
        // Different slots: global time order holds.
        assert_eq!(
            fired,
            vec![(1, 10_500_000), (2, 20_200_000), (0, 30_100_000)]
        );
        assert_eq!(w.live(), 0);
    }

    #[test]
    fn superseding_is_last_write_wins() {
        let mut w = wheel(2);
        w.schedule(0, SimTime::from_secs_f64(0.5));
        w.schedule(0, SimTime::from_secs_f64(0.25)); // supersedes
        w.schedule(1, SimTime::from_secs_f64(0.1));
        let fired = drain(&mut w, 1.0);
        assert_eq!(fired, vec![(1, 100_000_000), (0, 250_000_000)]);
    }

    #[test]
    fn far_future_events_park_in_overflow_and_return() {
        let mut w = wheel(2);
        // Default horizon is 8.192 s; 64 s must park.
        w.schedule(0, SimTime::from_secs_f64(64.0));
        w.schedule(1, SimTime::from_secs_f64(0.05));
        assert_eq!(drain(&mut w, 1.0), vec![(1, 50_000_000)]);
        assert_eq!(w.live(), 1);
        assert_eq!(drain(&mut w, 100.0), vec![(0, 64_000_000_000)]);
    }

    #[test]
    fn superseded_overflow_entries_never_fire() {
        let mut w = wheel(1);
        w.schedule(0, SimTime::from_secs_f64(64.0));
        w.schedule(0, SimTime::from_secs_f64(32.0));
        let fired = drain(&mut w, 100.0);
        assert_eq!(fired, vec![(0, 32_000_000_000)]);
    }

    #[test]
    fn overflow_event_superseded_into_the_ring_fires_once() {
        let mut w = wheel(2);
        w.schedule(0, SimTime::from_secs_f64(64.0)); // parks
        w.schedule(0, SimTime::from_secs_f64(0.5)); // supersedes into ring
        assert_eq!(drain(&mut w, 1.0), vec![(0, 500_000_000)]);
        // The stale parked entry must not resurrect the flow.
        assert!(drain(&mut w, 200.0).is_empty());
        assert_eq!(w.live(), 0);
    }

    #[test]
    fn partial_slot_defers_until_horizon_reaches_event() {
        let mut w = ShardWheel::new(
            WheelConfig {
                granularity: SimDuration::from_secs_f64(1.0),
                slots: 16,
            },
            2,
        );
        w.schedule(0, SimTime::from_secs_f64(0.2));
        w.schedule(1, SimTime::from_secs_f64(0.7));
        // A 0.4 s horizon fires only flow 0; flow 1 stays pending.
        assert_eq!(drain(&mut w, 0.4), vec![(0, 200_000_000)]);
        assert_eq!(w.pending(1), Some(SimTime::from_secs_f64(0.7)));
        // The next pass rescans the same slot and fires it.
        assert_eq!(drain(&mut w, 0.9), vec![(1, 700_000_000)]);
    }

    #[test]
    fn rescheduling_into_current_slot_fires_same_pass() {
        let mut w = wheel(1);
        w.schedule(0, SimTime::from_secs_f64(0.0002));
        let until = SimTime::from_secs_f64(0.0009).as_nanos();
        w.begin_pass();
        let (flow, at) = w.pop_due(until).unwrap();
        assert_eq!((flow, at), (0, 200_000));
        // Chain the next event into the same (1 ms) slot.
        w.schedule(0, SimTime::from_nanos(at + 300_000));
        let (flow2, at2) = w.pop_due(until).unwrap();
        assert_eq!((flow2, at2), (0, 500_000));
        assert!(w.pop_due(until).is_none());
    }

    #[test]
    fn superseding_a_deferred_event_keeps_the_scan_cursor_sound() {
        let mut w = ShardWheel::new(
            WheelConfig {
                granularity: SimDuration::from_secs_f64(1.0),
                slots: 16,
            },
            3,
        );
        // All three in slot 0; horizon 0.35 defers flows 1 and 2.
        w.schedule(0, SimTime::from_secs_f64(0.1));
        w.schedule(1, SimTime::from_secs_f64(0.6));
        w.schedule(2, SimTime::from_secs_f64(0.8));
        assert_eq!(drain(&mut w, 0.35), vec![(0, 100_000_000)]);
        // Supersede the deferred flow the cursor rests on (flow 2, the
        // last one scanned) and the one before it.
        w.schedule(2, SimTime::from_secs_f64(0.4));
        w.schedule(1, SimTime::from_secs_f64(0.9));
        assert_eq!(drain(&mut w, 1.0), vec![(2, 400_000_000), (1, 900_000_000)]);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut w = wheel(1);
        w.schedule(0, SimTime::from_secs_f64(0.5));
        assert_eq!(w.live(), 1);
        w.cancel(0);
        assert_eq!(w.live(), 0);
        assert!(drain(&mut w, 1.0).is_empty());
    }

    #[test]
    fn cancel_of_deferred_node_mid_pass_is_sound() {
        let mut w = ShardWheel::new(
            WheelConfig {
                granularity: SimDuration::from_secs_f64(1.0),
                slots: 16,
            },
            3,
        );
        w.schedule(0, SimTime::from_secs_f64(0.1));
        w.schedule(1, SimTime::from_secs_f64(0.6));
        w.schedule(2, SimTime::from_secs_f64(0.7));
        let until = SimTime::from_secs_f64(0.35).as_nanos();
        w.begin_pass();
        assert_eq!(w.pop_due(until), Some((0, 100_000_000)));
        assert!(w.pop_due(until).is_none()); // cursor now rests on flow 2
        w.cancel(2);
        w.cancel(1);
        assert!(drain(&mut w, 2.0).is_empty());
        assert_eq!(w.live(), 0);
    }
}
