//! SoA connection arenas: hot per-flow state in dense parallel arrays,
//! cold per-cohort configuration in a small shared table.
//!
//! The arena executes the §II rounds model of [`crate::rounds::RoundsSim`]
//! as an event-per-round state machine. The draw order is kept *identical*
//! to `RoundsSim::run_one_tdp` — per round: one Bernoulli round-loss draw;
//! on loss: one truncated-geometric position draw, then the `C(k, m)`
//! last-round draws, then one Bernoulli draw per variant-requested
//! recovery round, then (on a lost recovery retransmission or a TO
//! indication) one Bernoulli draw per retransmission of a timeout
//! sequence — so a single fleet flow reproduces a `RoundsSim` run
//! counter for counter (pinned by `single_flow_matches_rounds_sim`).

use super::FleetCohort;
use crate::cc::RoundCc;
use crate::rng::{flow_seed, SimRng};
use std::ops::Range;

/// Cold per-cohort parameters, precomputed into the forms the hot loop
/// needs (integer nanosecond durations, f64 copies of integer knobs).
#[derive(Debug, Clone, Copy)]
struct CohortParams {
    p: f64,
    rtt_ns: u64,
    /// RTT in seconds, for the time-based (CUBIC) growth law.
    rtt: f64,
    t0_ns: u64,
    b: u32,
    wmax: u32,
    backoff_cap_exp: u32,
    slow_start_after_to: bool,
    /// Recovery rounds before the retransmit timer fires
    /// ([`crate::rounds::recovery_round_cap`]).
    recovery_cap: u32,
}

/// Ground-truth counters of one fleet flow — the fleet-scale subset of
/// [`crate::stats::ConnStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Total data transmissions (new + retransmissions).
    pub packets_sent: u64,
    /// Distinct data packets that reached the receiver.
    pub packets_delivered: u64,
    /// Triple-duplicate loss indications.
    pub td_events: u32,
    /// Timeout sequences (loss indications of type TO).
    pub to_events: u32,
    /// Individual RTO firings.
    pub rto_firings: u32,
    /// Rounds executed (penultimate and last rounds both count).
    pub rounds: u32,
}

impl FlowStats {
    /// Total loss indications (TD + TO).
    pub fn loss_indications(&self) -> u64 {
        u64::from(self.td_events) + u64::from(self.to_events)
    }
}

/// The SoA arena: one entry per flow across every parallel array.
///
/// Hot state (the `Copy` per-flow controller `cc`, `rng`) and counters
/// are split into separate arrays so the inner loop touches only the
/// cache lines it needs; cold configuration is one `CohortParams` copy
/// per *cohort*, not per flow.
#[derive(Debug)]
pub(crate) struct FlowArena {
    cohorts: Vec<CohortParams>,
    /// Cohort index of each flow.
    cohort_of: Vec<u32>,
    /// Per-flow deterministic RNG stream (`flow_seed(base, global_id)`).
    rng: Vec<SimRng>,
    /// Per-flow round-level congestion controller (`Copy`, SoA-friendly):
    /// the variant's window laws; never draws from `rng`.
    cc: Vec<RoundCc>,
    packets_sent: Vec<u64>,
    packets_delivered: Vec<u64>,
    td_events: Vec<u32>,
    to_events: Vec<u32>,
    rto_firings: Vec<u32>,
    rounds: Vec<u32>,
    /// Per-cohort timeout-sequence-length histogram (buckets as in
    /// `ConnStats::to_sequences`: index k counts sequences of k+1, last
    /// bucket is "6 or more").
    to_hist: Vec<[u64; 6]>,
}

impl FlowArena {
    /// Builds the arena for the contiguous global flow range `flows` of a
    /// fleet whose global flow space is `cohorts` concatenated in order.
    pub(crate) fn new(cohorts: &[FleetCohort], base_seed: u64, flows: Range<u64>) -> Self {
        let params: Vec<CohortParams> = cohorts.iter().map(validate).collect();
        let n = usize::try_from(flows.end - flows.start).expect("shard flow count fits usize"); //~ allow(expect): construction-time validation, documented panic
        let mut arena = FlowArena {
            cohorts: params,
            cohort_of: Vec::with_capacity(n),
            rng: Vec::with_capacity(n),
            cc: Vec::with_capacity(n),
            packets_sent: vec![0; n],
            packets_delivered: vec![0; n],
            td_events: vec![0; n],
            to_events: vec![0; n],
            rto_firings: vec![0; n],
            rounds: vec![0; n],
            to_hist: vec![[0; 6]; cohorts.len()],
        };
        // Walk the cohort boundaries in step with the (sorted, contiguous)
        // global ids instead of binary-searching each one.
        let mut cohort = 0usize;
        let mut cohort_end: u64 = cohorts.first().map_or(0, |c| c.flows);
        for g in flows {
            while g >= cohort_end {
                cohort += 1;
                cohort_end += cohorts
                    .get(cohort)
                    .expect("flow range exceeds fleet flow space") //~ allow(expect): construction-time validation, documented panic
                    .flows;
            }
            let cfg = &cohorts[cohort].config;
            //~ allow(expect): construction-time validation, documented panic
            let cid = u32::try_from(cohort).expect("cohort count fits u32");
            arena.cohort_of.push(cid);
            arena
                .rng
                .push(SimRng::seed_from_u64(flow_seed(base_seed, g)));
            arena
                .cc
                .push(RoundCc::new(cfg.cc, cfg.initial_window.min(cfg.wmax)));
        }
        arena
    }

    pub(crate) fn flow_count(&self) -> usize {
        self.cc.len()
    }

    pub(crate) fn cohort_count(&self) -> usize {
        self.cohorts.len()
    }

    pub(crate) fn flow_stats(&self, flow: usize) -> FlowStats {
        FlowStats {
            packets_sent: self.packets_sent[flow],
            packets_delivered: self.packets_delivered[flow],
            td_events: self.td_events[flow],
            to_events: self.to_events[flow],
            rto_firings: self.rto_firings[flow],
            rounds: self.rounds[flow],
        }
    }

    pub(crate) fn cohort_of(&self, flow: usize) -> u32 {
        self.cohort_of[flow]
    }

    pub(crate) fn to_histogram(&self, cohort: usize) -> [u64; 6] {
        self.to_hist[cohort]
    }

    /// Advances flow `f` through one event — a round of the §II model, or
    /// a loss round together with its Fig. 4 last round and (for a TO
    /// indication) the whole timeout sequence — and returns the absolute
    /// nanosecond time of the flow's next event.
    ///
    /// The arithmetic and RNG draw order mirror
    /// [`crate::rounds::RoundsSim::run_one_tdp`] statement for statement;
    /// divergence here breaks the draw-parity unit test.
    pub(crate) fn step(&mut self, f: u32, now_ns: u64) -> u64 {
        let fi = f as usize; //~ allow(cast): u32 flow index widens losslessly
        let c = self.cohorts[self.cohort_of[fi] as usize]; //~ allow(cast): u32 cohort index widens losslessly
        let w = self.cc[fi].window(c.wmax);
        // The whole round is transmitted regardless of loss (§II-A).
        self.packets_sent[fi] += u64::from(w);
        self.rounds[fi] = self.rounds[fi].wrapping_add(1);
        let rng = &mut self.rng[fi];
        //~ allow(cast): powi exponent; window bounded far below i32::MAX
        if rng.chance(1.0 - (1.0 - c.p).powi(w as i32)) {
            // First loss at position pos ∈ 1..=w (truncated geometric);
            // the pos−1 packets before it are the round's deliveries.
            let pos = sample_truncated_geometric(rng, c.p, w);
            self.packets_delivered[fi] += u64::from(pos) - 1;
            // The "last" round (Fig. 4): the k = pos − 1 ACKed packets
            // trigger k more transmissions one RTT later.
            let k = pos - 1;
            self.packets_sent[fi] += u64::from(k);
            self.rounds[fi] = self.rounds[fi].wrapping_add(1);
            let m = sample_last_round_successes(rng, c.p, k);
            self.packets_delivered[fi] += u64::from(m);
            if k >= 3 && m >= 3 {
                // Triple duplicate: variant reduction (halve for Reno),
                // resume one RTT after the last round. `losses` mirrors
                // RoundsSim: the doomed penultimate-round tail plus the
                // last round's failures.
                self.td_events[fi] += 1;
                let losses = (w - pos + 1) + (k - m);
                let recovery = self.cc[fi].on_td(w, losses, c.p);
                // Recovery rounds (NewReno, RFC 6582 Impatient variant),
                // mirroring `RoundsSim::run_one_tdp` draw for draw: one
                // retransmission per round under the never-reset
                // retransmit timer; a lost retransmission or a fired
                // timer degrades into a timeout sequence from the
                // reduced window.
                let mut recovery_ns: u64 = 0;
                let mut degraded = false;
                for r in 0..recovery {
                    if r >= c.recovery_cap {
                        degraded = true;
                        break;
                    }
                    recovery_ns += c.rtt_ns;
                    self.packets_sent[fi] += 1;
                    self.rounds[fi] = self.rounds[fi].wrapping_add(1);
                    if rng.chance(c.p) {
                        degraded = true;
                        break;
                    }
                    self.packets_delivered[fi] += 1;
                }
                if degraded {
                    let w_now = self.cc[fi].window(c.wmax);
                    let gap_ns = self.timeout_sequence(fi, c);
                    self.cc[fi].on_to(w_now, c.slow_start_after_to);
                    now_ns + 2 * c.rtt_ns + recovery_ns + gap_ns
                } else {
                    now_ns + 2 * c.rtt_ns + recovery_ns
                }
            } else {
                let gap_ns = self.timeout_sequence(fi, c);
                self.cc[fi].on_to(w, c.slow_start_after_to);
                now_ns + 2 * c.rtt_ns + gap_ns
            }
        } else {
            // Loss-free round: deliver everything, grow the window
            // (variant law; `rtt` drives CUBIC's epoch clock).
            self.packets_delivered[fi] += u64::from(w);
            self.cc[fi].on_round_no_loss(c.b, c.wmax, c.rtt);
            now_ns + c.rtt_ns
        }
    }

    /// Runs one whole timeout sequence for flow `fi` — geometric length,
    /// doubling gaps capped at `2^cap · T0`, one retransmission per gap —
    /// recording its counters and histogram bucket, and returns the total
    /// gap time in nanoseconds. Same draws as
    /// `RoundsSim::run_timeout_sequence`.
    fn timeout_sequence(&mut self, fi: usize, c: CohortParams) -> u64 {
        let rng = &mut self.rng[fi];
        let mut len: u32 = 0;
        let mut gap_ns: u64 = 0;
        let mut delivered: u64 = 0;
        loop {
            len += 1;
            let exp = (len - 1).min(c.backoff_cap_exp);
            gap_ns += c.t0_ns << exp;
            self.packets_sent[fi] += 1;
            self.rto_firings[fi] += 1;
            if !rng.chance(c.p) {
                // Retransmission got through (§V: E[R'] = 1).
                delivered = 1;
                break;
            }
            if len >= 1_000 {
                break;
            }
        }
        self.packets_delivered[fi] += delivered;
        self.to_events[fi] += 1;
        let bucket = (len as usize - 1).min(5); //~ allow(cast): u32 sequence length widens losslessly
        self.to_hist[self.cohort_of[fi] as usize][bucket] += 1; //~ allow(cast): u32 cohort index widens losslessly
        gap_ns
    }
}

/// Validates one cohort's parameters (the same domain as
/// [`crate::rounds::RoundsSim::new`]) and precomputes hot-loop forms.
fn validate(cohort: &FleetCohort) -> CohortParams {
    let cfg = &cohort.config;
    assert!(cfg.p > 0.0 && cfg.p < 1.0, "p must be in (0,1)");
    assert!(cfg.rtt > 0.0 && cfg.t0 > 0.0, "times must be positive");
    assert!(cfg.b >= 1 && cfg.wmax >= 1 && cfg.initial_window >= 1);
    assert!(
        cfg.backoff_cap_exp <= 30,
        "backoff cap exponent must stay shiftable"
    );
    CohortParams {
        p: cfg.p,
        rtt: cfg.rtt,
        rtt_ns: (cfg.rtt * 1e9).round() as u64, //~ allow(cast): deliberate float truncation after round/floor
        t0_ns: (cfg.t0 * 1e9).round() as u64, //~ allow(cast): deliberate float truncation after round/floor
        b: cfg.b,
        wmax: cfg.wmax,
        backoff_cap_exp: cfg.backoff_cap_exp,
        slow_start_after_to: cfg.slow_start_after_to,
        recovery_cap: crate::rounds::recovery_round_cap(cfg.t0, cfg.rtt),
    }
}

/// First-loss position within a round of `w` packets, truncated geometric
/// on `1..=w` — same arithmetic as `RoundsSim::sample_truncated_geometric`.
fn sample_truncated_geometric(rng: &mut SimRng, p: f64, w: u32) -> u32 {
    let q = 1.0 - p;
    let mass = 1.0 - q.powi(w as i32); //~ allow(cast): powi exponent; window bounded far below i32::MAX
    let u = rng.open01() * mass;
    let k = ((1.0 - u).ln() / q.ln()).ceil();
    (k as u32).clamp(1, w) //~ allow(cast): deliberate float truncation after round/floor
}

/// In-sequence successes in the last round of `k` packets (the paper's
/// `C(k, m)` law) — same draws as `RoundsSim::sample_last_round_successes`.
fn sample_last_round_successes(rng: &mut SimRng, p: f64, k: u32) -> u32 {
    let mut m = 0;
    while m < k && !rng.chance(p) {
        m += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::{RoundsConfig, RoundsSim};

    fn cohort(p: f64, wmax: u32) -> FleetCohort {
        FleetCohort {
            config: RoundsConfig {
                p,
                rtt: 0.1,
                t0: 1.0,
                b: 2,
                wmax,
                ..RoundsConfig::default()
            },
            flows: 4,
        }
    }

    /// The fleet's strongest correctness check: a fleet flow consumes the
    /// same RNG draws in the same order as `RoundsSim` with the same seed,
    /// so after the same number of TD periods every shared counter agrees
    /// exactly and elapsed time agrees to nanosecond rounding.
    #[test]
    fn single_flow_matches_rounds_sim() {
        for (p, wmax, seed) in [(0.03, 64, 0xF1EE7u64), (0.005, 1_000, 9), (0.2, 8, 77)] {
            let c = cohort(p, wmax);
            let mut reference = RoundsSim::new(c.config, flow_seed(seed, 0));
            reference.run_tdps(400);
            let ref_stats = reference.stats();
            let indications = ref_stats.loss_indications();

            let mut arena = FlowArena::new(std::slice::from_ref(&c), seed, 0..1);
            let mut t = 0u64;
            while arena.flow_stats(0).loss_indications() < indications {
                t = arena.step(0, t);
            }
            let fleet = arena.flow_stats(0);
            assert_eq!(fleet.packets_sent, ref_stats.packets_sent, "p={p}");
            assert_eq!(fleet.packets_delivered, ref_stats.packets_delivered);
            assert_eq!(u64::from(fleet.td_events), ref_stats.td_events);
            assert_eq!(u64::from(fleet.to_events), ref_stats.to_events());
            assert_eq!(u64::from(fleet.rto_firings), ref_stats.rto_firings);
            assert_eq!(arena.to_histogram(0), ref_stats.to_sequences);
            // Times agree up to f64-vs-integer-nanosecond accumulation.
            let fleet_elapsed = t as f64 / 1e9;
            let rel = (fleet_elapsed - reference.elapsed()).abs() / reference.elapsed();
            assert!(
                rel < 1e-6,
                "elapsed {fleet_elapsed} vs {}",
                reference.elapsed()
            );
        }
    }

    /// Draw parity holds per variant, not just for Reno: every algorithm's
    /// fleet flow must mirror its own `RoundsSim` — including NewReno,
    /// whose recovery rounds add draws the other variants never make.
    #[test]
    fn every_variant_matches_its_rounds_sim() {
        use crate::cc::CcAlgorithm;
        for algo in CcAlgorithm::ALL {
            let mut c = cohort(0.03, 64);
            c.config.cc = algo;
            let mut reference = RoundsSim::new(c.config, flow_seed(11, 0));
            reference.run_tdps(300);
            let ref_stats = reference.stats();
            let indications = ref_stats.loss_indications();

            let mut arena = FlowArena::new(std::slice::from_ref(&c), 11, 0..1);
            let mut t = 0u64;
            while arena.flow_stats(0).loss_indications() < indications {
                t = arena.step(0, t);
            }
            let fleet = arena.flow_stats(0);
            assert_eq!(fleet.packets_sent, ref_stats.packets_sent, "{algo:?}");
            assert_eq!(
                fleet.packets_delivered, ref_stats.packets_delivered,
                "{algo:?}"
            );
            assert_eq!(u64::from(fleet.td_events), ref_stats.td_events, "{algo:?}");
            assert_eq!(
                u64::from(fleet.to_events),
                ref_stats.to_events(),
                "{algo:?}"
            );
            assert_eq!(
                u64::from(fleet.rto_firings),
                ref_stats.rto_firings,
                "{algo:?}"
            );
            assert_eq!(arena.to_histogram(0), ref_stats.to_sequences, "{algo:?}");
            let rel = (t as f64 / 1e9 - reference.elapsed()).abs() / reference.elapsed();
            assert!(rel < 1e-6, "{algo:?} elapsed diverged: rel {rel}");
        }
    }

    /// A flow's trajectory is a pure function of (base seed, global id):
    /// the same flow simulated in a wider arena is unchanged.
    #[test]
    fn flow_isolated_from_arena_layout() {
        let c = cohort(0.05, 32);
        let mut narrow = FlowArena::new(std::slice::from_ref(&c), 3, 2..3);
        let mut wide = FlowArena::new(std::slice::from_ref(&c), 3, 0..4);
        let mut tn = 0u64;
        let mut tw = 0u64;
        for _ in 0..5_000 {
            tn = narrow.step(0, tn);
            tw = wide.step(2, tw);
        }
        assert_eq!(tn, tw);
        assert_eq!(narrow.flow_stats(0), wide.flow_stats(2));
    }

    #[test]
    fn multi_cohort_ranges_assign_cohorts_correctly() {
        let a = cohort(0.01, 16);
        let b = cohort(0.2, 8);
        let arena = FlowArena::new(&[a, b], 1, 2..6);
        // Global ids 2,3 belong to cohort 0 (flows 0..4), ids 4,5 to cohort 1.
        assert_eq!(arena.cohort_of(0), 0);
        assert_eq!(arena.cohort_of(1), 0);
        assert_eq!(arena.cohort_of(2), 1);
        assert_eq!(arena.cohort_of(3), 1);
        assert_eq!(arena.flow_count(), 4);
        assert_eq!(arena.cohort_count(), 2);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn invalid_cohort_rejected() {
        let mut c = cohort(0.5, 8);
        c.config.p = 0.0;
        let _ = FlowArena::new(std::slice::from_ref(&c), 1, 0..1);
    }
}
