//! The shard executor: one SoA arena plus one event wheel, advanced by a
//! tight pull loop. [`FleetShard::run_until`] is the fleet's hot path
//! (registered as a `[[hotpath]]` root in `specs/pftk-spec.toml`): it
//! performs zero heap allocation per event — the arena and the wheel's
//! intrusive ring are fixed arrays sized at construction, and the
//! overflow heap is pre-reserved (pinned by
//! `tests/alloc_steady_state.rs`).

use super::arena::{FlowArena, FlowStats};
use super::wheel::ShardWheel;
use super::FleetSpec;
use crate::time::SimTime;
use std::ops::Range;

/// A shard: the contiguous global flow range `flows` of a fleet,
/// simulated independently of every other shard.
#[derive(Debug)]
pub struct FleetShard {
    arena: FlowArena,
    wheel: ShardWheel,
    first_flow: u64,
    now: SimTime,
    events: u64,
}

impl FleetShard {
    /// Builds the shard owning global flows `flows` of `spec`'s fleet and
    /// schedules every flow's first round at time zero.
    ///
    /// # Panics
    /// If `flows` exceeds the fleet's flow space or a cohort's parameters
    /// are outside the model's domain.
    pub fn new(spec: &FleetSpec, flows: Range<u64>) -> Self {
        let first_flow = flows.start;
        let arena = FlowArena::new(&spec.cohorts, spec.base_seed, flows);
        let n = arena.flow_count();
        let mut wheel = ShardWheel::new(spec.wheel, n);
        for local in 0..n {
            wheel.schedule(local as u32, SimTime::ZERO); //~ allow(cast): flow count capped at u32 by arena construction
        }
        FleetShard {
            arena,
            wheel,
            first_flow,
            now: SimTime::ZERO,
            events: 0,
        }
    }

    /// Advances every flow to `horizon`, returning the number of events
    /// processed by this call. Each event is one round of the §II model
    /// (or a loss round with its recovery — see
    /// [`crate::fleet::FlowStats::rounds`]). Safe to call repeatedly with
    /// growing horizons; events due after `horizon` stay pending.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let until = horizon.as_nanos();
        let mut n = 0;
        self.wheel.begin_pass();
        while let Some((flow, at)) = self.wheel.pop_due(until) {
            let next = self.arena.step(flow, at);
            self.wheel.schedule(flow, SimTime::from_nanos(next));
            n += 1;
        }
        if horizon > self.now {
            self.now = horizon;
        }
        self.events += n;
        n
    }

    /// Flows owned by this shard.
    pub fn flow_count(&self) -> usize {
        self.arena.flow_count()
    }

    /// Global flow id of local flow index `local`.
    pub fn global_id(&self, local: usize) -> u64 {
        debug_assert!(local < self.arena.flow_count());
        self.first_flow + local as u64 //~ allow(cast): local flow index widens losslessly
    }

    /// Cohort index of local flow `local`.
    pub fn cohort_of(&self, local: usize) -> u32 {
        self.arena.cohort_of(local)
    }

    /// Ground-truth counters of local flow `local`.
    pub fn flow_stats(&self, local: usize) -> FlowStats {
        self.arena.flow_stats(local)
    }

    /// Number of cohorts in the fleet (not just those with flows here).
    pub fn cohort_count(&self) -> usize {
        self.arena.cohort_count()
    }

    /// Timeout-sequence-length histogram of `cohort`, over this shard's
    /// flows (buckets as in `ConnStats::to_sequences`).
    pub fn to_histogram(&self, cohort: usize) -> [u64; 6] {
        self.arena.to_histogram(cohort)
    }

    /// Horizon reached so far.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetCohort;
    use crate::rounds::RoundsConfig;

    fn spec(flows_per_cohort: u64) -> FleetSpec {
        let mk = |p, wmax| FleetCohort {
            config: RoundsConfig {
                p,
                rtt: 0.1,
                t0: 1.0,
                b: 2,
                wmax,
                ..RoundsConfig::default()
            },
            flows: flows_per_cohort,
        };
        FleetSpec {
            cohorts: vec![mk(0.02, 64), mk(0.1, 16)],
            base_seed: 0xF1EE7,
            ..FleetSpec::default()
        }
    }

    #[test]
    fn shard_runs_every_flow_to_horizon() {
        let s = spec(50);
        let mut shard = FleetShard::new(&s, 0..s.total_flows());
        let events = shard.run_until(SimTime::from_secs_f64(20.0));
        assert!(events > 0);
        assert_eq!(shard.events_processed(), events);
        for local in 0..shard.flow_count() {
            let st = shard.flow_stats(local);
            // 20 s at 0.1 s RTT: every flow must have made real progress
            // (timeout gaps can eat most of the horizon at p = 0.1).
            assert!(st.rounds > 10, "flow {local} stalled: {st:?}");
            assert!(st.packets_sent > 0);
        }
    }

    /// The determinism contract at shard level: a flow's counters depend
    /// only on (base seed, global flow id) — splitting the same fleet
    /// into different shard ranges never changes any flow's trajectory.
    #[test]
    fn flows_identical_across_shard_partitions() {
        let s = spec(30);
        let horizon = SimTime::from_secs_f64(50.0);
        let mut whole = FleetShard::new(&s, 0..60);
        whole.run_until(horizon);
        for range in [0..20u64, 20..45, 45..60] {
            let mut part = FleetShard::new(&s, range.clone());
            part.run_until(horizon);
            for local in 0..part.flow_count() {
                let g = part.global_id(local);
                assert_eq!(
                    part.flow_stats(local),
                    whole.flow_stats(g as usize), //~ allow(cast): test flow ids are tiny
                    "flow {g} diverged in range {range:?}"
                );
                assert_eq!(part.cohort_of(local), whole.cohort_of(g as usize)); //~ allow(cast): test flow ids are tiny
            }
        }
    }

    #[test]
    fn incremental_horizons_equal_one_shot() {
        let s = spec(20);
        let mut steps = FleetShard::new(&s, 0..40);
        let mut oneshot = FleetShard::new(&s, 0..40);
        for k in 1..=10 {
            steps.run_until(SimTime::from_secs_f64(3.0 * f64::from(k)));
        }
        oneshot.run_until(SimTime::from_secs_f64(30.0));
        assert_eq!(steps.events_processed(), oneshot.events_processed());
        for local in 0..steps.flow_count() {
            assert_eq!(steps.flow_stats(local), oneshot.flow_stats(local));
        }
        assert_eq!(steps.to_histogram(0), oneshot.to_histogram(0));
        assert_eq!(steps.to_histogram(1), oneshot.to_histogram(1));
    }

    #[test]
    fn replay_is_bit_identical() {
        let s = spec(25);
        let mut a = FleetShard::new(&s, 0..50);
        let mut b = FleetShard::new(&s, 0..50);
        a.run_until(SimTime::from_secs_f64(40.0));
        b.run_until(SimTime::from_secs_f64(40.0));
        assert_eq!(a.events_processed(), b.events_processed());
        for local in 0..a.flow_count() {
            assert_eq!(a.flow_stats(local), b.flow_stats(local));
        }
    }
}
