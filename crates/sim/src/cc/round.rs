//! Round-granularity congestion control for the §II rounds model and the
//! fleet arena.
//!
//! [`RoundCc`] is the variant counterpart of the packet-level
//! [`super::CcState`], abstracted to the paper's round granularity: it
//! owns only the *window laws* (per-round growth, triple-duplicate
//! reduction, timeout collapse) and **never draws randomness** — the
//! engine keeps every RNG draw and the `k ≥ 3 ∧ m ≥ 3` TD/TO
//! classification. That split is what makes RNG draw order — and
//! therefore replay/shard equivalence — structurally identical across
//! variants: switching a cohort from Reno to CUBIC cannot move a single
//! draw.
//!
//! `Copy` on purpose: the fleet arena stores one `RoundCc` per flow in a
//! dense SoA column, and the warm loop must stay allocation-free.
//!
//! One carefully scoped exception to "the engine owns all draws": a
//! triple-duplicate hook may *request* recovery rounds
//! ([`RoundCc::on_td`]'s return value). The engine then charges them —
//! time, retransmissions, and the per-retransmission loss draws — in a
//! fixed order, so the draw sequence is still a pure function of the
//! variant, and the Reno sequence (zero recovery rounds) is untouched.
//!
//! Variant round laws, and where they come from:
//!
//! * **Reno** — the paper's §II laws verbatim; bit-identical to the
//!   pre-trait engine.
//! * **NewReno** — Reno's window laws plus Fall & Floyd's fast-recovery
//!   phase in the RFC 6582 §4 *Impatient* form: each packet of the doomed
//!   tail is repaired by one retransmission per round, during which no
//!   new data flows, under a retransmit timer armed at the first partial
//!   ACK and never reset — so recovery outliving T0, like a lost
//!   retransmission, degrades into a timeout. The §II model charges Reno
//!   zero rounds for loss recovery (an idealization the closed form
//!   inherits); NewReno is the variant that actually pays the recovery
//!   bill the model waves away, which is exactly what its atlas frontier
//!   maps: wherever the doomed tail outruns ⌊T0/RTT⌋, TDs the model
//!   prices at one window halving become timeout sequences.
//! * **Relentless** — Mathis's decrease-by-losses rule in the mean-field
//!   form Diana & Lochin's analytical model uses: the expected number of
//!   per-packet Bernoulli losses in the window, `p·W`. The §II
//!   doomed-tail loss count is a Reno-recovery modeling device (it makes
//!   every TD cost half a window); applying it to Relentless would
//!   collapse the variant back onto Reno and erase precisely the law the
//!   Relentless model predicts diverges.
//! * **CUBIC** — RFC 8312 cube growth in pure form (no TCP-friendly
//!   Reno-tracking region, which would mask the short-RTT divergence the
//!   atlas is after).
//! * **Scalable** — Kelly's MIMD: the window grows by `0.01·W/b` per
//!   round (0.01 per ACK) and keeps 7/8 on a TD. Its equilibrium window
//!   is `Θ(1/p)` against the PFTK formula's `Θ(1/√p)`, so it undershoots
//!   the prediction across the whole mid-loss band — the widest frontier
//!   in the atlas.

use super::cubic::{cubic_k, cubic_window};
use super::CcAlgorithm;

/// Per-flow round-level congestion state for one algorithm.
///
/// `ssthresh` uses the `u32` encoding of the rounds model: `0` means "no
/// threshold active" (pure congestion avoidance), matching the paper's
/// model which has no initial slow start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundCc {
    /// Reno: +1/b per round, halve on TD.
    Reno {
        /// Fractional congestion window, packets.
        wf: f64,
        /// Slow-start threshold (0 = none).
        ssthresh: u32,
    },
    /// NewReno: Reno's laws plus Impatient-variant fast recovery (one
    /// repaired loss per round, charged by the engine under the
    /// retransmit timer).
    NewReno {
        /// Fractional congestion window, packets.
        wf: f64,
        /// Slow-start threshold (0 = none).
        ssthresh: u32,
    },
    /// CUBIC: time-based cube growth around the last plateau.
    Cubic {
        /// Fractional congestion window, packets.
        wf: f64,
        /// Slow-start threshold (0 = none).
        ssthresh: u32,
        /// Last loss plateau `W_max`, packets.
        w_max: f64,
        /// Seconds of congestion avoidance since the current epoch began.
        t: f64,
        /// Recovery-origin offset `K`, seconds.
        k: f64,
    },
    /// Relentless: decrease by the number of lost packets on TD.
    Relentless {
        /// Fractional congestion window, packets.
        wf: f64,
        /// Slow-start threshold (0 = none).
        ssthresh: u32,
    },
    /// Scalable: MIMD — `+0.01·W/b` per round, `×7/8` on TD.
    Scalable {
        /// Fractional congestion window, packets.
        wf: f64,
        /// Slow-start threshold (0 = none).
        ssthresh: u32,
    },
}

/// The shared Reno-shaped per-round growth law: slow start toward an
/// active threshold, else linear +1/b per round, capped at `wmax`. This
/// is character-for-character the arithmetic the Reno rounds model has
/// always used, so Reno behind [`RoundCc`] is bit-identical to the
/// pre-trait engine.
//= pftk#cwnd-linear-growth
#[inline]
fn reno_round_growth(wf: f64, ssthresh: u32, b: u32, wmax: u32) -> f64 {
    if ssthresh != 0 && wf < f64::from(ssthresh) {
        (wf * (1.0 + 1.0 / f64::from(b))).min(f64::from(ssthresh))
    } else {
        wf + 1.0 / f64::from(b)
    }
    .min(f64::from(wmax))
}

impl RoundCc {
    /// Initial state for `algo` with the given (already `wmax`-clamped)
    /// initial window. Matches the rounds model's historic start: no
    /// threshold active, i.e. congestion avoidance from the first round.
    pub fn new(algo: CcAlgorithm, initial_window: u32) -> RoundCc {
        let wf = f64::from(initial_window);
        match algo {
            CcAlgorithm::Reno => RoundCc::Reno { wf, ssthresh: 0 },
            CcAlgorithm::NewReno => RoundCc::NewReno { wf, ssthresh: 0 },
            CcAlgorithm::Cubic => RoundCc::Cubic {
                wf,
                ssthresh: 0,
                // First epoch: plateau at the initial window with K = 0,
                // so W(t) = C·t³ + W₀ probes convexly from the start.
                w_max: wf,
                t: 0.0,
                k: 0.0,
            },
            CcAlgorithm::Relentless => RoundCc::Relentless { wf, ssthresh: 0 },
            CcAlgorithm::Scalable => RoundCc::Scalable { wf, ssthresh: 0 },
        }
    }

    /// Integer send window for the coming round, packets, in `[1, wmax]`.
    #[inline]
    pub fn window(&self, wmax: u32) -> u32 {
        let wf = match *self {
            RoundCc::Reno { wf, .. }
            | RoundCc::NewReno { wf, .. }
            | RoundCc::Cubic { wf, .. }
            | RoundCc::Relentless { wf, .. }
            | RoundCc::Scalable { wf, .. } => wf,
        };
        (wf.floor() as u32).clamp(1, wmax) //~ allow(cast): deliberate float truncation after round/floor
    }

    /// Current slow-start threshold (0 = none) — exposed for parity tests.
    #[inline]
    pub fn ssthresh(&self) -> u32 {
        match *self {
            RoundCc::Reno { ssthresh, .. }
            | RoundCc::NewReno { ssthresh, .. }
            | RoundCc::Cubic { ssthresh, .. }
            | RoundCc::Relentless { ssthresh, .. }
            | RoundCc::Scalable { ssthresh, .. } => ssthresh,
        }
    }

    /// A full round completed without a loss indication: grow the window.
    /// `rtt` (seconds) advances CUBIC's epoch clock; the AIMD variants
    /// ignore it.
    #[inline]
    pub fn on_round_no_loss(&mut self, b: u32, wmax: u32, rtt: f64) {
        match self {
            RoundCc::Reno { wf, ssthresh }
            | RoundCc::NewReno { wf, ssthresh }
            | RoundCc::Relentless { wf, ssthresh } => {
                *wf = reno_round_growth(*wf, *ssthresh, b, wmax);
            }
            RoundCc::Scalable { wf, ssthresh } => {
                if *ssthresh != 0 && *wf < f64::from(*ssthresh) {
                    // Post-timeout slow start is shared mechanics.
                    *wf = reno_round_growth(*wf, *ssthresh, b, wmax);
                } else {
                    // Kelly's MIMD: 0.01 per ACK, W/b ACKs per round.
                    *wf = (*wf * (1.0 + 0.01 / f64::from(b))).min(f64::from(wmax));
                }
            }
            RoundCc::Cubic {
                wf,
                ssthresh,
                w_max,
                t,
                k,
            } => {
                if *ssthresh != 0 && *wf < f64::from(*ssthresh) {
                    // Post-timeout slow start is shared mechanics, not a
                    // CUBIC law: grow like Reno until the threshold.
                    *wf = reno_round_growth(*wf, *ssthresh, b, wmax);
                } else {
                    // Congestion avoidance: one round of wall-clock time
                    // passes, take the cubic's value there. max() keeps
                    // the window monotone across the slow-start → CA
                    // hand-off when the cubic starts below it.
                    *t += rtt;
                    *wf = wf.max(cubic_window(*t, *k, *w_max)).min(f64::from(wmax));
                }
            }
        }
    }

    /// The TD period ended in a triple-duplicate indication at window
    /// `peak` with `losses` packets lost in the final two rounds (the
    /// engine computes `losses` from draws it already made) under
    /// per-packet loss probability `p`.
    ///
    /// Returns the number of **recovery rounds** the engine must charge
    /// before new data flows again: zero for every variant except
    /// NewReno, whose fast recovery (Fall & Floyd) repairs one lost
    /// packet per round. The engine charges each round one RTT and one
    /// retransmission, and draws its fate — a lost retransmission, or
    /// the Impatient variant's never-reset retransmit timer firing after
    /// ⌊T0/RTT⌋ rounds, aborts recovery into a timeout sequence.
    //= pftk#cwnd-td-halve
    #[inline]
    #[must_use = "the engine must charge the returned recovery rounds"]
    pub fn on_td(&mut self, peak: u32, losses: u32, p: f64) -> u32 {
        match self {
            RoundCc::Reno { wf, ssthresh } => {
                *wf = f64::from((peak / 2).max(1));
                *ssthresh = 0;
                0
            }
            RoundCc::NewReno { wf, ssthresh } => {
                // Same halving as Reno, but the doomed tail is repaired
                // one retransmission per round (module docs).
                *wf = f64::from((peak / 2).max(1));
                *ssthresh = 0;
                losses
            }
            RoundCc::Cubic {
                wf,
                ssthresh,
                w_max,
                t,
                k,
            } => {
                let w = f64::from(peak);
                // Fast convergence: a plateau below the previous one
                // means capacity shrank — release it faster ((2−β)/2
                // with β = 0.7, inlined for the numeric-domain pass).
                *w_max = if w < *w_max { w * 0.65 } else { w };
                let new_wf = (w * 0.7).max(1.0);
                *k = cubic_k(*w_max, new_wf);
                *t = 0.0;
                *wf = new_wf;
                *ssthresh = 0;
                0
            }
            RoundCc::Relentless { wf, ssthresh } => {
                // Decrease by the number of lost packets in the
                // mean-field form of the Relentless model: `p·W` expected
                // per-packet Bernoulli losses, at least one (the loss
                // that triggered the indication). The engine-supplied
                // doomed-tail count is Reno's recovery idealization, not
                // this variant's law (module docs).
                let _ = losses;
                let lost = (f64::from(peak) * p).max(1.0);
                *wf = (f64::from(peak) - lost).max(1.0);
                *ssthresh = 0;
                0
            }
            RoundCc::Scalable { wf, ssthresh } => {
                // Kelly's b = 1/8 cut: keep 7/8 of the window.
                *wf = (f64::from(peak) * 0.875).max(1.0);
                *ssthresh = 0;
                0
            }
        }
    }

    /// The TD period ended in a timeout at window `peak`: collapse to one
    /// and (optionally) arm slow start back toward `peak/2` — every
    /// variant keeps the paper's timeout behaviour.
    //= pftk#cwnd-to-collapse
    #[inline]
    pub fn on_to(&mut self, peak: u32, slow_start_after_to: bool) {
        let ss = if slow_start_after_to {
            (peak / 2).max(2)
        } else {
            0
        };
        match self {
            RoundCc::Reno { wf, ssthresh }
            | RoundCc::NewReno { wf, ssthresh }
            | RoundCc::Relentless { wf, ssthresh }
            | RoundCc::Scalable { wf, ssthresh } => {
                *wf = 1.0;
                *ssthresh = ss;
            }
            RoundCc::Cubic {
                wf,
                ssthresh,
                w_max,
                t,
                k,
            } => {
                *w_max = f64::from(peak);
                *k = cubic_k(*w_max, f64::from(ss.max(1)));
                *t = 0.0;
                *wf = 1.0;
                *ssthresh = ss;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_matches_historic_laws() {
        let mut cc = RoundCc::new(CcAlgorithm::Reno, 4);
        assert_eq!(cc.window(64), 4);
        // Linear growth: +1/b per round.
        cc.on_round_no_loss(2, 64, 0.1);
        assert_eq!(cc.window(64), 4);
        cc.on_round_no_loss(2, 64, 0.1);
        assert_eq!(cc.window(64), 5);
        assert_eq!(
            cc.on_td(20, 3, 0.1),
            0,
            "Reno never requests recovery rounds"
        );
        assert_eq!(cc.window(64), 10);
        assert_eq!(cc.ssthresh(), 0);
        cc.on_to(20, true);
        assert_eq!(cc.window(64), 1);
        assert_eq!(cc.ssthresh(), 10);
        // Slow start toward the threshold (×1.5 per round with b = 2,
        // capped at ssthresh = 10), then linear +1/2 per round.
        for _ in 0..6 {
            cc.on_round_no_loss(2, 64, 0.1);
        }
        assert_eq!(cc.window(64), 10);
        for _ in 0..4 {
            cc.on_round_no_loss(2, 64, 0.1);
        }
        assert_eq!(cc.window(64), 12);
    }

    #[test]
    fn newreno_halves_like_reno_but_requests_recovery_rounds() {
        let mut cc = RoundCc::new(CcAlgorithm::NewReno, 20);
        // Growth is Reno's.
        cc.on_round_no_loss(2, 64, 0.1);
        assert_eq!(cc.window(64), 20);
        cc.on_round_no_loss(2, 64, 0.1);
        assert_eq!(cc.window(64), 21);
        // TD: same halving, but one recovery round per repaired loss.
        assert_eq!(cc.on_td(21, 7, 0.02), 7);
        assert_eq!(cc.window(64), 10);
        cc.on_to(10, true);
        assert_eq!(cc.window(64), 1);
        assert_eq!(cc.ssthresh(), 5);
    }

    #[test]
    fn relentless_td_costs_expected_packet_losses_not_half() {
        let mut cc = RoundCc::new(CcAlgorithm::Relentless, 1);
        for _ in 0..40 {
            cc.on_round_no_loss(1, 64, 0.1);
        }
        assert_eq!(cc.window(64), 41);
        // Mean-field decrease: p·W = 0.05·41 ≈ 2, floored at 1 lost
        // packet; the doomed-tail count (second argument) is ignored.
        assert_eq!(cc.on_td(41, 30, 0.05), 0);
        assert_eq!(cc.window(64), 38, "peak − ceil-ish p·peak");
        cc.on_to(38, true);
        assert_eq!(cc.window(64), 1);
        assert_eq!(cc.ssthresh(), 19);
    }

    #[test]
    fn relentless_td_floors_at_one() {
        let mut cc = RoundCc::new(CcAlgorithm::Relentless, 2);
        assert_eq!(cc.on_td(2, 50, 0.9), 0);
        assert_eq!(cc.window(64), 1);
    }

    #[test]
    fn scalable_grows_multiplicatively_and_cuts_one_eighth() {
        let mut cc = RoundCc::new(CcAlgorithm::Scalable, 16);
        // MIMD growth: ×(1 + 0.01/b) per round.
        cc.on_round_no_loss(2, 64, 0.1);
        assert_eq!(cc.window(64), 16); // 16·1.005 = 16.08
        for _ in 0..100 {
            cc.on_round_no_loss(2, 64, 0.1);
        }
        assert_eq!(cc.window(64), 26, "16·1.005^101 ≈ 26.5");
        // TD: keep 7/8, request no recovery rounds.
        assert_eq!(cc.on_td(26, 5, 0.1), 0);
        assert_eq!(cc.window(64), 22, "⌊26·0.875⌋");
        // Timeout collapse is the shared law.
        cc.on_to(22, true);
        assert_eq!(cc.window(64), 1);
        assert_eq!(cc.ssthresh(), 11);
    }

    #[test]
    fn cubic_outgrows_reno_on_long_no_loss_stretches() {
        let mut reno = RoundCc::new(CcAlgorithm::Reno, 1);
        let mut cubic = RoundCc::new(CcAlgorithm::Cubic, 1);
        // Same loss history: one TD at window 30, then a long quiet
        // stretch with RTT 0.2 s.
        assert_eq!(reno.on_td(30, 1, 0.01), 0);
        assert_eq!(cubic.on_td(30, 1, 0.01), 0);
        for _ in 0..60 {
            reno.on_round_no_loss(2, 1000, 0.2);
            cubic.on_round_no_loss(2, 1000, 0.2);
        }
        // Reno: 15 + 60/2 = 45. CUBIC recrosses W_max = 30 at K ≈ 2.8 s
        // (round 14) and then probes convexly, ending far above.
        assert_eq!(reno.window(1000), 45);
        assert!(
            cubic.window(1000) > reno.window(1000),
            "cubic {} vs reno {}",
            cubic.window(1000),
            reno.window(1000)
        );
    }

    #[test]
    fn cubic_window_is_monotone_and_capped() {
        let mut cc = RoundCc::new(CcAlgorithm::Cubic, 1);
        assert_eq!(cc.on_td(10, 1, 0.01), 0);
        let mut prev = cc.window(16);
        for _ in 0..200 {
            cc.on_round_no_loss(2, 16, 0.05);
            let w = cc.window(16);
            assert!(w >= prev, "monotone between losses");
            prev = w;
        }
        assert_eq!(prev, 16, "capped at wmax");
    }

    #[test]
    fn cubic_post_timeout_slow_starts_then_goes_cubic() {
        let mut cc = RoundCc::new(CcAlgorithm::Cubic, 1);
        cc.on_to(24, true); // ssthresh 12, wf 1
        assert_eq!(cc.window(64), 1);
        assert_eq!(cc.ssthresh(), 12);
        // b = 1 slow start: ×2 per round toward the threshold.
        cc.on_round_no_loss(1, 64, 0.1);
        assert_eq!(cc.window(64), 2);
        for _ in 0..10 {
            cc.on_round_no_loss(1, 64, 0.1);
        }
        // At the threshold the cubic takes over and keeps growing.
        assert!(cc.window(64) >= 12);
    }
}
