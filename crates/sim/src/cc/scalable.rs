//! Scalable TCP (Kelly, "Scalable TCP: improving performance in highspeed
//! wide area networks", CCR 2003).
//!
//! MIMD instead of AIMD: in congestion avoidance each ACK adds a fixed
//! `a = 0.01` to the window (so the window grows by `a·W` per round —
//! multiplicatively), and a loss event cuts the window by `b = 1/8`
//! instead of half. The fixed point of that balance puts the equilibrium
//! window at `Θ(1/p)` where Reno's — and therefore the PFTK formula's —
//! sits at `Θ(1/√p)`, so Scalable's atlas frontier is the widest of the
//! variants: the gentler-than-designed-for growth at moderate `p` leaves
//! it ≥2× under the prediction across the mid-loss band.
//!
//! Slow start and the timeout collapse are conventional; Kelly's change
//! is confined to the congestion-avoidance response, as in the Linux
//! `tcp_scalable` module.

use super::CongestionController;
use crate::time::SimTime;
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Per-ACK congestion-avoidance increment (Kelly's `a`).
const ACK_GAIN: f64 = 0.01;

/// Multiplicative decrease factor kept on loss (1 − Kelly's `b` = 7/8).
const DECREASE_KEEP: f64 = 0.875;

/// Floor the window never decreases below, packets (mirrors Reno's
/// ssthresh floor so the sender can always keep one retransmission and
/// one probe in flight).
const MIN_SSTHRESH: f64 = 2.0;

/// Scalable TCP controller state.
#[derive(Debug, Clone)]
pub struct ScalableCc {
    cwnd: f64,
    ssthresh: f64,
    in_fast_recovery: bool,
}

impl ScalableCc {
    /// Starts in slow start with the given initial window (packets).
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(
            initial_cwnd >= 1.0,
            "initial cwnd must be at least one segment"
        );
        ScalableCc {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            in_fast_recovery: false,
        }
    }
}

impl CongestionController for ScalableCc {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
    fn window(&self) -> u64 {
        (self.cwnd.floor() as u64).max(1) //~ allow(cast): deliberate float truncation after round/floor
    }
    fn in_fast_recovery(&self) -> bool {
        self.in_fast_recovery
    }
    fn in_slow_start(&self) -> bool {
        !self.in_fast_recovery && self.cwnd < self.ssthresh
    }

    /// Slow start is Reno's; congestion avoidance adds Kelly's fixed
    /// `a = 0.01` per ACK (multiplicative growth per round).
    #[inline]
    fn on_new_ack(&mut self, _now: SimTime) {
        if self.in_fast_recovery {
            self.cwnd = self.ssthresh;
            self.in_fast_recovery = false;
        } else if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += ACK_GAIN;
        }
    }

    #[inline]
    fn on_dupack_in_recovery(&mut self) {
        debug_assert!(self.in_fast_recovery);
        self.cwnd += 1.0;
    }

    /// Recovery entry: keep 7/8 of the window (Kelly's `b = 1/8` cut);
    /// dupack inflation on top mirrors Reno mechanics.
    #[inline]
    fn on_fast_retransmit(&mut self, _now: SimTime, _flight: u64) {
        self.ssthresh = (self.cwnd * DECREASE_KEEP).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh + 3.0;
        self.in_fast_recovery = true;
    }

    /// SACK entry: same 7/8 target without inflation (the pipe algorithm
    /// regulates transmissions).
    #[inline]
    fn on_sack_retransmit(&mut self, _now: SimTime, _flight: u64) {
        self.ssthresh = (self.cwnd * DECREASE_KEEP).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = true;
    }

    /// Timeouts are conventional: collapse to one and slow-start back
    /// toward 7/8 of the flight (the Linux `tcp_scalable` ssthresh).
    //= pftk#cwnd-to-collapse
    #[inline]
    fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 * DECREASE_KEEP).max(MIN_SSTHRESH); //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = 1.0;
        self.in_fast_recovery = false;
    }

    #[inline]
    fn exit_recovery(&mut self) {
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = false;
    }

    fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put_bool(self.in_fast_recovery);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.cwnd = r.get_f64()?;
        self.ssthresh = r.get_f64()?;
        self.in_fast_recovery = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimTime = SimTime::ZERO;

    #[test]
    fn congestion_avoidance_adds_a_per_ack() {
        let mut cc = ScalableCc::new(1.0);
        cc.on_timeout(1); // arm a threshold so CA is reachable
        cc.ssthresh = 2.0;
        cc.on_new_ack(T); // slow start: 1 → 2
        assert_eq!(cc.cwnd(), 2.0);
        cc.on_new_ack(T); // CA: + 0.01
        assert_eq!(cc.cwnd(), 2.01);
    }

    #[test]
    fn loss_costs_one_eighth_not_half() {
        let mut cc = ScalableCc::new(16.0);
        cc.on_fast_retransmit(T, 16);
        assert!(cc.in_fast_recovery());
        assert_eq!(cc.ssthresh(), 14.0, "16 · 7/8, not 8");
        cc.on_new_ack(T); // deflate
        assert_eq!(cc.cwnd(), 14.0);
        assert!(!cc.in_fast_recovery());
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut cc = ScalableCc::new(16.0);
        cc.on_timeout(16);
        assert_eq!(CongestionController::window(&cc), 1);
        assert_eq!(cc.ssthresh(), 14.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn decrease_floors_at_min_ssthresh() {
        let mut cc = ScalableCc::new(2.0);
        cc.on_fast_retransmit(T, 2);
        assert_eq!(cc.ssthresh(), 2.0);
    }
}
