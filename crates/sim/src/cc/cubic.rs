//! CUBIC congestion control (RFC 8312).
//!
//! The window is a cubic function of *time since the last reduction*
//! rather than of ACK arrivals: after a loss at plateau `W_max`, the
//! window follows `W(t) = C·(t − K)³ + W_max` with `C = 0.4` and
//! `K = ∛(W_max·β/C)`-shaped recovery origin, so it concave-approaches
//! the old plateau, plateaus, then convex-probes beyond it. This breaks
//! both PFTK modelling assumptions at once — growth is neither +1/W per
//! round nor a function of the window — which is exactly why it belongs
//! in the model-domain atlas.

use super::CongestionController;
use crate::time::{SimDuration, SimTime};
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Multiplicative-decrease factor β (RFC 8312 §4.5).
const BETA: f64 = 0.7;

/// Floor for the slow-start threshold, packets (matches Reno's floor).
const MIN_SSTHRESH: f64 = 2.0;

/// Time, in seconds, for the cubic to return from `start` to the plateau
/// `w_max`: the real root of `C·(t − K)³ + W_max = start`.
///
/// `start` may *exceed* `w_max` (dupack inflation, or a shallow loss with
/// fast convergence shrinking the plateau below the surviving window);
/// the offset under the cube root is then negative and `K < 0`, placing
/// the epoch origin in the past so the window immediately convex-probes.
/// `f64::cbrt` is total over all of ℝ, so no clamping is needed — the
/// audit's numeric-domain pass proves this, including the `K = 0` edge
/// where `start == w_max`.
//= pftk#cwnd-td-halve
pub fn cubic_k(w_max: f64, start: f64) -> f64 {
    // (w_max − start) / C with C = 0.4, i.e. ×2.5, inlined for the
    // numeric-domain analysis (module consts are opaque to it).
    ((w_max - start) * 2.5).cbrt()
}

/// The cubic window `W(t) = C·(t − K)³ + W_max`, packets, at `t` seconds
/// since the epoch start (RFC 8312 §4.1, `C = 0.4`).
///
/// Total for every finite input: the cube and the multiply stay finite
/// for the bounded `t`, `k`, `w_max` the controllers produce, and the
/// function is monotone increasing in `t`, crossing `w_max` at `t = k`
/// (including the `k = 0` edge, where growth is convex from the start).
//= pftk#cwnd-linear-growth
pub fn cubic_window(t: f64, k: f64, w_max: f64) -> f64 {
    let d = t - k;
    0.4 * (d * d * d) + w_max
}

/// CUBIC controller state.
///
/// Unlike Reno, the state carries the plateau `w_max`, the recovery
/// origin `k`, and the wall-clock epoch start; the [`SimTime`] passed to
/// [`CongestionController::on_new_ack`] is what makes the growth law
/// time-based.
#[derive(Debug, Clone)]
pub struct CubicCc {
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    k: f64,
    epoch_start: Option<SimTime>,
    in_fast_recovery: bool,
}

impl CubicCc {
    /// Starts in slow start with the given initial window (packets).
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(
            initial_cwnd >= 1.0,
            "initial cwnd must be at least one segment"
        );
        CubicCc {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            w_max: initial_cwnd,
            k: 0.0,
            epoch_start: None,
            in_fast_recovery: false,
        }
    }

    /// Last loss plateau `W_max`, packets.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Recovery-origin offset `K`, seconds.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Enters a fresh reduction epoch from window `w` with fast
    /// convergence (RFC 8312 §4.6): a plateau lower than the previous one
    /// means capacity shrank, so release it faster.
    fn reduce(&mut self, w: f64) {
        self.w_max = if w < self.w_max {
            // (2 − β)/2 with β = 0.7, inlined for the numeric-domain pass.
            w * 0.65
        } else {
            w
        };
        self.ssthresh = (w * BETA).max(MIN_SSTHRESH);
        self.k = cubic_k(self.w_max, self.ssthresh);
        self.epoch_start = None;
    }
}

impl CongestionController for CubicCc {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
    fn window(&self) -> u64 {
        (self.cwnd.floor() as u64).max(1) //~ allow(cast): deliberate float truncation after round/floor
    }
    fn in_fast_recovery(&self) -> bool {
        self.in_fast_recovery
    }
    fn in_slow_start(&self) -> bool {
        !self.in_fast_recovery && self.cwnd < self.ssthresh
    }

    #[inline]
    fn on_new_ack(&mut self, now: SimTime) {
        if self.in_fast_recovery {
            self.cwnd = self.ssthresh;
            self.in_fast_recovery = false;
            self.epoch_start = None;
        } else if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            let start = *self.epoch_start.get_or_insert(now);
            let t = now.saturating_since(start).as_secs_f64();
            let target = cubic_window(t, self.k, self.w_max);
            if target > self.cwnd {
                // Close the gap to the cubic within roughly one RTT
                // (RFC 8312 §4.1's per-ACK increment).
                self.cwnd += (target - self.cwnd) / self.cwnd;
            } else {
                // At or beyond the cubic: slow max-probing.
                self.cwnd += 0.01 / self.cwnd;
            }
        }
    }

    #[inline]
    fn on_dupack_in_recovery(&mut self) {
        debug_assert!(self.in_fast_recovery);
        self.cwnd += 1.0;
    }

    #[inline]
    fn on_fast_retransmit(&mut self, _now: SimTime, _flight: u64) {
        let w = self.cwnd;
        self.reduce(w);
        self.cwnd = self.ssthresh + 3.0;
        self.in_fast_recovery = true;
    }

    #[inline]
    fn on_sack_retransmit(&mut self, _now: SimTime, _flight: u64) {
        let w = self.cwnd;
        self.reduce(w);
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = true;
    }

    #[inline]
    fn on_timeout(&mut self, _flight: u64) {
        let w = self.cwnd;
        self.reduce(w);
        self.cwnd = 1.0;
        self.in_fast_recovery = false;
    }

    #[inline]
    fn exit_recovery(&mut self) {
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = false;
        self.epoch_start = None;
    }

    #[inline]
    fn on_rtt_sample(&mut self, _rtt: SimDuration) {}

    fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put_f64(self.w_max);
        w.put_f64(self.k);
        match self.epoch_start {
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t.as_nanos());
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.in_fast_recovery);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.cwnd = r.get_f64()?;
        self.ssthresh = r.get_f64()?;
        self.w_max = r.get_f64()?;
        self.k = r.get_f64()?;
        self.epoch_start = if r.get_bool()? {
            Some(SimTime::from_nanos(r.get_u64()?))
        } else {
            None
        };
        self.in_fast_recovery = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn k_zero_edge_window_equals_plateau() {
        // start == w_max → K = 0 and W(0) = W_max exactly.
        let k = cubic_k(40.0, 40.0);
        assert_eq!(k, 0.0);
        assert_eq!(cubic_window(0.0, k, 40.0), 40.0);
    }

    #[test]
    fn negative_offset_gives_negative_k() {
        // Post-reduction start above the plateau: K < 0, window probes
        // beyond W_max from t = 0.
        let k = cubic_k(4.0, 6.8);
        assert!(k < 0.0, "K = {k}");
        assert!(cubic_window(0.0, k, 4.0) > 4.0);
    }

    #[test]
    fn window_recrosses_plateau_at_k() {
        let w_max = 50.0;
        let start = w_max * BETA;
        let k = cubic_k(w_max, start);
        assert!((cubic_window(k, k, w_max) - w_max).abs() < 1e-9);
        assert!((cubic_window(0.0, k, w_max) - start).abs() < 1e-9);
        // Concave below K, convex beyond it — monotone throughout.
        assert!(cubic_window(k / 2.0, k, w_max) > start);
        assert!(cubic_window(k * 1.5, k, w_max) > w_max);
    }

    #[test]
    fn slow_start_then_cubic_growth() {
        let mut cc = CubicCc::new(1.0);
        assert!(cc.in_slow_start());
        for _ in 0..9 {
            cc.on_new_ack(at(0.0));
        }
        assert_eq!(CongestionController::window(&cc), 10);
        cc.on_fast_retransmit(at(1.0), 10);
        assert!(cc.in_fast_recovery());
        assert_eq!(cc.ssthresh(), 7.0);
        cc.on_new_ack(at(1.1)); // deflate, exit recovery
        assert!(!cc.in_fast_recovery());
        assert_eq!(cc.cwnd(), 7.0);
        // Time-driven growth: the same number of ACKs spread over more
        // time grows the window further.
        let mut near = cc.clone();
        let mut far = cc.clone();
        for i in 0..50 {
            let dt = f64::from(i);
            near.on_new_ack(at(1.2 + 0.01 * dt));
            far.on_new_ack(at(1.2 + 1.0 * dt));
        }
        assert!(
            far.cwnd() > near.cwnd(),
            "time-based growth: {} vs {}",
            far.cwnd(),
            near.cwnd()
        );
        assert!(far.cwnd() > cc.w_max(), "convex probe beyond the plateau");
    }

    #[test]
    fn fast_convergence_shrinks_plateau_on_back_to_back_losses() {
        let mut cc = CubicCc::new(20.0);
        cc.on_fast_retransmit(at(1.0), 20); // w_max = 20
        assert_eq!(cc.w_max(), 20.0);
        cc.on_new_ack(at(1.1));
        // Second loss from a smaller window: plateau shrinks below it.
        let w = cc.cwnd();
        cc.on_fast_retransmit(at(1.2), 14);
        assert!(cc.w_max() < w, "fast convergence: {} < {w}", cc.w_max());
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut cc = CubicCc::new(16.0);
        cc.on_timeout(16);
        assert_eq!(CongestionController::window(&cc), 1);
        assert!(cc.in_slow_start());
        assert_eq!(cc.ssthresh(), 16.0 * BETA);
    }

    #[test]
    fn snapshot_round_trips_mid_epoch() {
        let mut cc = CubicCc::new(1.0);
        for _ in 0..14 {
            cc.on_new_ack(at(0.5));
        }
        cc.on_fast_retransmit(at(2.0), 15);
        cc.on_new_ack(at(2.1));
        cc.on_new_ack(at(2.3)); // CA: epoch pinned at 2.3
        let mut w = SnapWriter::new();
        cc.snapshot_into(&mut w);
        let bytes = w.into_bytes();
        let mut restored = CubicCc::new(1.0);
        let mut r = SnapReader::new(&bytes);
        restored.restore_from(&mut r).expect("restore");
        r.finish().expect("fully consumed");
        // Continued evolution must be bit-identical.
        cc.on_new_ack(at(2.9));
        restored.on_new_ack(at(2.9));
        assert_eq!(cc.cwnd().to_bits(), restored.cwnd().to_bits());
        assert_eq!(cc.k().to_bits(), restored.k().to_bits());
        assert_eq!(cc.epoch_start, restored.epoch_start);
    }
}
