//! Pluggable congestion control: the [`CongestionController`] trait, the
//! monomorphized variant dispatch ([`CcState`]), and the per-OS quirk
//! decorator ([`Quirked`]).
//!
//! The paper models **Reno**; this module generalizes the sender's
//! congestion state behind a trait so the same engine — packet-level
//! sender, §II rounds model, and fleet arena — can run the variants that
//! replaced Reno (NewReno window deflation, CUBIC's cube-root growth,
//! Relentless's loss-proportional decrease) and map where the PFTK
//! prediction stops holding.
//!
//! Dispatch is monomorphized the same way [`crate::loss::LossKind`]
//! already is: the sender stores a [`CcState`] enum and every hook is an
//! `#[inline]` match, so the per-packet hot path pays a predictable branch
//! instead of a `dyn` call and the zero-allocation steady state is
//! preserved. Per-OS quirk knobs (the Linux dupthresh-2 and Irix backoff
//! quirks of §III/§IV) are a [`Quirked`] decorator *over* the trait, so
//! protocol code never branches on host identity.
//!
//! The round-granularity counterpart for the §II model and the fleet
//! arena is [`RoundCc`]: window laws only, no RNG draws, so every variant
//! consumes the same draw sequence as Reno and replay/shard equivalence
//! holds structurally.

mod cubic;
mod newreno;
mod relentless;
mod round;
mod scalable;

pub use cubic::{cubic_k, cubic_window, CubicCc};
pub use newreno::NewRenoCc;
pub use relentless::RelentlessCc;
pub use round::RoundCc;
pub use scalable::ScalableCc;

use crate::reno::cwnd::CongestionControl;
use crate::time::{SimDuration, SimTime};
use pftk_snap::{SnapReader, SnapResult, SnapWriter};
use serde::{Deserialize, Serialize};

/// The sender-side congestion-control contract: window accessors plus the
/// ACK/loss/timeout/RTT event hooks the sender state machine drives.
///
/// Implementations are pure window arithmetic — they never touch the
/// clock, the RNG, or the network. Loss *detection* (dupack counting,
/// SACK scoreboards, RTO timers) stays in the sender; implementations
/// only decide how the window reacts.
pub trait CongestionController {
    /// Raw floating-point congestion window, packets.
    fn cwnd(&self) -> f64;
    /// Current slow-start threshold, packets (`∞` before any loss).
    fn ssthresh(&self) -> f64;
    /// Integer usable window in packets (≥ 1).
    fn window(&self) -> u64;
    /// True between a fast-retransmit entry and the next new ACK.
    fn in_fast_recovery(&self) -> bool;
    /// True while the window grows exponentially.
    fn in_slow_start(&self) -> bool;
    /// Duplicate-ACK threshold for fast retransmit. RFC 5681 says 3; the
    /// [`Quirked`] decorator overrides this with the per-OS value (§III:
    /// Linux fires after two).
    fn dupthresh(&self) -> u32 {
        3
    }
    /// An ACK advancing `snd_una` arrived at `now`.
    fn on_new_ack(&mut self, now: SimTime);
    /// A partial ACK arrived during NewReno/SACK-style recovery: `snd_una`
    /// advanced by `newly_acked` packets but recovery stays open. The
    /// default is a no-op (plain Reno has no partial-ACK reaction — this
    /// is what keeps Reno-behind-the-trait bit-identical to the paper's
    /// protocol).
    fn on_partial_ack(&mut self, newly_acked: u64) {
        let _ = newly_acked;
    }
    /// A further duplicate ACK arrived during fast recovery (a packet has
    /// left the network).
    fn on_dupack_in_recovery(&mut self);
    /// The `dupthresh`-th duplicate ACK arrived at `now`: reduce and enter
    /// fast recovery. `flight` is the outstanding data, packets.
    fn on_fast_retransmit(&mut self, now: SimTime, flight: u64);
    /// SACK-style recovery entry: reduce without dupack inflation (the
    /// pipe algorithm regulates transmissions instead).
    fn on_sack_retransmit(&mut self, now: SimTime, flight: u64);
    /// Retransmission timeout: collapse the window.
    fn on_timeout(&mut self, flight: u64);
    /// Recovery ended (the full ACK covering `recover` arrived).
    fn exit_recovery(&mut self);
    /// A Karn-valid RTT sample was taken. Default: ignored.
    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        let _ = rtt;
    }
    /// Writes the controller's mutable state (floats via `to_bits`).
    fn snapshot_into(&self, w: &mut SnapWriter);
    /// Reads state written by [`Self::snapshot_into`].
    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()>;
}

/// Reno implements the trait by delegating to its existing inherent
/// methods, so the arithmetic the paper models is stated exactly once
/// (in [`crate::reno::cwnd`]) and the trait seam adds no behaviour.
impl CongestionController for CongestionControl {
    #[inline]
    fn cwnd(&self) -> f64 {
        CongestionControl::cwnd(self)
    }
    #[inline]
    fn ssthresh(&self) -> f64 {
        CongestionControl::ssthresh(self)
    }
    #[inline]
    fn window(&self) -> u64 {
        CongestionControl::window(self)
    }
    #[inline]
    fn in_fast_recovery(&self) -> bool {
        CongestionControl::in_fast_recovery(self)
    }
    #[inline]
    fn in_slow_start(&self) -> bool {
        CongestionControl::in_slow_start(self)
    }
    #[inline]
    fn on_new_ack(&mut self, _now: SimTime) {
        CongestionControl::on_new_ack(self);
    }
    #[inline]
    fn on_dupack_in_recovery(&mut self) {
        CongestionControl::on_dupack_in_recovery(self);
    }
    #[inline]
    fn on_fast_retransmit(&mut self, _now: SimTime, flight: u64) {
        CongestionControl::on_fast_retransmit(self, flight);
    }
    #[inline]
    fn on_sack_retransmit(&mut self, _now: SimTime, flight: u64) {
        CongestionControl::on_sack_retransmit(self, flight);
    }
    #[inline]
    fn on_timeout(&mut self, flight: u64) {
        CongestionControl::on_timeout(self, flight);
    }
    #[inline]
    fn exit_recovery(&mut self) {
        CongestionControl::exit_recovery(self);
    }
    fn snapshot_into(&self, w: &mut SnapWriter) {
        CongestionControl::snapshot_into(self, w);
    }
    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        CongestionControl::restore_from(self, r)
    }
}

/// Which congestion-control algorithm a sender (or rounds-model flow)
/// runs. Orthogonal to [`crate::reno::sender::RenoStyle`], which selects
/// the *loss-recovery mechanics* (dupack vs SACK bookkeeping); this
/// selects the *window laws*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CcAlgorithm {
    /// RFC 5681 AIMD — the paper's protocol and the library default.
    #[default]
    Reno,
    /// RFC 6582: Reno laws plus partial-ACK window deflation.
    NewReno,
    /// RFC 8312 CUBIC: cube-root window growth around the last loss
    /// plateau, β = 0.7 multiplicative decrease, fast convergence.
    Cubic,
    /// Relentless congestion control (Diana & Lochin): on a fast
    /// retransmit the window shrinks by the number of lost segments
    /// instead of halving; timeouts still collapse to one.
    Relentless,
    /// Scalable TCP (Kelly 2003): MIMD — `+0.01` per ACK in congestion
    /// avoidance, `×7/8` on loss.
    Scalable,
}

impl CcAlgorithm {
    /// Every algorithm, in stable order (CI matrices, the atlas sweep).
    pub const ALL: [CcAlgorithm; 5] = [
        CcAlgorithm::Reno,
        CcAlgorithm::NewReno,
        CcAlgorithm::Cubic,
        CcAlgorithm::Relentless,
        CcAlgorithm::Scalable,
    ];

    /// Stable lower-case name (CLI/env values, file names, CI matrix keys).
    pub fn label(self) -> &'static str {
        match self {
            CcAlgorithm::Reno => "reno",
            CcAlgorithm::NewReno => "newreno",
            CcAlgorithm::Cubic => "cubic",
            CcAlgorithm::Relentless => "relentless",
            CcAlgorithm::Scalable => "scalable",
        }
    }

    /// Parses a [`Self::label`] value (case-insensitive).
    pub fn parse(s: &str) -> Option<CcAlgorithm> {
        match s.to_ascii_lowercase().as_str() {
            "reno" => Some(CcAlgorithm::Reno),
            "newreno" => Some(CcAlgorithm::NewReno),
            "cubic" => Some(CcAlgorithm::Cubic),
            "relentless" => Some(CcAlgorithm::Relentless),
            "scalable" => Some(CcAlgorithm::Scalable),
            _ => None,
        }
    }

    /// Reads the `PFTK_CC` environment variable (the CI variant-matrix
    /// knob). Unset → Reno; set to anything unparseable → panic, so a
    /// typo in a CI matrix fails loudly instead of silently testing Reno.
    pub fn from_env() -> CcAlgorithm {
        match std::env::var("PFTK_CC") {
            Ok(v) => match CcAlgorithm::parse(&v) {
                Some(algo) => algo,
                None => {
                    //~ allow(panic): a typoed CI matrix entry must fail loudly, not silently test Reno
                    panic!("PFTK_CC={v:?} is not one of reno|newreno|cubic|relentless|scalable")
                }
            },
            Err(_) => CcAlgorithm::default(),
        }
    }

    /// Stable numeric code used as a snapshot shape tag.
    pub fn tag(self) -> u64 {
        match self {
            CcAlgorithm::Reno => 0,
            CcAlgorithm::NewReno => 1,
            CcAlgorithm::Cubic => 2,
            CcAlgorithm::Relentless => 3,
            CcAlgorithm::Scalable => 4,
        }
    }
}

/// The monomorphized variant dispatch: one enum arm per algorithm, every
/// trait hook an `#[inline]` match — the [`crate::loss::LossKind`] idiom,
/// so the sender's per-ACK path never goes through a `dyn` call.
//= pftk#variant-envelope type=impl
#[derive(Debug, Clone)]
pub enum CcState {
    /// Plain Reno (the paper's protocol).
    Reno(CongestionControl),
    /// NewReno with partial-ACK deflation.
    NewReno(NewRenoCc),
    /// CUBIC.
    Cubic(CubicCc),
    /// Relentless.
    Relentless(RelentlessCc),
    /// Scalable TCP.
    Scalable(ScalableCc),
}

/// Forwards one `&self` accessor through the variant match.
macro_rules! cc_dispatch {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            CcState::Reno($inner) => $body,
            CcState::NewReno($inner) => $body,
            CcState::Cubic($inner) => $body,
            CcState::Relentless($inner) => $body,
            CcState::Scalable($inner) => $body,
        }
    };
}

impl CcState {
    /// Builds the selected algorithm's controller in its initial state.
    pub fn new(algo: CcAlgorithm, initial_cwnd: f64) -> CcState {
        match algo {
            CcAlgorithm::Reno => CcState::Reno(CongestionControl::new(initial_cwnd)),
            CcAlgorithm::NewReno => CcState::NewReno(NewRenoCc::new(initial_cwnd)),
            CcAlgorithm::Cubic => CcState::Cubic(CubicCc::new(initial_cwnd)),
            CcAlgorithm::Relentless => CcState::Relentless(RelentlessCc::new(initial_cwnd)),
            CcAlgorithm::Scalable => CcState::Scalable(ScalableCc::new(initial_cwnd)),
        }
    }

    /// Which algorithm this state belongs to.
    pub fn algorithm(&self) -> CcAlgorithm {
        match self {
            CcState::Reno(_) => CcAlgorithm::Reno,
            CcState::NewReno(_) => CcAlgorithm::NewReno,
            CcState::Cubic(_) => CcAlgorithm::Cubic,
            CcState::Relentless(_) => CcAlgorithm::Relentless,
            CcState::Scalable(_) => CcAlgorithm::Scalable,
        }
    }
}

impl CongestionController for CcState {
    #[inline]
    fn cwnd(&self) -> f64 {
        cc_dispatch!(self, c => c.cwnd())
    }
    #[inline]
    fn ssthresh(&self) -> f64 {
        cc_dispatch!(self, c => c.ssthresh())
    }
    #[inline]
    fn window(&self) -> u64 {
        cc_dispatch!(self, c => c.window())
    }
    #[inline]
    fn in_fast_recovery(&self) -> bool {
        cc_dispatch!(self, c => c.in_fast_recovery())
    }
    #[inline]
    fn in_slow_start(&self) -> bool {
        cc_dispatch!(self, c => c.in_slow_start())
    }
    // UFCS on the hooks whose trait signature differs from Reno's
    // inherent one, so the Reno arm resolves to the trait impl (which
    // delegates) instead of tripping over inherent-method precedence.
    #[inline]
    fn on_new_ack(&mut self, now: SimTime) {
        cc_dispatch!(self, c => CongestionController::on_new_ack(c, now));
    }
    #[inline]
    fn on_partial_ack(&mut self, newly_acked: u64) {
        cc_dispatch!(self, c => c.on_partial_ack(newly_acked));
    }
    #[inline]
    fn on_dupack_in_recovery(&mut self) {
        cc_dispatch!(self, c => c.on_dupack_in_recovery());
    }
    #[inline]
    fn on_fast_retransmit(&mut self, now: SimTime, flight: u64) {
        cc_dispatch!(self, c => CongestionController::on_fast_retransmit(c, now, flight));
    }
    #[inline]
    fn on_sack_retransmit(&mut self, now: SimTime, flight: u64) {
        cc_dispatch!(self, c => CongestionController::on_sack_retransmit(c, now, flight));
    }
    #[inline]
    fn on_timeout(&mut self, flight: u64) {
        cc_dispatch!(self, c => c.on_timeout(flight));
    }
    #[inline]
    fn exit_recovery(&mut self) {
        cc_dispatch!(self, c => c.exit_recovery());
    }
    #[inline]
    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        cc_dispatch!(self, c => c.on_rtt_sample(rtt));
    }
    fn snapshot_into(&self, w: &mut SnapWriter) {
        cc_dispatch!(self, c => c.snapshot_into(w));
    }
    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        cc_dispatch!(self, c => c.restore_from(r))
    }
}

/// The per-OS TCP quirk knobs the paper's §III/§IV measurements correct
/// for, gathered in one place so protocol code reads *quirks*, never host
/// identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quirks {
    /// Duplicate ACKs required for fast retransmit (Linux 2.0: 2; RFC: 3).
    pub dupthresh: u32,
    /// Exponential-backoff cap exponent (Irix: 5; the paper's 64·T0: 6).
    pub backoff_cap_exp: u32,
}

impl Default for Quirks {
    fn default() -> Self {
        Quirks {
            dupthresh: 3,
            backoff_cap_exp: 6,
        }
    }
}

/// Decorates any controller with per-OS quirk knobs: every window hook
/// forwards untouched, only [`CongestionController::dupthresh`] is
/// overridden. (The backoff cap is consumed by
/// [`crate::reno::rto::RtoConfig`] at configuration time — it is carried
/// here so one `Quirks` value describes a host completely.)
#[derive(Debug, Clone)]
pub struct Quirked<C> {
    inner: C,
    quirks: Quirks,
}

impl<C: CongestionController> Quirked<C> {
    /// Wraps `inner` with the given quirk knobs.
    pub fn new(inner: C, quirks: Quirks) -> Self {
        Quirked { inner, quirks }
    }

    /// The quirk knobs in force.
    pub fn quirks(&self) -> Quirks {
        self.quirks
    }

    /// The decorated controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Duplicate-ACK threshold (the decorated, per-OS value).
    pub fn dupthresh(&self) -> u32 {
        self.quirks.dupthresh
    }

    /// Integer usable window in packets (≥ 1).
    pub fn window(&self) -> u64 {
        self.inner.window()
    }

    /// Raw floating-point congestion window.
    pub fn cwnd(&self) -> f64 {
        self.inner.cwnd()
    }

    /// Current slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.inner.ssthresh()
    }

    /// True while in fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        self.inner.in_fast_recovery()
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.inner.in_slow_start()
    }
}

impl<C: CongestionController> CongestionController for Quirked<C> {
    #[inline]
    fn cwnd(&self) -> f64 {
        self.inner.cwnd()
    }
    #[inline]
    fn ssthresh(&self) -> f64 {
        self.inner.ssthresh()
    }
    #[inline]
    fn window(&self) -> u64 {
        self.inner.window()
    }
    #[inline]
    fn in_fast_recovery(&self) -> bool {
        self.inner.in_fast_recovery()
    }
    #[inline]
    fn in_slow_start(&self) -> bool {
        self.inner.in_slow_start()
    }
    #[inline]
    fn dupthresh(&self) -> u32 {
        self.quirks.dupthresh
    }
    #[inline]
    fn on_new_ack(&mut self, now: SimTime) {
        self.inner.on_new_ack(now);
    }
    #[inline]
    fn on_partial_ack(&mut self, newly_acked: u64) {
        self.inner.on_partial_ack(newly_acked);
    }
    #[inline]
    fn on_dupack_in_recovery(&mut self) {
        self.inner.on_dupack_in_recovery();
    }
    #[inline]
    fn on_fast_retransmit(&mut self, now: SimTime, flight: u64) {
        self.inner.on_fast_retransmit(now, flight);
    }
    #[inline]
    fn on_sack_retransmit(&mut self, now: SimTime, flight: u64) {
        self.inner.on_sack_retransmit(now, flight);
    }
    #[inline]
    fn on_timeout(&mut self, flight: u64) {
        self.inner.on_timeout(flight);
    }
    #[inline]
    fn exit_recovery(&mut self) {
        self.inner.exit_recovery();
    }
    #[inline]
    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        self.inner.on_rtt_sample(rtt);
    }
    fn snapshot_into(&self, w: &mut SnapWriter) {
        self.inner.snapshot_into(w);
    }
    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.inner.restore_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for algo in CcAlgorithm::ALL {
            assert_eq!(CcAlgorithm::parse(algo.label()), Some(algo));
            assert_eq!(CcState::new(algo, 1.0).algorithm(), algo);
        }
        assert_eq!(CcAlgorithm::parse("bbr"), None);
        assert_eq!(CcAlgorithm::parse("CUBIC"), Some(CcAlgorithm::Cubic));
    }

    #[test]
    fn tags_are_distinct() {
        let tags: std::collections::BTreeSet<u64> =
            CcAlgorithm::ALL.iter().map(|a| a.tag()).collect();
        assert_eq!(tags.len(), CcAlgorithm::ALL.len());
    }

    #[test]
    fn reno_behind_trait_matches_inherent_arithmetic() {
        // The trait seam must add nothing: drive the same event sequence
        // through the bare struct and the dispatch enum and compare state.
        let now = SimTime::ZERO;
        let mut bare = CongestionControl::new(1.0);
        let mut seam = CcState::new(CcAlgorithm::Reno, 1.0);
        for _ in 0..20 {
            bare.on_new_ack();
            CongestionController::on_new_ack(&mut seam, now);
        }
        bare.on_fast_retransmit(20);
        seam.on_fast_retransmit(now, 20);
        bare.on_dupack_in_recovery();
        seam.on_dupack_in_recovery();
        bare.on_new_ack();
        CongestionController::on_new_ack(&mut seam, now);
        bare.on_timeout(9);
        seam.on_timeout(9);
        assert_eq!(bare.cwnd().to_bits(), seam.cwnd().to_bits());
        assert_eq!(bare.ssthresh().to_bits(), seam.ssthresh().to_bits());
        assert_eq!(
            bare.in_fast_recovery(),
            CongestionController::in_fast_recovery(&seam)
        );
    }

    #[test]
    fn quirk_decorator_overrides_only_dupthresh() {
        let linux = Quirks {
            dupthresh: 2,
            backoff_cap_exp: 6,
        };
        let mut q = Quirked::new(CcState::new(CcAlgorithm::Reno, 1.0), linux);
        assert_eq!(q.dupthresh(), 2);
        assert_eq!(q.quirks(), linux);
        let mut bare = CongestionControl::new(1.0);
        for _ in 0..7 {
            bare.on_new_ack();
            CongestionController::on_new_ack(&mut q, SimTime::ZERO);
        }
        assert_eq!(q.cwnd().to_bits(), bare.cwnd().to_bits());
        assert_eq!(Quirks::default().dupthresh, 3);
        assert_eq!(Quirks::default().backoff_cap_exp, 6);
    }

    #[test]
    fn snapshot_round_trips_every_variant() {
        for algo in CcAlgorithm::ALL {
            let mut cc = CcState::new(algo, 1.0);
            let t = SimTime::from_secs_f64(1.0);
            for _ in 0..10 {
                cc.on_new_ack(t);
            }
            cc.on_fast_retransmit(t, 11);
            cc.on_dupack_in_recovery();
            let mut w = SnapWriter::with_capacity(64);
            cc.snapshot_into(&mut w);
            let bytes = w.into_bytes();
            let mut restored = CcState::new(algo, 1.0);
            let mut r = SnapReader::new(&bytes);
            restored.restore_from(&mut r).expect("restore");
            r.finish().expect("fully consumed");
            assert_eq!(cc.cwnd().to_bits(), restored.cwnd().to_bits(), "{algo:?}");
            assert_eq!(
                cc.ssthresh().to_bits(),
                restored.ssthresh().to_bits(),
                "{algo:?}"
            );
            assert_eq!(cc.window(), restored.window(), "{algo:?}");
        }
    }

    #[test]
    fn from_env_matches_environment() {
        // Must pass both locally (unset → Reno) and under the CI variant
        // matrix (PFTK_CC set); never mutate the env — tests run in
        // parallel.
        let expect = match std::env::var("PFTK_CC") {
            Ok(v) => CcAlgorithm::parse(&v).expect("PFTK_CC set but unparseable"),
            Err(_) => CcAlgorithm::Reno,
        };
        assert_eq!(CcAlgorithm::from_env(), expect);
    }
}
