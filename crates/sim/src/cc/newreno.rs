//! NewReno congestion control (RFC 6582).
//!
//! Identical to Reno's window laws except during recovery: a *partial*
//! ACK (one that advances `snd_una` without covering `recover`) deflates
//! the inflated window by the amount newly acknowledged and re-inflates
//! by one segment for the retransmission, keeping the estimate of data
//! in flight honest across multi-loss windows. Plain Reno ignores the
//! event entirely, which is what [`super::CongestionController`]'s no-op
//! default encodes.

use super::CongestionController;
use crate::time::SimTime;
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Floor for the slow-start threshold, packets (RFC 5681's `max(F/2, 2)`).
const MIN_SSTHRESH: f64 = 2.0;

/// NewReno controller state — Reno's three words plus nothing: the
/// `recover` mark that distinguishes full from partial ACKs lives in the
/// sender (it is sequence-space bookkeeping, not window state).
#[derive(Debug, Clone)]
pub struct NewRenoCc {
    cwnd: f64,
    ssthresh: f64,
    in_fast_recovery: bool,
}

impl NewRenoCc {
    /// Starts in slow start with the given initial window (packets).
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(
            initial_cwnd >= 1.0,
            "initial cwnd must be at least one segment"
        );
        NewRenoCc {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            in_fast_recovery: false,
        }
    }
}

impl CongestionController for NewRenoCc {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
    fn window(&self) -> u64 {
        (self.cwnd.floor() as u64).max(1) //~ allow(cast): deliberate float truncation after round/floor
    }
    fn in_fast_recovery(&self) -> bool {
        self.in_fast_recovery
    }
    fn in_slow_start(&self) -> bool {
        !self.in_fast_recovery && self.cwnd < self.ssthresh
    }

    /// Reno's growth law verbatim; the full-ACK recovery exit is driven
    /// by the sender through [`CongestionController::exit_recovery`].
    //= pftk#cwnd-linear-growth
    #[inline]
    fn on_new_ack(&mut self, _now: SimTime) {
        if self.in_fast_recovery {
            self.cwnd = self.ssthresh;
            self.in_fast_recovery = false;
        } else if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
    }

    /// RFC 6582 §3.2 step 5: deflate by the amount acknowledged, then add
    /// back one segment for the just-retransmitted hole.
    #[inline]
    fn on_partial_ack(&mut self, newly_acked: u64) {
        debug_assert!(self.in_fast_recovery);
        let acked = newly_acked as f64; //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = (self.cwnd - acked + 1.0).max(1.0);
    }

    #[inline]
    fn on_dupack_in_recovery(&mut self) {
        debug_assert!(self.in_fast_recovery);
        self.cwnd += 1.0;
    }

    //= pftk#cwnd-td-halve
    #[inline]
    fn on_fast_retransmit(&mut self, _now: SimTime, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(MIN_SSTHRESH); //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = self.ssthresh + 3.0;
        self.in_fast_recovery = true;
    }

    #[inline]
    fn on_sack_retransmit(&mut self, _now: SimTime, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(MIN_SSTHRESH); //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = true;
    }

    //= pftk#cwnd-to-collapse
    #[inline]
    fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(MIN_SSTHRESH); //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = 1.0;
        self.in_fast_recovery = false;
    }

    #[inline]
    fn exit_recovery(&mut self) {
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = false;
    }

    fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put_bool(self.in_fast_recovery);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.cwnd = r.get_f64()?;
        self.ssthresh = r.get_f64()?;
        self.in_fast_recovery = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reno::CongestionControl;

    const T: SimTime = SimTime::ZERO;

    #[test]
    fn matches_reno_outside_recovery() {
        let mut nr = NewRenoCc::new(1.0);
        let mut reno = CongestionControl::new(1.0);
        for _ in 0..25 {
            nr.on_new_ack(T);
            reno.on_new_ack();
        }
        nr.on_timeout(26);
        reno.on_timeout(26);
        for _ in 0..40 {
            nr.on_new_ack(T);
            reno.on_new_ack();
        }
        assert_eq!(nr.cwnd().to_bits(), reno.cwnd().to_bits());
        assert_eq!(nr.ssthresh().to_bits(), reno.ssthresh().to_bits());
    }

    #[test]
    fn partial_ack_deflates_and_readds_one() {
        let mut nr = NewRenoCc::new(1.0);
        for _ in 0..19 {
            nr.on_new_ack(T);
        }
        nr.on_fast_retransmit(T, 20); // ssthresh 10, cwnd 13
        assert_eq!(nr.cwnd(), 13.0);
        nr.on_partial_ack(5); // 13 − 5 + 1
        assert_eq!(nr.cwnd(), 9.0);
        assert!(nr.in_fast_recovery(), "partial ACK keeps recovery open");
        nr.exit_recovery();
        assert_eq!(nr.cwnd(), 10.0);
        assert!(!nr.in_fast_recovery());
    }

    #[test]
    fn partial_ack_deflation_floors_at_one() {
        let mut nr = NewRenoCc::new(4.0);
        nr.on_fast_retransmit(T, 4);
        nr.on_partial_ack(100);
        assert_eq!(nr.cwnd(), 1.0);
        assert_eq!(CongestionController::window(&nr), 1);
    }
}
