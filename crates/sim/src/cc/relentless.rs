//! Relentless congestion control (Diana & Lochin, "An Analytical Model of
//! TCP Relentless Congestion Control").
//!
//! A deliberately non-AIMD variant: on a fast retransmit the window is
//! reduced *by the number of segments lost* rather than halved, so a
//! single drop costs one segment of window instead of `W/2`. Timeouts
//! still collapse to one (the retransmission timer is unchanged), which
//! keeps the PFTK timeout term comparable while the TD term's
//! `√(3/2bp)`-shaped dependence disappears — the atlas shows the model
//! over-penalising Relentless everywhere the TD term dominates.
//!
//! In the sender's event vocabulary the per-loss decrement maps to: one
//! segment at recovery entry, plus one per additional hole repaired
//! (each partial ACK under NewReno-style recovery marks one more lost
//! segment).

use super::CongestionController;
use crate::time::SimTime;
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Floor the window never decreases below, packets (mirrors Reno's
/// ssthresh floor so the sender can always keep one retransmission and
/// one probe in flight).
const MIN_SSTHRESH: f64 = 2.0;

/// Relentless controller state.
#[derive(Debug, Clone)]
pub struct RelentlessCc {
    cwnd: f64,
    ssthresh: f64,
    in_fast_recovery: bool,
}

impl RelentlessCc {
    /// Starts in slow start with the given initial window (packets).
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(
            initial_cwnd >= 1.0,
            "initial cwnd must be at least one segment"
        );
        RelentlessCc {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            in_fast_recovery: false,
        }
    }
}

impl CongestionController for RelentlessCc {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
    fn window(&self) -> u64 {
        (self.cwnd.floor() as u64).max(1) //~ allow(cast): deliberate float truncation after round/floor
    }
    fn in_fast_recovery(&self) -> bool {
        self.in_fast_recovery
    }
    fn in_slow_start(&self) -> bool {
        !self.in_fast_recovery && self.cwnd < self.ssthresh
    }

    /// Reno's growth law verbatim — Relentless changes only the decrease.
    //= pftk#cwnd-linear-growth
    #[inline]
    fn on_new_ack(&mut self, _now: SimTime) {
        if self.in_fast_recovery {
            self.cwnd = self.ssthresh;
            self.in_fast_recovery = false;
        } else if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
    }

    /// Each partial ACK marks one more repaired hole: one more lost
    /// segment subtracted from the recovery exit point.
    #[inline]
    fn on_partial_ack(&mut self, _newly_acked: u64) {
        debug_assert!(self.in_fast_recovery);
        self.ssthresh = (self.ssthresh - 1.0).max(MIN_SSTHRESH);
    }

    #[inline]
    fn on_dupack_in_recovery(&mut self) {
        debug_assert!(self.in_fast_recovery);
        self.cwnd += 1.0;
    }

    /// Recovery entry: the exit window is `W − 1` (one known loss so
    /// far), not `W/2`; dupack inflation on top mirrors Reno mechanics.
    #[inline]
    fn on_fast_retransmit(&mut self, _now: SimTime, _flight: u64) {
        self.ssthresh = (self.cwnd - 1.0).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh + 3.0;
        self.in_fast_recovery = true;
    }

    /// SACK entry: same `W − 1` target without inflation (the pipe
    /// algorithm regulates transmissions).
    #[inline]
    fn on_sack_retransmit(&mut self, _now: SimTime, _flight: u64) {
        self.ssthresh = (self.cwnd - 1.0).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = true;
    }

    /// Timeouts are where Relentless stays conventional: collapse to one
    /// and slow-start back to half the flight.
    //= pftk#cwnd-to-collapse
    #[inline]
    fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(MIN_SSTHRESH); //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = 1.0;
        self.in_fast_recovery = false;
    }

    #[inline]
    fn exit_recovery(&mut self) {
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = false;
    }

    fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put_bool(self.in_fast_recovery);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.cwnd = r.get_f64()?;
        self.ssthresh = r.get_f64()?;
        self.in_fast_recovery = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimTime = SimTime::ZERO;

    #[test]
    fn single_loss_costs_one_segment() {
        let mut cc = RelentlessCc::new(1.0);
        for _ in 0..19 {
            cc.on_new_ack(T);
        }
        assert_eq!(CongestionController::window(&cc), 20);
        cc.on_fast_retransmit(T, 20);
        assert!(cc.in_fast_recovery());
        assert_eq!(cc.ssthresh(), 19.0, "W − 1, not W/2");
        cc.on_new_ack(T); // deflate
        assert_eq!(cc.cwnd(), 19.0);
    }

    #[test]
    fn each_repaired_hole_costs_another_segment() {
        let mut cc = RelentlessCc::new(10.0);
        cc.on_fast_retransmit(T, 10); // ssthresh 9
        cc.on_partial_ack(3);
        cc.on_partial_ack(2);
        assert_eq!(cc.ssthresh(), 7.0, "3 losses → W − 3");
        cc.exit_recovery();
        assert_eq!(cc.cwnd(), 7.0);
    }

    #[test]
    fn timeout_still_collapses_to_one() {
        let mut cc = RelentlessCc::new(1.0);
        for _ in 0..15 {
            cc.on_new_ack(T);
        }
        cc.on_timeout(16);
        assert_eq!(CongestionController::window(&cc), 1);
        assert_eq!(cc.ssthresh(), 8.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn decrease_floors_at_min_ssthresh() {
        let mut cc = RelentlessCc::new(2.0);
        cc.on_fast_retransmit(T, 2);
        assert_eq!(cc.ssthresh(), 2.0);
        cc.on_partial_ack(1);
        assert_eq!(cc.ssthresh(), 2.0);
    }
}
