//! # tcp-sim
//!
//! Deterministic, sans-I/O simulators of a bulk-transfer TCP Reno flow —
//! the experimental substrate for validating the PFTK model
//! (`pftk-model`), replacing the real 1997 Internet hosts of the paper's
//! measurement study.
//!
//! Two simulators, different fidelity/abstraction trade-offs:
//!
//! * [`connection::Connection`] — a **packet-level discrete-event TCP Reno
//!   implementation**: slow start, congestion avoidance, fast
//!   retransmit/recovery, SRTT/RTTVAR + Karn RTO estimation with
//!   exponential backoff, delayed ACKs, receiver window, plus path models
//!   with jitter and rate-limited bottleneck queues (drop-tail or RED).
//!   Per-OS quirks of §IV (Linux dupthresh = 2, Irix backoff cap `2^5`) are
//!   configuration knobs.
//! * [`rounds::RoundsSim`] — the **paper's §II model assumptions executed
//!   literally** (rounds, intra-round-correlated loss, the Fig. 4
//!   penultimate/last-round TD-vs-TO rule, geometric timeout sequences);
//!   its long-run send rate converges to Eq. (32) and its sample paths
//!   regenerate the paper's Figs. 1/3/5/6.
//!
//! [`fleet`] scales the rounds model to populations: SoA flow arenas and
//! per-shard event wheels run 10^5–10^6 concurrent flows with
//! deterministic, shard-count-independent per-flow seeding, for
//! distributional validation of Eq. (32) at each `(p, RTT, T0, W_m)`
//! grid point.
//!
//! Everything is seeded and deterministic: a run is a pure function of its
//! configuration, per the sans-I/O design idiom (no sockets, no async
//! runtime — this workload is CPU-bound simulation).
//!
//! ```
//! use tcp_sim::connection::Connection;
//! use tcp_sim::loss::Bernoulli;
//! use tcp_sim::time::SimDuration;
//!
//! let mut conn = Connection::builder()
//!     .rtt(0.1)
//!     .loss(Box::new(Bernoulli::new(0.02)))
//!     .seed(42)
//!     .build();
//! conn.run_for(SimDuration::from_secs_f64(60.0));
//! conn.finish();
//! let stats = conn.stats();
//! assert!(stats.packets_sent > 0);
//! assert!(stats.loss_indications() > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cc;
pub mod connection;
pub mod event;
pub mod fault;
pub mod fleet;
pub mod link;
pub mod loss;
pub mod network;
pub mod packet;
pub mod queue;
pub mod receiver;
pub mod reno;
pub mod rng;
pub mod rounds;
pub mod stats;
pub mod tfrc;
pub mod time;

pub use cc::{CcAlgorithm, CcState, CongestionController, Quirked, Quirks, RoundCc};
pub use connection::{Connection, Observer};
pub use fault::{FaultPlan, Impairment};
pub use fleet::{FleetCohort, FleetShard, FleetSpec, FlowStats, WheelConfig};
pub use rounds::{RoundsConfig, RoundsSim};
pub use stats::ConnStats;
pub use time::{SimDuration, SimTime};
