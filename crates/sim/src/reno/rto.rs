//! Retransmission-timeout estimation: Jacobson/Karels SRTT/RTTVAR with
//! Karn's algorithm (handled by the sender: no samples from retransmitted
//! segments) and exponential backoff capped at `2^max_backoff_exp · RTO`
//! (the paper's `64·T0` for the default exponent cap of 6; §IV notes Irix
//! caps at `2^5`, which [`RtoConfig::backoff_cap_exp`] can express).

use crate::time::SimDuration;
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Tunables of the timeout machinery.
#[derive(Debug, Clone, Copy)]
pub struct RtoConfig {
    /// Timer granularity; the computed RTO is rounded up to a multiple of
    /// this (classic BSD stacks used 500 ms ticks).
    pub granularity: SimDuration,
    /// Lower clamp on the base (unbacked-off) RTO.
    pub min_rto: SimDuration,
    /// Upper clamp on the *backed-off* RTO.
    pub max_rto: SimDuration,
    /// RTO before any RTT sample exists (RFC 6298 says 1 s; older stacks 3 s).
    pub initial_rto: SimDuration,
    /// Backoff exponent cap: the backed-off RTO is `base · 2^min(n, cap)`.
    /// 6 reproduces the paper's `64·T0` ceiling; 5 the Irix quirk.
    pub backoff_cap_exp: u32,
}

impl Default for RtoConfig {
    fn default() -> Self {
        RtoConfig {
            granularity: SimDuration::from_millis(100),
            // RFC 6298 §2.4: "Whenever RTO is computed, if it is less than
            // 1 second, then the RTO SHOULD be rounded up to 1 second" —
            // in part so a delayed-ACK hold (up to 500 ms) cannot fire a
            // spurious timeout.
            min_rto: SimDuration::from_secs_f64(1.0),
            max_rto: SimDuration::from_secs_f64(240.0),
            initial_rto: SimDuration::from_secs_f64(3.0),
            backoff_cap_exp: 6,
        }
    }
}

/// SRTT/RTTVAR estimator plus backoff state.
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    config: RtoConfig,
    /// Smoothed RTT, seconds.
    srtt: Option<f64>,
    /// RTT variation, seconds.
    rttvar: f64,
    backoff_exp: u32,
    /// Diagnostics: sum/count of base RTOs sampled at the first firing of
    /// each timeout sequence — the simulator's ground-truth `T0`.
    t0_sum: f64,
    t0_count: u64,
    /// Diagnostics: sum/count of raw RTT samples (ground-truth mean RTT).
    rtt_sum: f64,
    rtt_count: u64,
}

impl RtoEstimator {
    /// A fresh estimator with no samples.
    pub fn new(config: RtoConfig) -> Self {
        RtoEstimator {
            config,
            srtt: None,
            rttvar: 0.0,
            backoff_exp: 0,
            t0_sum: 0.0,
            t0_count: 0,
            rtt_sum: 0.0,
            rtt_count: 0,
        }
    }

    /// Writes the estimator's mutable state (samples, backoff, ground-truth
    /// accumulators); the config is restore-side shape.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        match self.srtt {
            Some(v) => {
                w.put_bool(true);
                w.put_f64(v);
            }
            None => w.put_bool(false),
        }
        w.put_f64(self.rttvar);
        w.put_u32(self.backoff_exp);
        w.put_f64(self.t0_sum);
        w.put_u64(self.t0_count);
        w.put_f64(self.rtt_sum);
        w.put_u64(self.rtt_count);
    }

    /// Reads state written by [`Self::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.srtt = if r.get_bool()? {
            Some(r.get_f64()?)
        } else {
            None
        };
        self.rttvar = r.get_f64()?;
        self.backoff_exp = r.get_u32()?;
        self.t0_sum = r.get_f64()?;
        self.t0_count = r.get_u64()?;
        self.rtt_sum = r.get_f64()?;
        self.rtt_count = r.get_u64()?;
        Ok(())
    }

    /// Feeds one RTT measurement (from a never-retransmitted segment, per
    /// Karn). RFC 6298 update: first sample sets `SRTT = R`,
    /// `RTTVAR = R/2`; later samples use gains 1/8 and 1/4.
    pub fn on_rtt_sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs_f64();
        self.rtt_sum += r;
        self.rtt_count += 1;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
    }

    /// The base (unbacked-off) RTO: `SRTT + max(G, 4·RTTVAR)`, rounded up to
    /// the granularity and clamped to `[min_rto, max_rto]`. This is what the
    /// paper's `T0` measures (the duration of a *single* timeout).
    pub fn base_rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.config.initial_rto,
            Some(srtt) => {
                let g = self.config.granularity.as_secs_f64();
                SimDuration::from_secs_f64(srtt + (4.0 * self.rttvar).max(g))
            }
        };
        let g = self.config.granularity.as_nanos().max(1);
        let rounded = SimDuration::from_nanos(base.as_nanos().div_ceil(g) * g);
        rounded.max(self.config.min_rto).min(self.config.max_rto)
    }

    /// The RTO to arm right now, including exponential backoff.
    //= pftk#rto-backoff
    pub fn current_rto(&self) -> SimDuration {
        let capped_exp = self.backoff_exp.min(self.config.backoff_cap_exp);
        self.base_rto()
            .saturating_mul(1u64 << capped_exp)
            .min(self.config.max_rto)
    }

    /// The timer fired: double (up to the cap). Records the ground-truth
    /// `T0` at the start of a timeout sequence.
    pub fn on_timeout(&mut self) {
        if self.backoff_exp == 0 {
            self.t0_sum += self.base_rto().as_secs_f64();
            self.t0_count += 1;
        }
        self.backoff_exp = (self.backoff_exp + 1).min(self.config.backoff_cap_exp + 1);
    }

    /// Forward progress (a new ACK): backoff resets.
    pub fn on_progress(&mut self) {
        self.backoff_exp = 0;
    }

    /// Current backoff exponent (0 = no backoff).
    pub fn backoff_exp(&self) -> u32 {
        self.backoff_exp
    }

    /// Ground truth: mean of the base RTO at the first firing of each
    /// timeout sequence (the simulator-side analogue of Table II's "Time
    /// Out" column). `None` before any timeout.
    pub fn mean_t0(&self) -> Option<f64> {
        (self.t0_count > 0).then(|| self.t0_sum / self.t0_count as f64) //~ allow(cast): integer count to f64, exact below 2^53
    }

    /// Ground truth: mean raw RTT sample. `None` before any sample.
    pub fn mean_rtt(&self) -> Option<f64> {
        (self.rtt_count > 0).then(|| self.rtt_sum / self.rtt_count as f64) //~ allow(cast): integer count to f64, exact below 2^53
    }

    /// Smoothed RTT, if at least one sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(v: f64) -> SimDuration {
        SimDuration::from_secs_f64(v)
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = RtoEstimator::new(RtoConfig::default());
        assert_eq!(e.base_rto(), secs(3.0));
    }

    /// A config whose floor is low enough to expose the raw estimator
    /// arithmetic (the RFC 6298 default floor of 1 s would mask it).
    fn low_floor() -> RtoConfig {
        RtoConfig {
            min_rto: SimDuration::from_millis(100),
            ..RtoConfig::default()
        }
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RtoEstimator::new(low_floor());
        e.on_rtt_sample(secs(0.2));
        // SRTT=0.2, RTTVAR=0.1 → RTO = 0.2 + 0.4 = 0.6, granularity-aligned.
        assert_eq!(e.base_rto(), secs(0.6));
    }

    #[test]
    fn rfc6298_floor_applies_by_default() {
        let mut e = RtoEstimator::new(RtoConfig::default());
        for _ in 0..200 {
            e.on_rtt_sample(secs(0.05));
        }
        assert_eq!(e.base_rto(), secs(1.0), "default floor is RFC 6298's 1 s");
    }

    #[test]
    fn constant_rtt_converges_to_srtt_plus_granularity() {
        let mut e = RtoEstimator::new(low_floor());
        for _ in 0..200 {
            e.on_rtt_sample(secs(0.2));
        }
        // RTTVAR → 0, so RTO → SRTT + G = 0.3, rounded up to 100 ms grid.
        assert_eq!(e.base_rto(), secs(0.3));
        assert!((e.srtt().unwrap().as_secs_f64() - 0.2).abs() < 1e-9);
    }

    #[test]
    //= pftk#rto-backoff type=test
    fn backoff_doubles_then_caps_at_64x() {
        let mut e = RtoEstimator::new(RtoConfig::default());
        for _ in 0..200 {
            e.on_rtt_sample(secs(0.2));
        }
        let base = e.base_rto().as_secs_f64();
        let mut expected = vec![];
        for k in 0..9 {
            expected.push((base * f64::from(1u32 << k.min(6))).min(240.0));
            // current_rto BEFORE k-th firing uses exponent k.
            let got = e.current_rto().as_secs_f64();
            assert!((got - expected[k as usize]).abs() < 1e-9, "k={k}: {got}");
            e.on_timeout();
        }
        // 64× cap reached and held.
        assert!((e.current_rto().as_secs_f64() - base * 64.0).abs() < 1e-9);
    }

    #[test]
    fn irix_quirk_caps_at_32x() {
        let config = RtoConfig {
            backoff_cap_exp: 5,
            ..RtoConfig::default()
        };
        let mut e = RtoEstimator::new(config);
        for _ in 0..200 {
            e.on_rtt_sample(secs(0.2));
        }
        let base = e.base_rto().as_secs_f64();
        for _ in 0..10 {
            e.on_timeout();
        }
        assert!((e.current_rto().as_secs_f64() - base * 32.0).abs() < 1e-9);
    }

    #[test]
    fn progress_resets_backoff() {
        let mut e = RtoEstimator::new(RtoConfig::default());
        e.on_timeout();
        e.on_timeout();
        assert_eq!(e.backoff_exp(), 2);
        e.on_progress();
        assert_eq!(e.backoff_exp(), 0);
    }

    #[test]
    fn ground_truth_t0_only_counts_sequence_starts() {
        let mut e = RtoEstimator::new(RtoConfig::default());
        e.on_rtt_sample(secs(0.2));
        e.on_timeout(); // sequence 1 starts (records T0)
        e.on_timeout(); // backoff — not a new sequence
        e.on_progress();
        e.on_timeout(); // sequence 2 starts
        assert_eq!(e.t0_count, 2);
        assert!((e.mean_t0().unwrap() - e.base_rto().as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn mean_rtt_ground_truth() {
        let mut e = RtoEstimator::new(RtoConfig::default());
        assert!(e.mean_rtt().is_none());
        e.on_rtt_sample(secs(0.1));
        e.on_rtt_sample(secs(0.3));
        assert!((e.mean_rtt().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn min_rto_clamp() {
        let config = RtoConfig {
            min_rto: SimDuration::from_secs_f64(1.0),
            ..RtoConfig::default()
        };
        let mut e = RtoEstimator::new(config);
        for _ in 0..100 {
            e.on_rtt_sample(secs(0.01));
        }
        assert_eq!(e.base_rto(), secs(1.0));
    }

    #[test]
    fn variance_widens_rto() {
        let mut stable = RtoEstimator::new(low_floor());
        let mut noisy = RtoEstimator::new(low_floor());
        for i in 0..100 {
            stable.on_rtt_sample(secs(0.2));
            noisy.on_rtt_sample(secs(if i % 2 == 0 { 0.1 } else { 0.3 }));
        }
        assert!(noisy.base_rto() > stable.base_rto());
    }
}
