//! TCP Reno sender-side machinery: congestion control, timeout estimation,
//! and the sans-I/O sender state machine.

pub mod cwnd;
pub mod rto;
pub mod sender;

pub use cwnd::CongestionControl;
pub use rto::{RtoConfig, RtoEstimator};
pub use sender::{Sender, SenderConfig, SenderOutput, TimerCmd};
