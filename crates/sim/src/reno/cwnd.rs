//! Reno congestion-window dynamics.
//!
//! Pure state machine: slow start, congestion avoidance (+1/W per ACK — the
//! paper's §II growth law), fast retransmit/fast recovery (halve + inflate),
//! and timeout collapse to one packet. The sender drives it with ACK-level
//! events; it never touches the clock or the network.

use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Reno congestion-control state.
#[derive(Debug, Clone)]
pub struct CongestionControl {
    cwnd: f64,
    ssthresh: f64,
    in_fast_recovery: bool,
}

/// Floor for the slow-start threshold, in packets (RFC 5681's `max(F/2, 2)`).
const MIN_SSTHRESH: f64 = 2.0;

impl CongestionControl {
    /// Starts in slow start with the given initial window (packets) and an
    /// effectively unlimited threshold.
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(
            initial_cwnd >= 1.0,
            "initial cwnd must be at least one segment"
        );
        CongestionControl {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            in_fast_recovery: false,
        }
    }

    /// Integer usable window in packets (≥ 1).
    pub fn window(&self) -> u64 {
        (self.cwnd.floor() as u64).max(1) //~ allow(cast): deliberate float truncation after round/floor
    }

    /// Raw floating-point congestion window.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// True while in fast recovery (between a triple-duplicate and the next
    /// new ACK).
    pub fn in_fast_recovery(&self) -> bool {
        self.in_fast_recovery
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        !self.in_fast_recovery && self.cwnd < self.ssthresh
    }

    /// Writes the full congestion state (floats via `to_bits`, so
    /// `ssthresh = ∞` round-trips exactly).
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put_bool(self.in_fast_recovery);
    }

    /// Reads state written by [`Self::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.cwnd = r.get_f64()?;
        self.ssthresh = r.get_f64()?;
        self.in_fast_recovery = r.get_bool()?;
        Ok(())
    }

    /// An ACK advancing `snd_una` arrived. Exits fast recovery (plain Reno
    /// deflates to `ssthresh` on the first new ACK), or grows the window:
    /// +1 per ACK in slow start, +1/W per ACK in congestion avoidance.
    //= pftk#cwnd-linear-growth
    pub fn on_new_ack(&mut self) {
        if self.in_fast_recovery {
            self.cwnd = self.ssthresh;
            self.in_fast_recovery = false;
        } else if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
    }

    /// The `dupthresh`-th duplicate ACK arrived: fast retransmit. Halves the
    /// window into `ssthresh` and inflates by the three duplicates
    /// (RFC 5681 §3.2). `flight` is the amount of outstanding data.
    //= pftk#cwnd-td-halve
    pub fn on_fast_retransmit(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(MIN_SSTHRESH); //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = self.ssthresh + 3.0;
        self.in_fast_recovery = true;
    }

    /// A further duplicate ACK during fast recovery inflates the window by
    /// one segment (a packet has left the network).
    pub fn on_dupack_in_recovery(&mut self) {
        debug_assert!(self.in_fast_recovery);
        self.cwnd += 1.0;
    }

    /// Retransmission timeout: collapse to one segment and re-enter slow
    /// start ("following a time-out, the congestion window is reduced to
    /// one", §II-B). Also the Tahoe reaction to a triple-duplicate (Tahoe
    /// has no fast recovery: any loss collapses the window).
    //= pftk#cwnd-to-collapse
    pub fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(MIN_SSTHRESH); //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = 1.0;
        self.in_fast_recovery = false;
    }

    /// SACK-style recovery entry: halve without the +3 inflation (the SACK
    /// pipe algorithm regulates transmissions instead of window inflation).
    pub fn on_sack_retransmit(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(MIN_SSTHRESH); //~ allow(cast): integer count to f64, exact below 2^53
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = true;
    }

    /// Explicit recovery exit for NewReno/SACK (on the full ACK covering
    /// `recover`): deflate to the slow-start threshold.
    pub fn exit_recovery(&mut self) {
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_slow_start() {
        let cc = CongestionControl::new(1.0);
        assert!(cc.in_slow_start());
        assert_eq!(cc.window(), 1);
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = CongestionControl::new(1.0);
        // Each ACK adds a full segment: after W ACKs the window has doubled.
        cc.on_new_ack();
        assert_eq!(cc.window(), 2);
        cc.on_new_ack();
        cc.on_new_ack();
        assert_eq!(cc.window(), 4);
    }

    #[test]
    //= pftk#cwnd-linear-growth type=test
    fn congestion_avoidance_grows_one_per_window() {
        let mut cc = CongestionControl::new(10.0);
        // Force CA by setting a low threshold via a timeout + regrowth.
        cc.on_timeout(10); // ssthresh = 5, cwnd = 1
        for _ in 0..4 {
            cc.on_new_ack(); // slow start to 5
        }
        assert!(!cc.in_slow_start());
        let w0 = cc.cwnd();
        // W ACKs in CA should add ~1 segment total.
        let w = cc.window();
        for _ in 0..w {
            cc.on_new_ack();
        }
        let grown = cc.cwnd() - w0;
        assert!((grown - 1.0).abs() < 0.2, "grew {grown} per window");
    }

    #[test]
    //= pftk#cwnd-td-halve type=test
    fn fast_retransmit_halves_and_inflates() {
        let mut cc = CongestionControl::new(1.0);
        for _ in 0..19 {
            cc.on_new_ack();
        }
        assert_eq!(cc.window(), 20);
        cc.on_fast_retransmit(20);
        assert!(cc.in_fast_recovery());
        assert_eq!(cc.ssthresh(), 10.0);
        assert_eq!(cc.window(), 13); // ssthresh + 3 dupacks
        cc.on_dupack_in_recovery();
        assert_eq!(cc.window(), 14);
        cc.on_new_ack(); // deflate
        assert!(!cc.in_fast_recovery());
        assert_eq!(cc.window(), 10);
    }

    #[test]
    //= pftk#cwnd-to-collapse type=test
    fn timeout_collapses_to_one() {
        let mut cc = CongestionControl::new(1.0);
        for _ in 0..15 {
            cc.on_new_ack();
        }
        cc.on_timeout(16);
        assert_eq!(cc.window(), 1);
        assert_eq!(cc.ssthresh(), 8.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn ssthresh_floor_is_two() {
        let mut cc = CongestionControl::new(1.0);
        cc.on_timeout(1);
        assert_eq!(cc.ssthresh(), 2.0);
        cc.on_fast_retransmit(2);
        assert_eq!(cc.ssthresh(), 2.0);
    }

    #[test]
    fn window_never_below_one() {
        let mut cc = CongestionControl::new(1.0);
        cc.on_timeout(0);
        assert_eq!(cc.window(), 1);
    }

    #[test]
    fn sack_entry_halves_without_inflation() {
        let mut cc = CongestionControl::new(1.0);
        for _ in 0..19 {
            cc.on_new_ack();
        }
        cc.on_sack_retransmit(20);
        assert!(cc.in_fast_recovery());
        assert_eq!(cc.window(), 10, "no +3 inflation under SACK");
        cc.exit_recovery();
        assert!(!cc.in_fast_recovery());
        assert_eq!(cc.window(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_initial_cwnd_rejected() {
        let _ = CongestionControl::new(0.0);
    }
}
