//! The TCP Reno sender state machine (sans-I/O).
//!
//! The sender never touches the event queue or the paths: each input event
//! (`on_start`, `on_ack`, `on_rto_fired`) returns a [`SenderOutput`] listing
//! the segments to transmit and what to do with the retransmission timer.
//! The connection layer turns those into scheduled events. This keeps the
//! protocol logic purely functional over its own state and unit-testable
//! without a network.

use crate::cc::{CcAlgorithm, CcState, CongestionController, Quirked, Quirks};
use crate::packet::{Ack, Segment, Seq};
use crate::reno::rto::{RtoConfig, RtoEstimator};
use crate::stats::ConnStats;
use crate::time::SimTime;
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Which loss-recovery algorithm the sender runs. The paper models
/// **Reno**; the other variants exist for the ref-\[3\]-style comparison
/// ("Simulation-based comparisons of Tahoe, Reno, and SACK TCP") and to
/// quantify how far each deviates from the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RenoStyle {
    /// No fast recovery: any loss (dupacks or timeout) collapses the window
    /// to one and slow-starts (§IV notes SunOS TCP was Tahoe-derived).
    Tahoe,
    /// RFC 5681 fast retransmit/fast recovery — the paper's protocol.
    #[default]
    Reno,
    /// RFC 6582: partial ACKs retransmit the next hole without leaving
    /// recovery, so a multi-loss window costs one window reduction.
    NewReno,
    /// RFC 2018 selective acknowledgments with a pipe-driven recovery
    /// (requires a SACK-enabled receiver).
    Sack,
}

/// What the connection layer should do with the RTO timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerCmd {
    /// Leave the timer as it is.
    Keep,
    /// (Re)arm the timer to fire at the given instant, cancelling any
    /// earlier deadline.
    Arm(SimTime),
}

/// The sender's reaction to an input event.
///
/// The `*_into` event entry points fill a caller-owned instance, so a hot
/// loop reuses one allocation for the whole run; see [`SenderOutput::reset`].
#[derive(Debug, Clone)]
pub struct SenderOutput {
    /// Segments to put on the wire, in order.
    pub segments: Vec<Segment>,
    /// Timer instruction.
    pub timer: TimerCmd,
}

impl Default for SenderOutput {
    fn default() -> Self {
        SenderOutput {
            segments: Vec::new(),
            timer: TimerCmd::Keep,
        }
    }
}

impl SenderOutput {
    /// Empties the output for reuse, keeping the segment buffer's capacity.
    pub fn reset(&mut self) {
        self.segments.clear();
        self.timer = TimerCmd::Keep;
    }
}

/// Tunables of the sender.
#[derive(Debug, Clone, Copy)]
pub struct SenderConfig {
    /// Receiver's advertised window, packets (the paper's `W_m`).
    pub rwnd: u32,
    /// Duplicate ACKs required to trigger fast retransmit: 3 per RFC 5681;
    /// 2 reproduces the Linux behaviour §III corrects for.
    pub dupthresh: u32,
    /// Initial congestion window, packets.
    pub initial_cwnd: f64,
    /// Timeout machinery settings.
    pub rto: RtoConfig,
    /// Amount of data to transfer, in packets. `None` is the paper's
    /// "infinite source"; `Some(n)` models a finite transfer (an HTTP
    /// response, say) — the flow completes when packet `n − 1` is acked.
    pub data_limit: Option<u64>,
    /// Loss-recovery algorithm (default: Reno, the paper's protocol).
    pub style: RenoStyle,
    /// Congestion-control window laws (default: Reno). Orthogonal to
    /// `style`: `style` picks the recovery *mechanics* (dupack vs SACK
    /// bookkeeping), `cc` picks how the window reacts to those events.
    pub cc: CcAlgorithm,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            rwnd: u32::from(u16::MAX),
            dupthresh: 3,
            initial_cwnd: 1.0,
            rto: RtoConfig::default(),
            data_limit: None,
            style: RenoStyle::Reno,
            cc: CcAlgorithm::Reno,
        }
    }
}

/// A bulk-transfer ("infinite source", §III) TCP Reno sender.
//= pftk#infinite-source
#[derive(Debug)]
pub struct Sender {
    config: SenderConfig,
    /// Oldest unacknowledged sequence number.
    snd_una: Seq,
    /// Next new sequence number to send.
    snd_nxt: Seq,
    /// The pluggable congestion controller, decorated with the per-OS
    /// quirk knobs so the protocol code below never reads host identity.
    cc: Quirked<CcState>,
    rto: RtoEstimator,
    dupacks: u32,
    /// RTT timing in progress: (sequence, send time). Karn: discarded if
    /// that sequence is retransmitted.
    timed: Option<(Seq, SimTime)>,
    /// Consecutive RTO firings without forward progress (current timeout-
    /// sequence length).
    to_run: u32,
    /// When the final packet of a finite transfer was acked.
    completed_at: Option<SimTime>,
    /// NewReno/SACK: highest sequence outstanding when recovery began; the
    /// recovery ends when `snd_una` passes it (RFC 6582's `recover`).
    recover: Seq,
    /// SACK scoreboard: sequences above `snd_una` the receiver reported.
    scoreboard: std::collections::BTreeSet<Seq>,
    /// Holes already retransmitted during the current recovery episode.
    rexmitted: std::collections::BTreeSet<Seq>,
    /// Ground-truth counters.
    pub stats: ConnStats,
}

impl Sender {
    /// A fresh sender about to transmit sequence 0.
    pub fn new(config: SenderConfig) -> Self {
        Sender {
            snd_una: 0,
            snd_nxt: 0,
            cc: Quirked::new(
                CcState::new(config.cc, config.initial_cwnd),
                Quirks {
                    dupthresh: config.dupthresh,
                    backoff_cap_exp: config.rto.backoff_cap_exp,
                },
            ),
            rto: RtoEstimator::new(config.rto),
            dupacks: 0,
            timed: None,
            to_run: 0,
            completed_at: None,
            recover: 0,
            scoreboard: std::collections::BTreeSet::new(),
            rexmitted: std::collections::BTreeSet::new(),
            stats: ConnStats::default(),
            config,
        }
    }

    /// For a finite transfer: when the last packet was acknowledged.
    /// Always `None` for the infinite source.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// True once a finite transfer has been fully acknowledged.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Outstanding (unacknowledged) packets.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// The usable window: `min(cwnd, rwnd)`.
    pub fn usable_window(&self) -> u64 {
        self.cc.window().min(u64::from(self.config.rwnd))
    }

    /// Read-only view of the congestion controller (quirk-decorated).
    pub fn congestion(&self) -> &Quirked<CcState> {
        &self.cc
    }

    /// Read-only view of the RTO estimator (ground-truth RTT/T0 diagnostics).
    pub fn rto_estimator(&self) -> &RtoEstimator {
        &self.rto
    }

    /// Oldest unacknowledged sequence number.
    pub fn snd_una(&self) -> Seq {
        self.snd_una
    }

    /// Next fresh sequence number.
    pub fn snd_nxt(&self) -> Seq {
        self.snd_nxt
    }

    /// Stable numeric code for the recovery style, used as a snapshot
    /// shape tag.
    fn style_tag(style: RenoStyle) -> u64 {
        match style {
            RenoStyle::Tahoe => 0,
            RenoStyle::Reno => 1,
            RenoStyle::NewReno => 2,
            RenoStyle::Sack => 3,
        }
    }

    /// Writes the sender's mutable state. Config fields contribute shape
    /// tags only: restore requires an identically-configured sender.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_tag(Self::style_tag(self.config.style));
        w.put_tag(self.config.cc.tag());
        w.put_tag(u64::from(self.config.rwnd));
        w.put_tag(u64::from(self.config.dupthresh));
        w.put_u64(self.snd_una);
        w.put_u64(self.snd_nxt);
        self.cc.snapshot_into(w);
        self.rto.snapshot_into(w);
        w.put_u32(self.dupacks);
        match self.timed {
            Some((seq, at)) => {
                w.put_bool(true);
                w.put_u64(seq);
                w.put_u64(at.as_nanos());
            }
            None => w.put_bool(false),
        }
        w.put_u32(self.to_run);
        match self.completed_at {
            Some(at) => {
                w.put_bool(true);
                w.put_u64(at.as_nanos());
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.recover);
        // BTreeSet iteration is ascending, so the byte encoding is a pure
        // function of the set's contents.
        w.put_usize(self.scoreboard.len());
        for seq in &self.scoreboard {
            w.put_u64(*seq);
        }
        w.put_usize(self.rexmitted.len());
        for seq in &self.rexmitted {
            w.put_u64(*seq);
        }
        self.stats.snapshot_into(w);
    }

    /// Reads state written by [`Self::snapshot_into`]; fails with a
    /// tag mismatch if this sender's config differs from the snapshotted one.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.expect_tag("sender-style", Self::style_tag(self.config.style))?;
        r.expect_tag("sender-cc", self.config.cc.tag())?;
        r.expect_tag("sender-rwnd", u64::from(self.config.rwnd))?;
        r.expect_tag("sender-dupthresh", u64::from(self.config.dupthresh))?;
        self.snd_una = r.get_u64()?;
        self.snd_nxt = r.get_u64()?;
        self.cc.restore_from(r)?;
        self.rto.restore_from(r)?;
        self.dupacks = r.get_u32()?;
        self.timed = if r.get_bool()? {
            let seq = r.get_u64()?;
            let at = SimTime::from_nanos(r.get_u64()?);
            Some((seq, at))
        } else {
            None
        };
        self.to_run = r.get_u32()?;
        self.completed_at = if r.get_bool()? {
            Some(SimTime::from_nanos(r.get_u64()?))
        } else {
            None
        };
        self.recover = r.get_u64()?;
        self.scoreboard.clear();
        for _ in 0..r.get_usize()? {
            self.scoreboard.insert(r.get_u64()?);
        }
        self.rexmitted.clear();
        for _ in 0..r.get_usize()? {
            self.rexmitted.insert(r.get_u64()?);
        }
        self.stats.restore_from(r)
    }

    /// Kicks the connection off at time `now`: sends the initial window and
    /// arms the timer.
    pub fn on_start(&mut self, now: SimTime) -> SenderOutput {
        let mut out = SenderOutput::default();
        self.on_start_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`Sender::on_start`]: resets and fills
    /// the caller-owned `out`.
    pub fn on_start_into(&mut self, now: SimTime, out: &mut SenderOutput) {
        out.reset();
        self.fill_window(now, out);
        out.timer = TimerCmd::Arm(now + self.rto.current_rto());
    }

    /// Processes an arriving cumulative ACK.
    pub fn on_ack(&mut self, now: SimTime, ack: Ack) -> SenderOutput {
        let mut out = SenderOutput::default();
        self.on_ack_into(now, ack, &mut out);
        out
    }

    /// Allocation-free form of [`Sender::on_ack`]: resets and fills the
    /// caller-owned `out`.
    pub fn on_ack_into(&mut self, now: SimTime, ack: Ack, out: &mut SenderOutput) {
        self.stats.acks_received += 1;
        out.reset();

        if ack.ack > self.snd_nxt {
            // Acknowledges data we never sent — a receiver bug; ignore.
            return;
        }

        // SACK bookkeeping: fold reported ranges into the scoreboard.
        if self.config.style == RenoStyle::Sack && !ack.sack.is_empty() {
            for &(start, end) in ack.sack.ranges() {
                for seq in start..end.min(self.snd_nxt) {
                    if seq > self.snd_una {
                        self.scoreboard.insert(seq); //~ allow(hot_alloc): SACK scoreboard; node count bounded by the flight window
                    }
                }
            }
        }

        if ack.ack > self.snd_una {
            // Forward progress.
            let was_in_recovery = self.cc.in_fast_recovery();
            let newly_acked = ack.ack - self.snd_una;
            self.snd_una = ack.ack;
            self.dupacks = 0;
            //~ allow(hot_alloc): split_off allocates one root node; trees bounded by the flight window
            self.scoreboard = self.scoreboard.split_off(&self.snd_una);
            self.rexmitted = self.rexmitted.split_off(&self.snd_una); //~ allow(hot_alloc): split_off allocates one root node; trees bounded by the flight window
            if let Some(limit) = self.config.data_limit {
                if self.snd_una >= limit && self.completed_at.is_none() {
                    self.completed_at = Some(now);
                }
            }
            if self.to_run > 0 {
                self.stats.record_to_sequence(self.to_run);
                self.to_run = 0;
            }
            self.rto.on_progress();
            if let Some((seq, sent_at)) = self.timed {
                if ack.ack > seq {
                    self.rto.on_rtt_sample(now - sent_at);
                    self.cc.on_rtt_sample(now - sent_at);
                    self.timed = None;
                }
            }
            match self.config.style {
                RenoStyle::Tahoe | RenoStyle::Reno => {
                    self.cc.on_new_ack(now);
                    self.fill_window(now, out);
                }
                RenoStyle::NewReno | RenoStyle::Sack if was_in_recovery => {
                    if self.snd_una >= self.recover {
                        // Full ACK: recovery over.
                        self.cc.exit_recovery();
                        self.rexmitted.clear();
                        self.fill_window(now, out);
                    } else {
                        // Partial ACK (RFC 6582): the next hole is also
                        // lost; retransmit it immediately, stay in recovery.
                        self.cc.on_partial_ack(newly_acked);
                        match self.config.style {
                            RenoStyle::NewReno => self.retransmit_head(now, out),
                            RenoStyle::Sack => self.send_sack_recovery(now, out),
                            _ => unreachable!(), //~ allow(hot_panic): partial-ACK recovery only runs under NewReno/Sack styles
                        }
                    }
                }
                RenoStyle::NewReno | RenoStyle::Sack => {
                    self.cc.on_new_ack(now);
                    self.fill_window(now, out);
                }
            }
            // Restart the timer for the (still) outstanding data.
            out.timer = TimerCmd::Arm(now + self.rto.current_rto());
        } else if ack.ack == self.snd_una && self.flight() > 0 {
            // Duplicate ACK.
            self.dupacks += 1;
            match self.config.style {
                RenoStyle::Tahoe => {
                    // `== dupthresh` fires once per progress epoch (dupacks
                    // only reset on forward progress). The threshold comes
                    // from the quirk decorator, not the host.
                    if self.dupacks == self.cc.dupthresh() {
                        // Tahoe: a TD indication collapses the window.
                        self.stats.td_events += 1;
                        self.cc.on_timeout(self.flight());
                        self.retransmit_head(now, out);
                        out.timer = TimerCmd::Arm(now + self.rto.current_rto());
                    }
                }
                RenoStyle::Reno => {
                    if self.cc.in_fast_recovery() {
                        self.cc.on_dupack_in_recovery();
                        self.fill_window(now, out);
                    } else if self.dupacks == self.cc.dupthresh() {
                        self.stats.td_events += 1;
                        self.cc.on_fast_retransmit(now, self.flight());
                        self.retransmit_head(now, out);
                        out.timer = TimerCmd::Arm(now + self.rto.current_rto());
                    }
                }
                RenoStyle::NewReno => {
                    if self.cc.in_fast_recovery() {
                        self.cc.on_dupack_in_recovery();
                        self.fill_window(now, out);
                    } else if self.dupacks == self.cc.dupthresh() {
                        self.stats.td_events += 1;
                        self.recover = self.snd_nxt;
                        self.cc.on_fast_retransmit(now, self.flight());
                        self.retransmit_head(now, out);
                        out.timer = TimerCmd::Arm(now + self.rto.current_rto());
                    }
                }
                RenoStyle::Sack => {
                    if self.cc.in_fast_recovery() {
                        self.send_sack_recovery(now, out);
                    } else if self.dupacks == self.cc.dupthresh() {
                        self.stats.td_events += 1;
                        self.recover = self.snd_nxt;
                        self.rexmitted.clear();
                        self.cc.on_sack_retransmit(now, self.flight());
                        self.retransmit_head(now, out);
                        // The head repair counts as an in-recovery repair.
                        self.rexmitted.insert(self.snd_una); //~ allow(hot_alloc): repair ledger; node count bounded by the flight window
                        self.send_sack_recovery(now, out);
                        out.timer = TimerCmd::Arm(now + self.rto.current_rto());
                    }
                }
            }
        }
        // ACKs below snd_una carry no information here (cumulative).
    }

    /// SACK pipe estimate: packets believed in flight — outstanding data
    /// minus SACKed packets minus presumed-lost holes that have not been
    /// retransmitted (RFC 6675's pipe, simplified to our packet units).
    fn sack_pipe(&self) -> u64 {
        let sacked = self.scoreboard.len() as u64; //~ allow(cast): usize length to u64, lossless on this platform set
        let lost_unrexmitted = match self.scoreboard.iter().next_back() {
            Some(&hi) => (self.snd_una..hi)
                .filter(|s| !self.scoreboard.contains(s) && !self.rexmitted.contains(s))
                .count() as u64, //~ allow(cast): usize length to u64, lossless on this platform set
            None => 0,
        };
        self.flight().saturating_sub(sacked + lost_unrexmitted)
    }

    /// The SACK transmission rule: while the pipe has room under `cwnd`,
    /// retransmit the lowest unrepaired hole below the highest SACKed
    /// sequence; with no holes left, send new data.
    fn send_sack_recovery(&mut self, now: SimTime, out: &mut SenderOutput) {
        loop {
            if self.sack_pipe() >= self.cc.window().min(u64::from(self.config.rwnd)) {
                break;
            }
            let hole = self.scoreboard.iter().next_back().and_then(|&hi| {
                (self.snd_una..hi)
                    .find(|s| !self.scoreboard.contains(s) && !self.rexmitted.contains(s))
            });
            match hole {
                Some(seq) => {
                    self.rexmitted.insert(seq); //~ allow(hot_alloc): repair ledger; node count bounded by the flight window
                                                //= pftk#karn-rto
                    if let Some((timed_seq, _)) = self.timed {
                        if timed_seq == seq {
                            self.timed = None; // Karn
                        }
                    }
                    self.stats.packets_sent += 1;
                    self.stats.retransmissions += 1;
                    //~ allow(hot_alloc): caller-owned output pool; capacity persists across reset
                    out.segments.push(Segment {
                        seq,
                        retransmit: true,
                    });
                }
                None => {
                    // No repairable holes: send new data if permitted.
                    if let Some(limit) = self.config.data_limit {
                        if self.snd_nxt >= limit {
                            break;
                        }
                    }
                    if self.flight() >= u64::from(self.config.rwnd) {
                        break;
                    }
                    let seq = self.snd_nxt;
                    self.snd_nxt += 1;
                    if self.timed.is_none() {
                        self.timed = Some((seq, now));
                    }
                    self.stats.packets_sent += 1;
                    self.stats.packets_sent_new += 1;
                    //~ allow(hot_alloc): caller-owned output pool; capacity persists across reset
                    out.segments.push(Segment {
                        seq,
                        retransmit: false,
                    });
                }
            }
        }
    }

    /// The retransmission timer fired.
    pub fn on_rto_fired(&mut self, now: SimTime) -> SenderOutput {
        let mut out = SenderOutput::default();
        self.on_rto_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`Sender::on_rto_fired`]: resets and fills
    /// the caller-owned `out`.
    pub fn on_rto_into(&mut self, now: SimTime, out: &mut SenderOutput) {
        out.reset();
        if self.flight() == 0 {
            // Nothing outstanding: for a completed finite transfer the
            // timer simply dies; for a bulk sender (cannot normally happen)
            // rearm defensively.
            if !self.is_complete() {
                out.timer = TimerCmd::Arm(now + self.rto.current_rto());
            }
            return;
        }
        self.stats.rto_firings += 1;
        self.to_run += 1;
        self.cc.on_timeout(self.flight());
        self.rto.on_timeout();
        self.dupacks = 0;
        // Recovery episode (if any) is over; the scoreboard stays (the
        // receiver still holds that data) but repairs restart.
        self.rexmitted.clear();
        // Karn: anything in flight is now suspect.
        self.timed = None;
        self.retransmit_head(now, out);
        out.timer = TimerCmd::Arm(now + self.rto.current_rto());
    }

    /// Flushes the final (possibly open) timeout run into the stats; call
    /// once when the simulation horizon is reached.
    pub fn finish(&mut self) {
        if self.to_run > 0 {
            self.stats.record_to_sequence(self.to_run);
            self.to_run = 0;
        }
    }

    fn retransmit_head(&mut self, _now: SimTime, out: &mut SenderOutput) {
        let seq = self.snd_una;
        // Karn: a retransmitted sequence must not produce an RTT sample.
        if let Some((timed_seq, _)) = self.timed {
            if timed_seq == seq {
                self.timed = None;
            }
        }
        self.stats.packets_sent += 1;
        self.stats.retransmissions += 1;
        //~ allow(hot_alloc): caller-owned output pool; capacity persists across reset
        out.segments.push(Segment {
            seq,
            retransmit: true,
        });
    }

    fn fill_window(&mut self, now: SimTime, out: &mut SenderOutput) {
        while self.flight() < self.usable_window() {
            if let Some(limit) = self.config.data_limit {
                if self.snd_nxt >= limit {
                    break; // everything has been transmitted at least once
                }
            }
            let seq = self.snd_nxt;
            self.snd_nxt += 1;
            if self.timed.is_none() {
                self.timed = Some((seq, now));
            }
            self.stats.packets_sent += 1;
            self.stats.packets_sent_new += 1;
            //~ allow(hot_alloc): caller-owned output pool; capacity persists across reset
            out.segments.push(Segment {
                seq,
                retransmit: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sender() -> Sender {
        Sender::new(SenderConfig::default())
    }

    #[test]
    fn start_sends_initial_window_and_arms_timer() {
        let mut s = sender();
        let out = s.on_start(t(0));
        assert_eq!(out.segments.len(), 1); // initial cwnd 1
        assert_eq!(
            out.segments[0],
            Segment {
                seq: 0,
                retransmit: false
            }
        );
        assert!(matches!(out.timer, TimerCmd::Arm(_)));
        assert_eq!(s.flight(), 1);
    }

    #[test]
    fn ack_grows_window_slow_start() {
        let mut s = sender();
        s.on_start(t(0));
        let out = s.on_ack(t(100), Ack::plain(1));
        // cwnd 1 → 2; flight 0 → send 2.
        assert_eq!(out.segments.len(), 2);
        assert_eq!(s.flight(), 2);
        assert_eq!(s.stats.packets_sent, 3);
    }

    #[test]
    fn dupacks_trigger_fast_retransmit_at_threshold() {
        let mut s = sender();
        s.on_start(t(0));
        // Grow to a window of several packets.
        s.on_ack(t(100), Ack::plain(1));
        s.on_ack(t(200), Ack::plain(2));
        s.on_ack(t(300), Ack::plain(3));
        assert!(s.flight() >= 4);
        let una = s.snd_una();
        // Three duplicate ACKs.
        assert!(s.on_ack(t(400), Ack::plain(una)).segments.is_empty());
        assert!(s.on_ack(t(401), Ack::plain(una)).segments.is_empty());
        let out = s.on_ack(t(402), Ack::plain(una));
        assert_eq!(out.segments.len(), 1);
        assert!(out.segments[0].retransmit);
        assert_eq!(out.segments[0].seq, una);
        assert_eq!(s.stats.td_events, 1);
        assert!(s.congestion().in_fast_recovery());
        assert!(matches!(out.timer, TimerCmd::Arm(_)));
    }

    #[test]
    fn linux_dupthresh_two() {
        let config = SenderConfig {
            dupthresh: 2,
            ..SenderConfig::default()
        };
        let mut s = Sender::new(config);
        s.on_start(t(0));
        s.on_ack(t(100), Ack::plain(1));
        s.on_ack(t(200), Ack::plain(2));
        let una = s.snd_una();
        s.on_ack(t(300), Ack::plain(una));
        let out = s.on_ack(t(301), Ack::plain(una));
        assert_eq!(s.stats.td_events, 1, "TD after only two dupacks");
        assert!(out.segments[0].retransmit);
    }

    #[test]
    fn rto_collapses_window_and_retransmits() {
        let mut s = sender();
        s.on_start(t(0));
        s.on_ack(t(100), Ack::plain(1));
        s.on_ack(t(200), Ack::plain(2));
        assert!(s.flight() > 1);
        let out = s.on_rto_fired(t(5000));
        assert_eq!(out.segments.len(), 1);
        assert!(out.segments[0].retransmit);
        assert_eq!(out.segments[0].seq, s.snd_una());
        assert_eq!(s.congestion().window(), 1);
        assert_eq!(s.stats.rto_firings, 1);
    }

    #[test]
    fn timeout_sequences_recorded_on_progress() {
        let mut s = sender();
        s.on_start(t(0));
        s.on_rto_fired(t(3000));
        s.on_rto_fired(t(9000)); // backed-off second firing: same sequence
        assert_eq!(s.stats.to_events(), 0, "sequence still open");
        s.on_ack(t(9500), Ack::plain(1));
        assert_eq!(s.stats.to_sequences[1], 1, "double timeout recorded as T1");
    }

    #[test]
    fn finish_flushes_open_sequence() {
        let mut s = sender();
        s.on_start(t(0));
        s.on_rto_fired(t(3000));
        s.finish();
        assert_eq!(s.stats.to_sequences[0], 1);
        // Idempotent.
        s.finish();
        assert_eq!(s.stats.to_events(), 1);
    }

    #[test]
    fn rwnd_clamps_flight() {
        let config = SenderConfig {
            rwnd: 4,
            ..SenderConfig::default()
        };
        let mut s = Sender::new(config);
        s.on_start(t(0));
        for i in 1..100u64 {
            s.on_ack(t(i * 10), Ack::plain(i));
            assert!(s.flight() <= 4, "flight {} exceeds rwnd", s.flight());
        }
    }

    #[test]
    fn karn_discards_sample_for_retransmitted_head() {
        let mut s = sender();
        s.on_start(t(0)); // times seq 0
        s.on_rto_fired(t(3000)); // retransmits seq 0 → timing discarded
        let before = s.rto_estimator().mean_rtt();
        s.on_ack(t(3100), Ack::plain(1));
        assert_eq!(
            s.rto_estimator().mean_rtt(),
            before,
            "no sample from retransmit"
        );
    }

    #[test]
    fn fast_recovery_inflation_allows_new_data() {
        let mut s = sender();
        s.on_start(t(0));
        for i in 1..=8u64 {
            s.on_ack(t(i * 10), Ack::plain(i));
        }
        let una = s.snd_una();
        s.on_ack(t(200), Ack::plain(una));
        s.on_ack(t(201), Ack::plain(una));
        s.on_ack(t(202), Ack::plain(una)); // fast retransmit
                                           // Further dupacks inflate and eventually release new segments.
        let mut released = 0;
        for k in 0..10 {
            released += s.on_ack(t(210 + k), Ack::plain(una)).segments.len();
        }
        assert!(released > 0, "window inflation never released data");
    }

    #[test]
    fn ack_beyond_snd_nxt_ignored() {
        let mut s = sender();
        s.on_start(t(0));
        let out = s.on_ack(t(1), Ack::plain(999));
        assert!(out.segments.is_empty());
        assert_eq!(s.snd_una(), 0);
    }

    fn styled(style: RenoStyle) -> Sender {
        Sender::new(SenderConfig {
            style,
            ..SenderConfig::default()
        })
    }

    /// Grows the window to ~9 and leaves `flight == 8` outstanding.
    fn warmed(style: RenoStyle) -> Sender {
        let mut s = styled(style);
        s.on_start(t(0));
        for i in 1..=8u64 {
            s.on_ack(t(i * 10), Ack::plain(i));
        }
        s
    }

    fn dupack_n(s: &mut Sender, una: Seq, n: u64, base_ms: u64) -> Vec<Segment> {
        let mut sent = Vec::new();
        for k in 0..n {
            sent.extend(s.on_ack(t(base_ms + k), Ack::plain(una)).segments);
        }
        sent
    }

    #[test]
    fn tahoe_td_collapses_to_slow_start() {
        let mut s = warmed(RenoStyle::Tahoe);
        let una = s.snd_una();
        let sent = dupack_n(&mut s, una, 3, 200);
        assert_eq!(sent.len(), 1);
        assert!(sent[0].retransmit);
        assert_eq!(s.congestion().window(), 1, "Tahoe collapses the window");
        assert!(!s.congestion().in_fast_recovery());
        assert!(s.congestion().in_slow_start());
        assert_eq!(s.stats.td_events, 1);
        // Further dupacks do nothing.
        assert!(dupack_n(&mut s, una, 3, 210).is_empty());
    }

    #[test]
    fn newreno_partial_ack_repairs_next_hole_in_recovery() {
        let mut s = warmed(RenoStyle::NewReno);
        let una = s.snd_una();
        let snd_nxt = s.snd_nxt();
        dupack_n(&mut s, una, 3, 200); // enter recovery, retransmit head
        assert!(s.congestion().in_fast_recovery());
        // Partial ACK: advances but below `recover` (= snd_nxt at entry).
        let out = s.on_ack(t(400), Ack::plain(una + 2));
        assert!(
            s.congestion().in_fast_recovery(),
            "partial ACK must not exit"
        );
        assert_eq!(
            out.segments.len(),
            1,
            "partial ACK retransmits the next hole"
        );
        assert!(out.segments[0].retransmit);
        assert_eq!(out.segments[0].seq, una + 2);
        assert_eq!(s.stats.td_events, 1, "one indication for the whole episode");
        // Full ACK ends recovery.
        s.on_ack(t(500), Ack::plain(snd_nxt));
        assert!(!s.congestion().in_fast_recovery());
    }

    #[test]
    fn reno_by_contrast_exits_on_any_new_ack() {
        let mut s = warmed(RenoStyle::Reno);
        let una = s.snd_una();
        dupack_n(&mut s, una, 3, 200);
        assert!(s.congestion().in_fast_recovery());
        s.on_ack(t(400), Ack::plain(una + 2));
        assert!(
            !s.congestion().in_fast_recovery(),
            "plain Reno exits on a partial ACK"
        );
    }

    #[test]
    fn sack_repairs_multiple_holes_in_one_episode() {
        // warmed(): snd_una = 8, snd_nxt = 17, flight = 9.
        // Losses at 8, 9 and 12; the receiver holds 10–11 and 13–16.
        let mut s = warmed(RenoStyle::Sack);
        let una = s.snd_una();
        let end = s.snd_nxt();
        assert_eq!((una, end), (8, 17));
        let sack = crate::packet::SackBlocks::from_ranges([(10, 12), (13, 17)]);
        let mut sent = Vec::new();
        for k in 0..3u64 {
            sent.extend(s.on_ack(t(200 + k), Ack { ack: una, sack }).segments);
        }
        assert_eq!(s.stats.td_events, 1);
        let retx: Vec<Seq> = sent
            .iter()
            .filter(|g| g.retransmit)
            .map(|g| g.seq)
            .collect();
        assert!(
            retx.contains(&8) && retx.contains(&9),
            "entry repairs head holes: {retx:?}"
        );
        // Repairs 8 and 9 arrive; with 10–11 already held the cumulative
        // ACK jumps to 12 — a partial ACK (recover = 17).
        let out = s.on_ack(
            t(400),
            Ack {
                ack: 12,
                sack: crate::packet::SackBlocks::from_ranges([(13, 17)]),
            },
        );
        assert!(
            s.congestion().in_fast_recovery(),
            "partial ACK keeps recovery open"
        );
        sent.extend(out.segments);
        let retx: std::collections::BTreeSet<Seq> = sent
            .iter()
            .filter(|g| g.retransmit)
            .map(|g| g.seq)
            .collect();
        assert!(
            retx.contains(&12),
            "hole 12 repaired on the partial ACK: {retx:?}"
        );
        // No hole repaired twice across the whole episode.
        let all: Vec<Seq> = sent
            .iter()
            .filter(|g| g.retransmit)
            .map(|g| g.seq)
            .collect();
        let uniq: std::collections::BTreeSet<&Seq> = all.iter().collect();
        assert_eq!(all.len(), uniq.len(), "duplicate hole repairs: {all:?}");
        // The full ACK closes the episode: one TD indication total.
        s.on_ack(t(500), Ack::plain(end));
        assert!(!s.congestion().in_fast_recovery());
        assert_eq!(
            s.stats.td_events, 1,
            "one reduction for a three-loss window"
        );
    }

    #[test]
    fn sack_exits_on_full_ack_and_cleans_state() {
        let mut s = warmed(RenoStyle::Sack);
        let una = s.snd_una();
        let end = s.snd_nxt();
        let sack = crate::packet::SackBlocks::from_ranges([(una + 2, end)]);
        for k in 0..3u64 {
            s.on_ack(t(200 + k), Ack { ack: una, sack });
        }
        assert!(s.congestion().in_fast_recovery());
        s.on_ack(t(300), Ack::plain(end));
        assert!(!s.congestion().in_fast_recovery());
        assert!(!s.is_complete());
        // New data flows again.
        let out = s.on_ack(t(400), Ack::plain(s.snd_nxt()));
        let _ = out;
    }

    #[test]
    fn finite_flow_stops_at_limit_and_completes() {
        let config = SenderConfig {
            data_limit: Some(3),
            ..SenderConfig::default()
        };
        let mut s = Sender::new(config);
        let out = s.on_start(t(0));
        assert_eq!(out.segments.len(), 1); // initial cwnd 1
        assert!(!s.is_complete());
        let out = s.on_ack(t(100), Ack::plain(1));
        assert_eq!(
            out.segments.len(),
            2,
            "window grows to 2, both remaining packets go"
        );
        assert_eq!(s.snd_nxt(), 3);
        // No more new data even as the window opens further.
        let out = s.on_ack(t(200), Ack::plain(2));
        assert!(out.segments.is_empty());
        assert!(!s.is_complete());
        s.on_ack(t(300), Ack::plain(3));
        assert!(s.is_complete());
        assert_eq!(s.completed_at(), Some(t(300)));
    }

    #[test]
    fn finite_flow_retransmits_tail_loss() {
        let config = SenderConfig {
            data_limit: Some(2),
            ..SenderConfig::default()
        };
        let mut s = Sender::new(config);
        s.on_start(t(0));
        s.on_ack(t(100), Ack::plain(1)); // sends seq 1
                                         // Seq 1 lost: RTO fires, retransmits it.
        let out = s.on_rto_fired(t(4000));
        assert_eq!(out.segments.len(), 1);
        assert!(out.segments[0].retransmit);
        assert_eq!(out.segments[0].seq, 1);
        s.on_ack(t(4200), Ack::plain(2));
        assert!(s.is_complete());
    }

    #[test]
    fn completed_flow_rto_does_not_rearm() {
        let config = SenderConfig {
            data_limit: Some(1),
            ..SenderConfig::default()
        };
        let mut s = Sender::new(config);
        s.on_start(t(0));
        s.on_ack(t(100), Ack::plain(1));
        assert!(s.is_complete());
        let out = s.on_rto_fired(t(5000));
        assert!(out.segments.is_empty());
        assert_eq!(out.timer, TimerCmd::Keep, "timer must die after completion");
    }

    #[test]
    fn infinite_source_never_completes() {
        let mut s = sender();
        s.on_start(t(0));
        for i in 1..100u64 {
            s.on_ack(t(i * 10), Ack::plain(i));
        }
        assert!(!s.is_complete());
        assert!(s.completed_at().is_none());
    }

    #[test]
    fn new_ack_exits_fast_recovery() {
        let mut s = sender();
        s.on_start(t(0));
        for i in 1..=8u64 {
            s.on_ack(t(i * 10), Ack::plain(i));
        }
        let una = s.snd_una();
        for k in 0..3 {
            s.on_ack(t(200 + k), Ack::plain(una));
        }
        assert!(s.congestion().in_fast_recovery());
        s.on_ack(t(300), Ack::plain(s.snd_nxt()));
        assert!(!s.congestion().in_fast_recovery());
    }
}
