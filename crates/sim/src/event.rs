//! The discrete-event engines: time-ordered queues with stable FIFO
//! tie-breaking.
//!
//! Sans-I/O design: an engine owns nothing but `(time, payload)` pairs; all
//! protocol state lives in the connection object that pops events and
//! schedules new ones. Two events at the same instant pop in the order they
//! were scheduled, which keeps runs deterministic.
//!
//! Two interchangeable engines implement [`EventScheduler`]:
//!
//! * [`EventQueue`] — the **legacy reference engine**: a single
//!   `BinaryHeap` keyed by `(time, insertion id)`. Every push/pop is
//!   O(log n). Kept as the golden reference the hybrid engine is checked
//!   against (see the `engine_equivalence` integration tests).
//! * [`HybridQueue`] — the **fast-path engine**: per-direction monotone
//!   [`VecDeque`] lanes for link arrivals ([`Lane::Data`]/[`Lane::Ack`]),
//!   single-slot timer lanes ([`Lane::Rto`]/[`Lane::DelAck`]) where a
//!   schedule *supersedes* the pending entry, and a tiny heap for the rare
//!   out-of-order lane push (a fault-plan delay spike). Link arrivals are
//!   FIFO per direction (the path model clamps arrival times strictly
//!   increasing), and each timer kind has at most one live deadline, so
//!   the dominant O(log n) heap traffic becomes O(1) deque pushes/pops
//!   and slot stores — and the superseded timers the legacy heap would
//!   pop (and the connection would generation-filter) never become events
//!   at all.
//!
//! Both engines realize the *same observable total order* — ascending
//! `(time, insertion id)` with one global id counter. For the hybrid
//! engine this holds because each lane is kept sorted by that key (an
//! arrival that would violate lane monotonicity overflows to the heap)
//! and a pop takes the minimum over the lane heads, the timer slots, and
//! the heap top. The engines differ in exactly one way: the legacy queue
//! retains superseded timer entries until they pop (the simulator filters
//! them by generation with no side effects), while the hybrid queue drops
//! them at schedule time — so only `len()` and the raw pop *count* can
//! differ, never the sequence of live events.

use crate::time::SimTime;
use pftk_snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which scheduling lane an event belongs to.
///
/// The hybrid engine exploits the per-direction FIFO ordering of link
/// arrivals and the one-live-deadline nature of the protocol timers. The
/// legacy engine ignores the lane entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Data-direction link arrivals (sender → receiver): monotone
    /// per-path, eligible for the O(1) deque lane.
    Data,
    /// ACK-direction link arrivals (receiver → sender): monotone
    /// per-path, eligible for the O(1) deque lane.
    Ack,
    /// The retransmission-timeout timer: **single-slot** — scheduling
    /// replaces any pending entry in this lane, because re-arming the RTO
    /// supersedes the previous deadline (the simulator would discard its
    /// firing via a generation check anyway).
    Rto,
    /// The delayed-ACK timer: single-slot, like [`Lane::Rto`].
    DelAck,
}

/// Common interface of the event engines, so the connection can be
/// monomorphized over either (no virtual dispatch on the hot path).
pub trait EventScheduler<E>: Default {
    /// Schedules `payload` to fire at `at` on the given lane.
    fn schedule(&mut self, lane: Lane, at: SimTime, payload: E);
    /// Removes and returns the earliest event, if any.
    fn pop(&mut self) -> Option<(SimTime, E)>;
    /// The timestamp of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A time-ordered queue of events of type `E` — the legacy single-heap
/// engine (every operation O(log n)); see the module docs.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_id: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_id: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let id = self.next_id;
        self.next_id += 1;
        //~ allow(hot_alloc): amortized heap growth; capacity reaches a steady state after slow start
        self.heap.push(Entry {
            key: Reverse((at, id)),
            payload,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> EventScheduler<E> for EventQueue<E> {
    #[inline]
    fn schedule(&mut self, _lane: Lane, at: SimTime, payload: E) {
        EventQueue::schedule(self, at, payload);
    }
    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    #[inline]
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    #[inline]
    fn is_empty(&self) -> bool {
        EventQueue::is_empty(self)
    }
}

/// An entry in a monotone lane: the key `(at, id)` is the same total-order
/// key the legacy heap uses.
#[derive(Debug)]
struct LaneEntry<E> {
    at: SimTime,
    id: u64,
    payload: E,
}

/// The hybrid fast-path engine: two monotone arrival lanes, two
/// single-slot timer lanes, plus a tiny heap for out-of-order pushes; see
/// the module docs.
///
/// The sequence of *live* events popped is bit-identical to
/// [`EventQueue`]'s for any schedule history (the legacy queue
/// additionally pops superseded timers, which the simulator filters out).
#[derive(Debug)]
pub struct HybridQueue<E> {
    data: VecDeque<LaneEntry<E>>,
    ack: VecDeque<LaneEntry<E>>,
    rto: Option<LaneEntry<E>>,
    delack: Option<LaneEntry<E>>,
    heap: BinaryHeap<Entry<E>>,
    next_id: u64,
}

impl<E> Default for HybridQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Which source holds the globally earliest event (internal to pop).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Src {
    Data,
    Ack,
    Rto,
    DelAck,
    Heap,
}

impl<E> HybridQueue<E> {
    /// Initial capacity of the arrival lanes and the overflow heap. Lanes
    /// are bounded by packets in flight and the heap by simultaneously
    /// pending out-of-order (fault-delayed) arrivals, both of which
    /// typically peak in the low hundreds; starting warm keeps the
    /// steady-state hot path allocation-free instead of paying amortized
    /// doublings whenever a deep loss episode sets a new high-water mark
    /// mid-run.
    const INITIAL_CAPACITY: usize = 512;

    /// An empty queue (pre-reserved; see `Self::INITIAL_CAPACITY`).
    pub fn new() -> Self {
        HybridQueue {
            data: VecDeque::with_capacity(Self::INITIAL_CAPACITY),
            ack: VecDeque::with_capacity(Self::INITIAL_CAPACITY),
            rto: None,
            delack: None,
            heap: BinaryHeap::with_capacity(Self::INITIAL_CAPACITY),
            next_id: 0,
        }
    }

    /// The `(time, id)` key of the earliest pending event, with its source.
    #[inline]
    fn min_key(&self) -> Option<(SimTime, u64, Src)> {
        let mut best: Option<(SimTime, u64, Src)> = None;
        if let Some(front) = self.data.front() {
            best = Some((front.at, front.id, Src::Data));
        }
        if let Some(front) = self.ack.front() {
            if best.is_none_or(|(at, id, _)| (front.at, front.id) < (at, id)) {
                best = Some((front.at, front.id, Src::Ack));
            }
        }
        if let Some(slot) = &self.rto {
            if best.is_none_or(|(at, id, _)| (slot.at, slot.id) < (at, id)) {
                best = Some((slot.at, slot.id, Src::Rto));
            }
        }
        if let Some(slot) = &self.delack {
            if best.is_none_or(|(at, id, _)| (slot.at, slot.id) < (at, id)) {
                best = Some((slot.at, slot.id, Src::DelAck));
            }
        }
        if let Some(top) = self.heap.peek() {
            let (at, id) = top.key.0;
            if best.is_none_or(|(bat, bid, _)| (at, id) < (bat, bid)) {
                best = Some((at, id, Src::Heap));
            }
        }
        best
    }

    /// Writes the queue's full state — every pending event with its
    /// `(time, id)` key plus the id counter — using `enc` to serialize
    /// payloads. Heap entries are emitted sorted by key so the byte
    /// encoding is a pure function of the queue's contents (a `BinaryHeap`'s
    /// internal layout depends on insertion history).
    pub(crate) fn snapshot_into(
        &self,
        w: &mut SnapWriter,
        mut enc: impl FnMut(&E, &mut SnapWriter),
    ) {
        w.put_u64(self.next_id);
        for lane in [&self.data, &self.ack] {
            w.put_usize(lane.len());
            for e in lane {
                w.put_u64(e.at.as_nanos());
                w.put_u64(e.id);
                enc(&e.payload, w);
            }
        }
        for slot in [&self.rto, &self.delack] {
            match slot {
                Some(e) => {
                    w.put_bool(true);
                    w.put_u64(e.at.as_nanos());
                    w.put_u64(e.id);
                    enc(&e.payload, w);
                }
                None => w.put_bool(false),
            }
        }
        let mut entries: Vec<&Entry<E>> = self.heap.iter().collect();
        entries.sort_by_key(|e| e.key.0);
        w.put_usize(entries.len());
        for e in entries {
            let (at, id) = e.key.0;
            w.put_u64(at.as_nanos());
            w.put_u64(id);
            enc(&e.payload, w);
        }
    }

    /// Rebuilds the queue from state written by [`Self::snapshot_into`],
    /// using `dec` to deserialize payloads. Existing contents are
    /// discarded. Lane ordering is validated so a corrupt snapshot yields
    /// an error instead of a queue that pops out of order.
    pub(crate) fn restore_from(
        &mut self,
        r: &mut SnapReader<'_>,
        mut dec: impl FnMut(&mut SnapReader<'_>) -> SnapResult<E>,
    ) -> SnapResult<()> {
        self.data.clear();
        self.ack.clear();
        self.rto = None;
        self.delack = None;
        self.heap.clear();
        self.next_id = r.get_u64()?;
        let mut read_entry = |r: &mut SnapReader<'_>| -> SnapResult<LaneEntry<E>> {
            let at = SimTime::from_nanos(r.get_u64()?);
            let id = r.get_u64()?;
            let payload = dec(r)?;
            Ok(LaneEntry { at, id, payload })
        };
        for lane_idx in 0..2u8 {
            let n = r.get_usize()?;
            for _ in 0..n {
                let e = read_entry(r)?;
                let deque = if lane_idx == 0 {
                    &mut self.data
                } else {
                    &mut self.ack
                };
                if deque.back().is_some_and(|b| (e.at, e.id) <= (b.at, b.id)) {
                    return Err(SnapError::Invalid("event lane not sorted by (time, id)"));
                }
                deque.push_back(e);
            }
        }
        self.rto = if r.get_bool()? {
            Some(read_entry(r)?)
        } else {
            None
        };
        self.delack = if r.get_bool()? {
            Some(read_entry(r)?)
        } else {
            None
        };
        let n = r.get_usize()?;
        for _ in 0..n {
            let e = read_entry(r)?;
            self.heap.push(Entry {
                key: Reverse((e.at, e.id)),
                payload: e.payload,
            });
        }
        Ok(())
    }
}

impl<E> EventScheduler<E> for HybridQueue<E> {
    #[inline]
    fn schedule(&mut self, lane: Lane, at: SimTime, payload: E) {
        let id = self.next_id;
        self.next_id += 1;
        let deque = match lane {
            Lane::Data => &mut self.data,
            Lane::Ack => &mut self.ack,
            // Single-slot timers: the new deadline supersedes any pending
            // one (which the simulator would have generation-filtered).
            Lane::Rto => {
                self.rto = Some(LaneEntry { at, id, payload });
                return;
            }
            Lane::DelAck => {
                self.delack = Some(LaneEntry { at, id, payload });
                return;
            }
        };
        // The lane stays sorted by (at, id): ids are globally increasing,
        // so appending preserves order whenever time is non-decreasing. A
        // violating push (fault-plan delay landing before the lane tail)
        // overflows to the heap, which handles arbitrary order.
        match deque.back() {
            //~ allow(hot_alloc): overflow lane for out-of-order fault-plan delays; rare by construction
            Some(back) if at < back.at => self.heap.push(Entry {
                key: Reverse((at, id)),
                payload,
            }),
            //~ allow(hot_alloc): lane deques reach steady-state capacity; appends amortized O(1)
            _ => deque.push_back(LaneEntry { at, id, payload }),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        match self.min_key()? {
            (_, _, Src::Data) => self.data.pop_front().map(|e| (e.at, e.payload)),
            (_, _, Src::Ack) => self.ack.pop_front().map(|e| (e.at, e.payload)),
            (_, _, Src::Rto) => self.rto.take().map(|e| (e.at, e.payload)),
            (_, _, Src::DelAck) => self.delack.take().map(|e| (e.at, e.payload)),
            (_, _, Src::Heap) => self.heap.pop().map(|e| (e.key.0 .0, e.payload)),
        }
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        self.min_key().map(|(at, _, _)| at)
    }

    #[inline]
    fn len(&self) -> usize {
        self.data.len()
            + self.ack.len()
            + usize::from(self.rto.is_some())
            + usize::from(self.delack.is_some())
            + self.heap.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.data.is_empty()
            && self.ack.is_empty()
            && self.rto.is_none()
            && self.delack.is_none()
            && self.heap.is_empty()
    }
}

/// Type-level selector of an event engine, so a simulator can be generic
/// over the engine (and monomorphize the hot loop for each) without
/// exposing its private event-payload type in public signatures.
pub trait EngineKind {
    /// The queue type this engine instantiates for payload `E`.
    type Queue<E>: EventScheduler<E>;
}

/// Selects [`HybridQueue`] — the default fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridEngine;

impl EngineKind for HybridEngine {
    type Queue<E> = HybridQueue<E>;
}

/// Selects [`EventQueue`] — the legacy reference engine, kept for the
/// golden-trace equivalence tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct LegacyEngine;

impl EngineKind for LegacyEngine {
    type Queue<E> = EventQueue<E>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(5), 0);
        assert_eq!(q.pop(), Some((t(5), 0)));
        q.schedule(t(7), 2);
        assert_eq!(q.pop(), Some((t(7), 2)));
        assert_eq!(q.pop(), Some((t(10), 1)));
    }

    #[test]
    fn hybrid_pops_in_time_order_across_lanes() {
        let mut q = HybridQueue::new();
        q.schedule(Lane::Data, t(30), "d30");
        q.schedule(Lane::Rto, t(10), "t10");
        q.schedule(Lane::Ack, t(20), "a20");
        q.schedule(Lane::DelAck, t(15), "k15");
        q.schedule(Lane::Data, t(40), "d40");
        assert_eq!(q.pop(), Some((t(10), "t10")));
        assert_eq!(q.pop(), Some((t(15), "k15")));
        assert_eq!(q.pop(), Some((t(20), "a20")));
        assert_eq!(q.pop(), Some((t(30), "d30")));
        assert_eq!(q.pop(), Some((t(40), "d40")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn hybrid_ties_break_in_schedule_order_across_lanes() {
        let mut q = HybridQueue::new();
        q.schedule(Lane::Data, t(5), 0);
        q.schedule(Lane::Rto, t(5), 1);
        q.schedule(Lane::Ack, t(5), 2);
        q.schedule(Lane::Data, t(5), 3);
        q.schedule(Lane::DelAck, t(5), 4);
        for want in 0..5 {
            assert_eq!(q.pop(), Some((t(5), want)));
        }
    }

    #[test]
    fn hybrid_timer_lanes_are_single_slot() {
        let mut q = HybridQueue::new();
        // Re-arming supersedes: only the latest RTO deadline survives.
        q.schedule(Lane::Rto, t(100), "old-rto");
        q.schedule(Lane::Rto, t(60), "new-rto");
        // The two timer lanes are independent slots.
        q.schedule(Lane::DelAck, t(80), "delack");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(60), "new-rto")));
        assert_eq!(q.pop(), Some((t(80), "delack")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn hybrid_out_of_order_lane_push_overflows_to_heap() {
        let mut q = HybridQueue::new();
        q.schedule(Lane::Data, t(100), "late");
        // Earlier than the lane tail: must divert to the heap, and still
        // pop first.
        q.schedule(Lane::Data, t(50), "early");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(50)));
        assert_eq!(q.pop(), Some((t(50), "early")));
        assert_eq!(q.pop(), Some((t(100), "late")));
    }

    #[test]
    fn hybrid_peek_len_empty() {
        let mut q: HybridQueue<()> = HybridQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Lane::Rto, t(9), ());
        q.schedule(Lane::Ack, t(4), ());
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    /// The engines realize the same observable total order: a randomized
    /// schedule history (mostly-monotone lanes with occasional backwards
    /// jumps and re-armed timers, interleaved with pops) must pop the same
    /// live events in the same order. The legacy queue additionally pops
    /// superseded timer entries — exactly the ones the simulator would
    /// generation-filter — so the reference skips those.
    #[test]
    fn hybrid_matches_legacy_on_randomized_histories() {
        use std::collections::HashSet;

        /// The next *live* legacy event: superseded timers are filtered
        /// the way `Connection`'s generation check filters them.
        fn legacy_next(
            legacy: &mut EventQueue<u32>,
            superseded: &mut HashSet<u32>,
        ) -> Option<(SimTime, u32)> {
            while let Some((at, v)) = EventQueue::pop(legacy) {
                if superseded.remove(&v) {
                    continue;
                }
                return Some((at, v));
            }
            None
        }

        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut legacy = EventQueue::new();
            let mut hybrid = HybridQueue::new();
            // Payloads of timer entries superseded by a re-arm and still
            // sitting in the legacy heap.
            let mut superseded: HashSet<u32> = HashSet::new();
            let mut live_rto: Option<u32> = None;
            let mut live_delack: Option<u32> = None;
            let mut data_clock = 0u64;
            let mut ack_clock = 0u64;
            let mut next = 0u32;
            for _ in 0..400 {
                match rng.uniform_u32(0, 10) {
                    // Monotone data arrival.
                    0..=2 => {
                        data_clock += rng.uniform_u64(0, 40);
                        legacy.schedule(t(data_clock), next);
                        hybrid.schedule(Lane::Data, t(data_clock), next);
                        next += 1;
                    }
                    // Monotone ACK arrival.
                    3..=5 => {
                        ack_clock += rng.uniform_u64(0, 40);
                        legacy.schedule(t(ack_clock), next);
                        hybrid.schedule(Lane::Ack, t(ack_clock), next);
                        next += 1;
                    }
                    // Backwards lane push (fault-plan delay spike).
                    6 => {
                        let at = rng.uniform_u64(0, data_clock.max(1));
                        legacy.schedule(t(at), next);
                        hybrid.schedule(Lane::Data, t(at), next);
                        next += 1;
                    }
                    // (Re-)arm the RTO timer at an arbitrary instant.
                    7 => {
                        let at = rng.uniform_u64(0, 2000);
                        legacy.schedule(t(at), next);
                        hybrid.schedule(Lane::Rto, t(at), next);
                        if let Some(old) = live_rto.replace(next) {
                            superseded.insert(old);
                        }
                        next += 1;
                    }
                    // (Re-)arm the delayed-ACK timer.
                    8 => {
                        let at = rng.uniform_u64(0, 2000);
                        legacy.schedule(t(at), next);
                        hybrid.schedule(Lane::DelAck, t(at), next);
                        if let Some(old) = live_delack.replace(next) {
                            superseded.insert(old);
                        }
                        next += 1;
                    }
                    // Interleaved pop.
                    _ => {
                        let a = legacy_next(&mut legacy, &mut superseded);
                        let b = EventScheduler::pop(&mut hybrid);
                        assert_eq!(a, b, "seed {seed}");
                        if let Some((_, v)) = a {
                            if live_rto == Some(v) {
                                live_rto = None;
                            }
                            if live_delack == Some(v) {
                                live_delack = None;
                            }
                        }
                    }
                }
                // Live-event counts agree (legacy still holds the
                // superseded entries).
                assert_eq!(
                    legacy.len() - superseded.len(),
                    EventScheduler::len(&hybrid),
                    "seed {seed}"
                );
            }
            // Drain: the full remaining live sequences must agree.
            loop {
                let a = legacy_next(&mut legacy, &mut superseded);
                let b = EventScheduler::pop(&mut hybrid);
                assert_eq!(a, b, "seed {seed}");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
