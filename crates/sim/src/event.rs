//! The discrete-event engine: a time-ordered queue with stable FIFO
//! tie-breaking.
//!
//! Sans-I/O design: the engine owns nothing but `(time, payload)` pairs; all
//! protocol state lives in the connection object that pops events and
//! schedules new ones. Two events at the same instant pop in the order they
//! were scheduled, which keeps runs deterministic.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_id: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_id: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Entry {
            key: Reverse((at, id)),
            payload,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(5), 0);
        assert_eq!(q.pop(), Some((t(5), 0)));
        q.schedule(t(7), 2);
        assert_eq!(q.pop(), Some((t(7), 2)));
        assert_eq!(q.pop(), Some((t(10), 1)));
    }
}
