//! The TCP receiver: cumulative ACKs, delayed ACKs, duplicate ACKs.
//!
//! Matches the behaviour the paper assumes: one cumulative ACK per `b`
//! consecutive in-order packets (delayed ACK, `b = 2` typically), a
//! standalone delayed-ACK timer so an odd final segment is still
//! acknowledged, and an *immediate* duplicate ACK for every out-of-order
//! segment ("these ACK's are not delayed", §II-B).

use crate::packet::{Ack, SackBlocks, Segment, Seq};
use crate::time::{SimDuration, SimTime};
use pftk_snap::{SnapError, SnapReader, SnapResult, SnapWriter};

/// What the connection layer should do with the delayed-ACK timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelAckTimer {
    /// Leave as is.
    Keep,
    /// Arm (or re-arm) to fire at the instant.
    Arm(SimTime),
    /// Cancel any pending firing.
    Cancel,
}

/// The receiver's reaction to an input.
///
/// The `*_into` event entry points fill a caller-owned instance, so a hot
/// loop reuses one allocation for the whole run; see
/// [`ReceiverOutput::reset`].
#[derive(Debug, Clone)]
pub struct ReceiverOutput {
    /// ACKs to send, in order.
    pub acks: Vec<Ack>,
    /// Delayed-ACK timer instruction.
    pub timer: DelAckTimer,
}

impl Default for ReceiverOutput {
    fn default() -> Self {
        ReceiverOutput {
            acks: Vec::new(),
            timer: DelAckTimer::Keep,
        }
    }
}

impl ReceiverOutput {
    /// Empties the output for reuse, keeping the ACK buffer's capacity.
    pub fn reset(&mut self) {
        self.acks.clear();
        self.timer = DelAckTimer::Keep;
    }
}

/// Receiver tunables.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverConfig {
    /// ACK every `b`-th in-order segment (1 = ACK everything, 2 = delayed
    /// ACKs as in most stacks).
    pub ack_every: u32,
    /// Standalone delayed-ACK timer (RFC: at most 500 ms; common: 200 ms).
    pub delack_timeout: SimDuration,
    /// Attach RFC 2018 SACK blocks to ACKs (needed by SACK senders).
    pub sack: bool,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        ReceiverConfig {
            ack_every: 2,
            delack_timeout: SimDuration::from_millis(200),
            sack: false,
        }
    }
}

/// TCP receiver state.
#[derive(Debug)]
pub struct Receiver {
    config: ReceiverConfig,
    /// Next expected in-order sequence number.
    rcv_nxt: Seq,
    /// Out-of-order segments held for reassembly: a sorted, deduplicated
    /// `Vec` rather than a `BTreeSet` — the reassembly buffer is bounded
    /// by the flight window, and a `Vec` keeps its capacity across loss
    /// episodes where a B-tree re-allocates nodes on every deep episode,
    /// which would break the hot path's steady-state zero-allocation
    /// guarantee.
    ooo: Vec<Seq>,
    /// In-order segments received since the last ACK went out.
    unacked: u32,
    /// Most recently buffered out-of-order sequence (for SACK block order).
    last_ooo: Option<Seq>,
    /// Distinct data packets received (in-order or buffered) — the paper's
    /// §V "throughput" numerator.
    distinct_received: u64,
}

impl Receiver {
    /// A fresh receiver expecting sequence 0.
    pub fn new(config: ReceiverConfig) -> Self {
        Receiver {
            config,
            rcv_nxt: 0,
            ooo: Vec::new(),
            unacked: 0,
            last_ooo: None,
            distinct_received: 0,
        }
    }

    /// Next expected sequence number.
    pub fn rcv_nxt(&self) -> Seq {
        self.rcv_nxt
    }

    /// Distinct data packets that have arrived (§V throughput counter).
    pub fn distinct_received(&self) -> u64 {
        self.distinct_received
    }

    /// Writes the receiver's mutable state. The config contributes shape
    /// tags only: restore requires an identically-configured receiver.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_tag(u64::from(self.config.ack_every));
        w.put_tag(u64::from(self.config.sack));
        w.put_u64(self.rcv_nxt);
        w.put_usize(self.ooo.len());
        for seq in &self.ooo {
            w.put_u64(*seq);
        }
        w.put_u32(self.unacked);
        match self.last_ooo {
            Some(seq) => {
                w.put_bool(true);
                w.put_u64(seq);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.distinct_received);
    }

    /// Reads state written by [`Self::snapshot_into`]; fails with
    /// [`SnapError::TagMismatch`] if this receiver's config differs from the
    /// snapshotted one.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.expect_tag("receiver-ack-every", u64::from(self.config.ack_every))?;
        r.expect_tag("receiver-sack", u64::from(self.config.sack))?;
        self.rcv_nxt = r.get_u64()?;
        let n = r.get_usize()?;
        self.ooo.clear();
        self.ooo.reserve(n);
        for _ in 0..n {
            self.ooo.push(r.get_u64()?);
        }
        if self
            .ooo
            .iter()
            .zip(self.ooo.iter().skip(1))
            .any(|(a, b)| a >= b)
        {
            return Err(SnapError::Invalid("receiver ooo buffer not sorted"));
        }
        self.unacked = r.get_u32()?;
        self.last_ooo = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        self.distinct_received = r.get_u64()?;
        Ok(())
    }

    /// The cumulative ACK for the current state, with SACK blocks when
    /// enabled: contiguous out-of-order ranges, the one holding the most
    /// recent arrival first (RFC 2018's ordering).
    fn make_ack(&self) -> Ack {
        if !self.config.sack || self.ooo.is_empty() {
            return Ack::plain(self.rcv_nxt);
        }
        // Most-recent range first (RFC 2018), then the rest in buffer
        // order; `from_ranges` truncates at the block capacity. Two
        // coalescing passes over the (window-bounded) buffer instead of
        // materializing the ranges keeps this allocation-free.
        let recent = self
            .last_ooo
            .and_then(|last| self.coalesced().find(|&(s, e)| (s..e).contains(&last)));
        let rest = self.coalesced().filter(|r| Some(*r) != recent);
        Ack {
            ack: self.rcv_nxt,
            sack: SackBlocks::from_ranges(recent.into_iter().chain(rest)),
        }
    }

    /// The buffered out-of-order sequences (sorted, distinct) coalesced
    /// into contiguous `[start, end)` ranges, yielded without
    /// materializing them.
    fn coalesced(&self) -> impl Iterator<Item = (Seq, Seq)> + '_ {
        let mut i = 0;
        std::iter::from_fn(move || {
            let start = *self.ooo.get(i)?;
            let mut end = start + 1;
            i += 1;
            while self.ooo.get(i) == Some(&end) {
                end += 1;
                i += 1;
            }
            Some((start, end))
        })
    }

    /// Handles an arriving data segment.
    pub fn on_segment(&mut self, now: SimTime, seg: Segment) -> ReceiverOutput {
        let mut out = ReceiverOutput::default();
        self.on_segment_into(now, seg, &mut out);
        out
    }

    /// Allocation-free form of [`Receiver::on_segment`]: resets and fills
    /// the caller-owned `out`.
    //= pftk#delack-b
    pub fn on_segment_into(&mut self, now: SimTime, seg: Segment, out: &mut ReceiverOutput) {
        out.reset();
        if seg.seq == self.rcv_nxt {
            // In-order: advance, absorb any contiguous buffered segments.
            self.distinct_received += 1;
            self.rcv_nxt += 1;
            let mut absorbed = 0;
            //~ allow(hot_panic): index guarded by the len test on its left
            while absorbed < self.ooo.len() && self.ooo[absorbed] == self.rcv_nxt {
                self.rcv_nxt += 1;
                absorbed += 1;
            }
            if absorbed > 0 {
                self.ooo.drain(..absorbed);
            }
            self.unacked += 1;
            if self.unacked >= self.config.ack_every {
                self.unacked = 0;
                out.acks.push(self.make_ack()); //~ allow(hot_alloc): caller-owned output pool; capacity persists across reset
                out.timer = DelAckTimer::Cancel;
            } else {
                out.timer = DelAckTimer::Arm(now + self.config.delack_timeout);
            }
        } else if seg.seq > self.rcv_nxt {
            // A gap: buffer and emit an immediate duplicate ACK.
            if let Err(pos) = self.ooo.binary_search(&seg.seq) {
                self.ooo.insert(pos, seg.seq); //~ allow(hot_alloc): out-of-order buffer bounded by the receive window
                self.distinct_received += 1;
            }
            self.last_ooo = Some(seg.seq);
            self.unacked = 0;
            out.acks.push(self.make_ack()); //~ allow(hot_alloc): caller-owned output pool; capacity persists across reset
            out.timer = DelAckTimer::Cancel;
        } else {
            // Below rcv_nxt: a spurious retransmission; re-ACK immediately
            // so the sender can resynchronize.
            self.unacked = 0;
            out.acks.push(self.make_ack()); //~ allow(hot_alloc): caller-owned output pool; capacity persists across reset
            out.timer = DelAckTimer::Cancel;
        }
    }

    /// The delayed-ACK timer fired: flush the pending acknowledgment.
    pub fn on_delack_timer(&mut self) -> ReceiverOutput {
        let mut out = ReceiverOutput::default();
        self.on_delack_into(&mut out);
        out
    }

    /// Allocation-free form of [`Receiver::on_delack_timer`]: resets and
    /// fills the caller-owned `out`.
    pub fn on_delack_into(&mut self, out: &mut ReceiverOutput) {
        out.reset();
        if self.unacked > 0 {
            self.unacked = 0;
            out.acks.push(self.make_ack()); //~ allow(hot_alloc): caller-owned output pool; capacity persists across reset
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn seg(seq: Seq) -> Segment {
        Segment {
            seq,
            retransmit: false,
        }
    }

    fn rx() -> Receiver {
        Receiver::new(ReceiverConfig::default())
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let mut r = rx();
        let out = r.on_segment(t(0), seg(0));
        assert!(out.acks.is_empty(), "first segment held for delack");
        assert!(matches!(out.timer, DelAckTimer::Arm(_)));
        let out = r.on_segment(t(1), seg(1));
        assert_eq!(out.acks, vec![Ack::plain(2)]);
        assert_eq!(out.timer, DelAckTimer::Cancel);
    }

    #[test]
    fn ack_every_one_acks_immediately() {
        let config = ReceiverConfig {
            ack_every: 1,
            ..ReceiverConfig::default()
        };
        let mut r = Receiver::new(config);
        let out = r.on_segment(t(0), seg(0));
        assert_eq!(out.acks, vec![Ack::plain(1)]);
    }

    #[test]
    fn delack_timer_flushes_odd_segment() {
        let mut r = rx();
        r.on_segment(t(0), seg(0));
        let out = r.on_delack_timer();
        assert_eq!(out.acks, vec![Ack::plain(1)]);
        // Timer with nothing pending is a no-op.
        let out = r.on_delack_timer();
        assert!(out.acks.is_empty());
    }

    #[test]
    fn out_of_order_triggers_immediate_dupack() {
        let mut r = rx();
        r.on_segment(t(0), seg(0));
        r.on_segment(t(1), seg(1)); // rcv_nxt = 2
        let out = r.on_segment(t(2), seg(3)); // gap at 2
        assert_eq!(out.acks, vec![Ack::plain(2)]);
        let out = r.on_segment(t(3), seg(4));
        assert_eq!(out.acks, vec![Ack::plain(2)], "every OOO segment dupacks");
    }

    #[test]
    fn gap_fill_jumps_cumulative_ack() {
        let mut r = rx();
        r.on_segment(t(0), seg(0));
        r.on_segment(t(1), seg(1));
        r.on_segment(t(2), seg(3));
        r.on_segment(t(3), seg(4));
        // Filling the hole at 2 advances past everything buffered.
        let out = r.on_segment(t(4), seg(2));
        assert_eq!(r.rcv_nxt(), 5);
        // In-order arrival counts toward delack; with ack_every=2 the count
        // was reset by the OOO arrivals, so this is the 1st unacked → held.
        assert!(out.acks.is_empty());
        assert!(matches!(out.timer, DelAckTimer::Arm(_)));
    }

    #[test]
    fn spurious_retransmission_reacked() {
        let mut r = rx();
        r.on_segment(t(0), seg(0));
        r.on_segment(t(1), seg(1));
        let out = r.on_segment(t(2), seg(0));
        assert_eq!(out.acks, vec![Ack::plain(2)]);
    }

    #[test]
    fn distinct_received_ignores_duplicates() {
        let mut r = rx();
        r.on_segment(t(0), seg(0));
        r.on_segment(t(1), seg(2));
        r.on_segment(t(2), seg(2)); // duplicate OOO
        r.on_segment(t(3), seg(0)); // duplicate old
        assert_eq!(r.distinct_received(), 2);
    }

    #[test]
    fn sack_blocks_report_ooo_ranges() {
        let config = ReceiverConfig {
            sack: true,
            ..ReceiverConfig::default()
        };
        let mut r = Receiver::new(config);
        r.on_segment(t(0), seg(0)); // rcv_nxt = 1
                                    // Hole at 1; buffer 2,3 and 5.
        r.on_segment(t(1), seg(2));
        r.on_segment(t(2), seg(3));
        let out = r.on_segment(t(3), seg(5));
        let ack = out.acks[0];
        assert_eq!(ack.ack, 1);
        // Most recent range (5..6) first, then (2..4).
        assert_eq!(ack.sack.ranges(), &[(5, 6), (2, 4)]);
    }

    #[test]
    fn sack_disabled_by_default() {
        let mut r = rx();
        r.on_segment(t(0), seg(0));
        let out = r.on_segment(t(1), seg(3));
        assert!(out.acks[0].sack.is_empty());
    }

    #[test]
    fn sack_blocks_clear_after_hole_fills() {
        let config = ReceiverConfig {
            sack: true,
            ack_every: 1,
            ..ReceiverConfig::default()
        };
        let mut r = Receiver::new(config);
        r.on_segment(t(0), seg(0));
        r.on_segment(t(1), seg(2)); // hole at 1
        let out = r.on_segment(t(2), seg(1)); // fills it
        let ack = out.acks[0];
        assert_eq!(ack.ack, 3);
        assert!(ack.sack.is_empty(), "no OOO data left");
    }

    #[test]
    fn long_in_order_run_acks_half() {
        let mut r = rx();
        let mut acks = 0;
        for i in 0..100 {
            acks += r.on_segment(t(i), seg(i)).acks.len();
        }
        assert_eq!(acks, 50, "b=2 means one ACK per two segments");
        assert_eq!(r.rcv_nxt(), 100);
        assert_eq!(r.distinct_received(), 100);
    }
}
