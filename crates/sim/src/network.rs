//! Multi-flow network simulation: several senders sharing one bottleneck.
//!
//! The single-connection simulator ([`crate::connection`]) feeds the
//! paper's measurement-style experiments; this module exists for the
//! paper's *motivating application* (§I): TCP-friendliness. It lets
//! several TCP flows, constant-bit-rate (CBR) flows, and equation-based
//! TFRC flows ([`crate::tfrc`]) compete for a shared bottleneck (drop-tail
//! or RED), so the workspace can test claims like:
//!
//! * two identical TCP flows share the link fairly;
//! * a CBR flow pinned at the PFTK TCP-friendly rate coexists with TCP,
//!   and one well above it starves TCP;
//! * a TFRC flow driven by Eq. (33) shares with TCP under RED.
//!
//! Topology per flow: `sender → access delay → shared bottleneck queue →
//! tail delay → receiver`, with ACKs returning over a fixed delay. All
//! flows see the same queue, so their losses and queueing delays couple —
//! the mechanism congestion control exists to manage.

use crate::event::EventQueue;
use crate::packet::{Ack, Segment, Seq};
use crate::queue::QueuePolicy;
use crate::receiver::{DelAckTimer, Receiver, ReceiverConfig, ReceiverOutput};
use crate::reno::sender::{Sender, SenderConfig, SenderOutput, TimerCmd};
use crate::rng::SimRng;
use crate::stats::ConnStats;
use crate::tfrc::{LossIntervalEstimator, TfrcConfig, TfrcController};
use crate::time::{SimDuration, SimTime};

/// What kind of traffic a flow sources.
pub enum FlowKind {
    /// A TCP Reno bulk (or finite) transfer.
    Tcp {
        /// Sender tunables.
        sender: SenderConfig,
        /// Receiver tunables.
        receiver: ReceiverConfig,
    },
    /// A constant-bit-rate source: one packet every `interval`, no
    /// congestion response (the "non-TCP flow" of §I).
    Cbr {
        /// Inter-packet interval.
        interval: SimDuration,
    },
    /// An equation-based (simplified TFRC) source: rate driven by the
    /// paper's Eq. (33) at the measured loss-event rate (see
    /// [`crate::tfrc`]).
    Tfrc {
        /// Controller settings.
        config: TfrcConfig,
    },
}

/// Configuration of one flow.
pub struct FlowConfig {
    /// Traffic type.
    pub kind: FlowKind,
    /// One-way delay from sender to the bottleneck.
    pub access_delay: SimDuration,
    /// One-way delay from the bottleneck to the receiver.
    pub tail_delay: SimDuration,
    /// One-way delay of the ACK path back to the sender.
    pub ack_delay: SimDuration,
}

impl FlowConfig {
    /// A TCP flow with symmetric delays summing to `rtt` (half each way,
    /// the forward half split evenly around the bottleneck).
    pub fn tcp(rtt_secs: f64, sender: SenderConfig) -> Self {
        let quarter = SimDuration::from_secs_f64(rtt_secs / 4.0);
        let half = SimDuration::from_secs_f64(rtt_secs / 2.0);
        FlowConfig {
            kind: FlowKind::Tcp {
                sender,
                receiver: ReceiverConfig::default(),
            },
            access_delay: quarter,
            tail_delay: quarter,
            ack_delay: half,
        }
    }

    /// A CBR flow at `rate_pps` packets per second with the same delay
    /// structure as [`FlowConfig::tcp`].
    pub fn cbr(rtt_secs: f64, rate_pps: f64) -> Self {
        assert!(rate_pps > 0.0, "CBR rate must be positive");
        let quarter = SimDuration::from_secs_f64(rtt_secs / 4.0);
        let half = SimDuration::from_secs_f64(rtt_secs / 2.0);
        FlowConfig {
            kind: FlowKind::Cbr {
                interval: SimDuration::from_secs_f64(1.0 / rate_pps),
            },
            access_delay: quarter,
            tail_delay: quarter,
            ack_delay: half,
        }
    }

    /// A TFRC (equation-based) flow with the same delay structure as
    /// [`FlowConfig::tcp`].
    pub fn tfrc(rtt_secs: f64, config: TfrcConfig) -> Self {
        let quarter = SimDuration::from_secs_f64(rtt_secs / 4.0);
        let half = SimDuration::from_secs_f64(rtt_secs / 2.0);
        FlowConfig {
            kind: FlowKind::Tfrc { config },
            access_delay: quarter,
            tail_delay: quarter,
            ack_delay: half,
        }
    }
}

/// Per-flow outcome counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets offered to the network (TCP: transmissions incl. rexmits).
    pub sent: u64,
    /// Packets dropped at the bottleneck.
    pub dropped: u64,
    /// Distinct packets that reached the receiver.
    pub delivered: u64,
    /// TCP ground truth (None for CBR flows).
    pub tcp: Option<ConnStats>,
}

impl FlowStats {
    /// Loss fraction at the bottleneck for this flow.
    pub fn loss_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64 //~ allow(cast): integer count to f64, exact below 2^53
        }
    }
}

// The Tcp variant dwarfs Cbr/Tfrc, but flows are few (one box per flow
// beats an extra indirection on every event).
#[allow(clippy::large_enum_variant)]
enum FlowState {
    Tcp {
        sender: Sender,
        receiver: Receiver,
        rto_gen: u64,
        delack_gen: u64,
    },
    Cbr {
        interval: SimDuration,
        next_seq: Seq,
        delivered: u64,
        sent: u64,
    },
    Tfrc {
        controller: TfrcController,
        estimator: LossIntervalEstimator,
        /// Feedback latency (receiver measurement → sender rate change).
        feedback_delay: SimDuration,
        next_seq: Seq,
        rcv_expected: Seq,
        delivered: u64,
        sent: u64,
    },
}

enum Ev {
    QueueArrive { flow: usize, seg: Segment },
    RxArrive { flow: usize, seg: Segment },
    AckArrive { flow: usize, ack: Ack },
    Rto { flow: usize, gen: u64 },
    DelAck { flow: usize, gen: u64 },
    CbrTick { flow: usize },
    TfrcSend { flow: usize },
    TfrcFeedback { flow: usize },
}

/// The shared-bottleneck network.
pub struct Network {
    now: SimTime,
    queue: EventQueue<Ev>,
    flows: Vec<(FlowConfig, FlowState)>,
    /// Bottleneck service time per packet.
    service: SimDuration,
    /// Time at which the bottleneck server frees up.
    horizon: SimTime,
    policy: Box<dyn QueuePolicy + Send>,
    per_flow_drops: Vec<u64>,
    per_flow_sent: Vec<u64>,
    rng: SimRng,
    started: bool,
}

impl Network {
    /// A network whose bottleneck serves `rate_pps` packets per second
    /// under the given admission policy.
    pub fn new(rate_pps: f64, policy: Box<dyn QueuePolicy + Send>, seed: u64) -> Self {
        assert!(rate_pps > 0.0, "bottleneck rate must be positive");
        Network {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            flows: Vec::new(),
            service: SimDuration::from_secs_f64(1.0 / rate_pps),
            horizon: SimTime::ZERO,
            policy,
            per_flow_drops: Vec::new(),
            per_flow_sent: Vec::new(),
            rng: SimRng::seed_from_u64(seed),
            started: false,
        }
    }

    /// Adds a flow; returns its index.
    pub fn add_flow(&mut self, config: FlowConfig) -> usize {
        let state = match &config.kind {
            FlowKind::Tcp { sender, receiver } => {
                let mut receiver = *receiver;
                // SACK option "negotiation": a SACK sender implies a
                // SACK-reporting receiver.
                if sender.style == crate::reno::sender::RenoStyle::Sack {
                    receiver.sack = true;
                }
                FlowState::Tcp {
                    sender: Sender::new(*sender),
                    receiver: Receiver::new(receiver),
                    rto_gen: 0,
                    delack_gen: 0,
                }
            }
            FlowKind::Cbr { interval } => FlowState::Cbr {
                interval: *interval,
                next_seq: 0,
                delivered: 0,
                sent: 0,
            },
            FlowKind::Tfrc { config } => FlowState::Tfrc {
                controller: TfrcController::new(*config),
                estimator: LossIntervalEstimator::new(config.rtt_secs),
                feedback_delay: SimDuration::from_secs_f64(config.rtt_secs),
                next_seq: 0,
                rcv_expected: 0,
                delivered: 0,
                sent: 0,
            },
        };
        self.flows.push((config, state));
        self.per_flow_drops.push(0);
        self.per_flow_sent.push(0);
        self.flows.len() - 1
    }

    /// Current backlog at the bottleneck, packets.
    fn backlog(&self) -> f64 {
        let residual = self.horizon.saturating_since(self.now);
        residual.as_nanos() as f64 / self.service.as_nanos().max(1) as f64 //~ allow(cast): integer count to f64, exact below 2^53
    }

    /// Runs the network until the clock reaches `until`.
    pub fn run_until(&mut self, until: SimTime) {
        if !self.started {
            self.started = true;
            for i in 0..self.flows.len() {
                match &mut self.flows[i].1 {
                    FlowState::Tcp { sender, .. } => {
                        let out = sender.on_start(SimTime::ZERO);
                        self.apply_sender_output(i, out);
                    }
                    FlowState::Cbr { .. } => {
                        self.queue.schedule(SimTime::ZERO, Ev::CbrTick { flow: i });
                    }
                    FlowState::Tfrc { .. } => {
                        self.queue.schedule(SimTime::ZERO, Ev::TfrcSend { flow: i });
                        self.queue
                            .schedule(SimTime::ZERO, Ev::TfrcFeedback { flow: i });
                    }
                }
            }
        }
        while let Some(at) = self.queue.peek_time() {
            if at > until {
                break;
            }
            let Some((at, ev)) = self.queue.pop() else {
                break;
            };
            self.now = at;
            self.dispatch(ev);
        }
        self.now = until;
    }

    /// Convenience wrapper over [`Network::run_until`].
    pub fn run_for(&mut self, span: SimDuration) {
        self.run_until(self.now + span);
    }

    /// Flushes end-of-run bookkeeping; call once after the final run.
    pub fn finish(&mut self) {
        for (_, state) in &mut self.flows {
            if let FlowState::Tcp { sender, .. } = state {
                sender.finish();
            }
        }
    }

    /// Per-flow statistics, in `add_flow` order.
    pub fn stats(&self) -> Vec<FlowStats> {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, (_, state))| match state {
                FlowState::Tcp {
                    sender, receiver, ..
                } => FlowStats {
                    sent: self.per_flow_sent[i],
                    dropped: self.per_flow_drops[i],
                    delivered: receiver.distinct_received(),
                    tcp: Some({
                        let mut s = sender.stats.clone();
                        s.packets_delivered = receiver.distinct_received();
                        s
                    }),
                },
                FlowState::Cbr {
                    delivered, sent, ..
                } => FlowStats {
                    sent: *sent,
                    dropped: self.per_flow_drops[i],
                    delivered: *delivered,
                    tcp: None,
                },
                FlowState::Tfrc {
                    delivered, sent, ..
                } => FlowStats {
                    sent: *sent,
                    dropped: self.per_flow_drops[i],
                    delivered: *delivered,
                    tcp: None,
                },
            })
            .collect()
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::QueueArrive { flow, seg } => {
                let backlog = self.backlog();
                if self.policy.should_drop(backlog, &mut self.rng) {
                    self.per_flow_drops[flow] += 1;
                    return;
                }
                let start = if self.horizon > self.now {
                    self.horizon
                } else {
                    self.now
                };
                let depart = start + self.service;
                self.horizon = depart;
                let tail = self.flows[flow].0.tail_delay;
                self.queue
                    .schedule(depart + tail, Ev::RxArrive { flow, seg });
            }
            Ev::RxArrive { flow, seg } => match &mut self.flows[flow].1 {
                FlowState::Tcp { receiver, .. } => {
                    let out = receiver.on_segment(self.now, seg);
                    self.apply_receiver_output(flow, out);
                }
                FlowState::Cbr { delivered, .. } => {
                    *delivered += 1;
                }
                FlowState::Tfrc {
                    estimator,
                    rcv_expected,
                    delivered,
                    ..
                } => {
                    *delivered += 1;
                    if seg.seq > *rcv_expected {
                        // Sequence gap: one or more losses.
                        estimator.on_gap(self.now);
                    }
                    estimator.on_packet();
                    *rcv_expected = (*rcv_expected).max(seg.seq + 1);
                }
            },
            Ev::AckArrive { flow, ack } => {
                if let FlowState::Tcp { sender, .. } = &mut self.flows[flow].1 {
                    let out = sender.on_ack(self.now, ack);
                    self.apply_sender_output(flow, out);
                }
            }
            Ev::Rto { flow, gen } => {
                if let FlowState::Tcp {
                    sender, rto_gen, ..
                } = &mut self.flows[flow].1
                {
                    if gen == *rto_gen {
                        let out = sender.on_rto_fired(self.now);
                        self.apply_sender_output(flow, out);
                    }
                }
            }
            Ev::DelAck { flow, gen } => {
                if let FlowState::Tcp {
                    receiver,
                    delack_gen,
                    ..
                } = &mut self.flows[flow].1
                {
                    if gen == *delack_gen {
                        let out = receiver.on_delack_timer();
                        self.apply_receiver_output(flow, out);
                    }
                }
            }
            Ev::TfrcSend { flow } => {
                let access = self.flows[flow].0.access_delay;
                if let FlowState::Tfrc {
                    controller,
                    next_seq,
                    sent,
                    ..
                } = &mut self.flows[flow].1
                {
                    let seg = Segment {
                        seq: *next_seq,
                        retransmit: false,
                    };
                    *next_seq += 1;
                    *sent += 1;
                    let interval = SimDuration::from_secs_f64(1.0 / controller.rate_pps());
                    self.per_flow_sent[flow] += 1;
                    self.queue
                        .schedule(self.now + access, Ev::QueueArrive { flow, seg });
                    self.queue
                        .schedule(self.now + interval, Ev::TfrcSend { flow });
                }
            }
            Ev::TfrcFeedback { flow } => {
                if let FlowState::Tfrc {
                    controller,
                    estimator,
                    feedback_delay,
                    ..
                } = &mut self.flows[flow].1
                {
                    controller.on_feedback(estimator.loss_event_rate());
                    let delay = *feedback_delay;
                    self.queue
                        .schedule(self.now + delay, Ev::TfrcFeedback { flow });
                }
            }
            Ev::CbrTick { flow } => {
                let access = self.flows[flow].0.access_delay;
                if let FlowState::Cbr {
                    interval,
                    next_seq,
                    sent,
                    ..
                } = &mut self.flows[flow].1
                {
                    let seg = Segment {
                        seq: *next_seq,
                        retransmit: false,
                    };
                    *next_seq += 1;
                    *sent += 1;
                    let interval = *interval;
                    self.per_flow_sent[flow] += 1;
                    self.queue
                        .schedule(self.now + access, Ev::QueueArrive { flow, seg });
                    self.queue
                        .schedule(self.now + interval, Ev::CbrTick { flow });
                }
            }
        }
    }

    fn apply_sender_output(&mut self, flow: usize, out: SenderOutput) {
        let access = self.flows[flow].0.access_delay;
        for seg in out.segments {
            self.per_flow_sent[flow] += 1;
            self.queue
                .schedule(self.now + access, Ev::QueueArrive { flow, seg });
        }
        if let TimerCmd::Arm(at) = out.timer {
            if let FlowState::Tcp { rto_gen, .. } = &mut self.flows[flow].1 {
                *rto_gen += 1;
                let gen = *rto_gen;
                self.queue.schedule(at, Ev::Rto { flow, gen });
            }
        }
    }

    fn apply_receiver_output(&mut self, flow: usize, out: ReceiverOutput) {
        let ack_delay = self.flows[flow].0.ack_delay;
        for ack in out.acks {
            self.queue
                .schedule(self.now + ack_delay, Ev::AckArrive { flow, ack });
        }
        match out.timer {
            DelAckTimer::Keep => {}
            DelAckTimer::Arm(at) => {
                if let FlowState::Tcp { delack_gen, .. } = &mut self.flows[flow].1 {
                    *delack_gen += 1;
                    let gen = *delack_gen;
                    self.queue.schedule(at, Ev::DelAck { flow, gen });
                }
            }
            DelAckTimer::Cancel => {
                if let FlowState::Tcp { delack_gen, .. } = &mut self.flows[flow].1 {
                    *delack_gen += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::DropTail;

    fn secs(v: f64) -> SimDuration {
        SimDuration::from_secs_f64(v)
    }

    fn tcp_flow(rtt: f64) -> FlowConfig {
        FlowConfig::tcp(rtt, SenderConfig::default())
    }

    #[test]
    fn single_tcp_flow_fills_the_bottleneck() {
        let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 1);
        net.add_flow(tcp_flow(0.1));
        net.run_for(secs(120.0));
        net.finish();
        let stats = net.stats();
        let rate = stats[0].delivered as f64 / 120.0;
        assert!(
            rate > 80.0,
            "a lone TCP should drive a 100 pkt/s bottleneck near capacity, got {rate}"
        );
    }

    #[test]
    fn two_identical_tcp_flows_share_fairly() {
        let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 2);
        net.add_flow(tcp_flow(0.1));
        net.add_flow(tcp_flow(0.1));
        net.run_for(secs(600.0));
        net.finish();
        let stats = net.stats();
        let (a, b) = (stats[0].delivered as f64, stats[1].delivered as f64);
        let ratio = a.max(b) / a.min(b).max(1.0);
        assert!(ratio < 1.6, "long-run share ratio {ratio:.2} ({a} vs {b})");
        // Together they still fill the pipe.
        assert!((a + b) / 600.0 > 80.0);
    }

    #[test]
    fn shorter_rtt_flow_gets_more() {
        let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 3);
        net.add_flow(tcp_flow(0.05));
        net.add_flow(tcp_flow(0.4));
        net.run_for(secs(600.0));
        net.finish();
        let stats = net.stats();
        assert!(
            stats[0].delivered > stats[1].delivered,
            "RTT bias: short {} vs long {}",
            stats[0].delivered,
            stats[1].delivered
        );
    }

    #[test]
    fn cbr_flow_unresponsive_to_loss() {
        // A CBR at 150% of capacity keeps sending; ~1/3 of it drops.
        let mut net = Network::new(100.0, Box::new(DropTail::new(10)), 4);
        net.add_flow(FlowConfig::cbr(0.1, 150.0));
        net.run_for(secs(60.0));
        let stats = net.stats();
        let sent = stats[0].sent as f64;
        assert!(
            (sent / 60.0 - 150.0).abs() < 5.0,
            "CBR held its rate: {}",
            sent / 60.0
        );
        let loss = stats[0].loss_fraction();
        assert!(
            (loss - 1.0 / 3.0).abs() < 0.05,
            "expected ~33% drops, got {loss}"
        );
    }

    #[test]
    fn aggressive_cbr_starves_tcp() {
        // §I's cautionary tale: an unresponsive flow at link capacity
        // leaves TCP almost nothing.
        let mut net = Network::new(100.0, Box::new(DropTail::new(10)), 5);
        let tcp = net.add_flow(tcp_flow(0.1));
        let cbr = net.add_flow(FlowConfig::cbr(0.1, 100.0));
        net.run_for(secs(300.0));
        net.finish();
        let stats = net.stats();
        let tcp_rate = stats[tcp].delivered as f64 / 300.0;
        let cbr_rate = stats[cbr].delivered as f64 / 300.0;
        assert!(
            cbr_rate > 5.0 * tcp_rate,
            "CBR {cbr_rate:.1} pkt/s should dwarf TCP {tcp_rate:.1} pkt/s"
        );
    }

    #[test]
    fn tfrc_flow_finds_the_link_rate_alone() {
        // A lone TFRC flow should settle near link capacity (it slow-starts
        // past it, takes a loss, and the equation holds it near the knee).
        let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 21);
        net.add_flow(FlowConfig::tfrc(0.1, crate::tfrc::TfrcConfig::for_rtt(0.1)));
        net.run_for(secs(300.0));
        let s = net.stats();
        let goodput = s[0].delivered as f64 / 300.0;
        assert!(
            goodput > 40.0 && goodput <= 101.0,
            "lone TFRC goodput {goodput:.1} pkt/s on a 100 pkt/s link"
        );
    }

    #[test]
    fn tfrc_and_tcp_share_within_a_band_under_red() {
        // The whole point of equation-based congestion control: a TFRC flow
        // competing with TCP gets a comparable (not identical) share. The
        // bottleneck runs RED: drop-tail's burst bias would otherwise spare
        // the evenly-paced TFRC packets and drop TCP's window bursts (see
        // `drop_tail_burst_bias_favors_paced_traffic` below) — the exact
        // pathology RED's randomized early drops were designed to remove.
        let mut net = Network::new(
            100.0,
            Box::new(crate::queue::Red::new(5.0, 20.0, 0.1, 0.02, 40)),
            22,
        );
        let tcp = net.add_flow(tcp_flow(0.1));
        // The TFRC endpoint's RTT estimate includes typical queueing.
        let tfrc = net.add_flow(FlowConfig::tfrc(0.1, crate::tfrc::TfrcConfig::for_rtt(0.2)));
        net.run_for(secs(900.0));
        net.finish();
        let s = net.stats();
        let tcp_rate = s[tcp].delivered as f64 / 900.0;
        let tfrc_rate = s[tfrc].delivered as f64 / 900.0;
        let ratio = tfrc_rate / tcp_rate;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "TFRC {tfrc_rate:.1} vs TCP {tcp_rate:.1} pkt/s (ratio {ratio:.2})"
        );
        // Together they use the link.
        assert!(tcp_rate + tfrc_rate > 60.0);
    }

    #[test]
    fn drop_tail_burst_bias_favors_paced_traffic() {
        // Documented phenomenon (and the reason the fairness test above
        // uses RED): at a drop-tail queue, TCP's window bursts land exactly
        // when the queue is full, while an equation-based flow's paced
        // packets slip through — letting it crowd TCP out even though it
        // obeys its measured-loss equation.
        let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 22);
        let tcp = net.add_flow(tcp_flow(0.1));
        let tfrc = net.add_flow(FlowConfig::tfrc(0.1, crate::tfrc::TfrcConfig::for_rtt(0.2)));
        net.run_for(secs(600.0));
        net.finish();
        let s = net.stats();
        assert!(
            s[tfrc].delivered > 3 * s[tcp].delivered,
            "expected the drop-tail burst bias: TFRC {} vs TCP {}",
            s[tfrc].delivered,
            s[tcp].delivered
        );
    }

    #[test]
    fn tfrc_is_smoother_than_tcp() {
        // Measure per-10s goodput variance for each flow type under the
        // same competing load: TFRC's rate changes by equation, not by
        // halving, so its delivery should fluctuate less.
        let windows = 30usize;
        let measure = |use_tfrc: bool| -> f64 {
            let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 23);
            let probe = if use_tfrc {
                net.add_flow(FlowConfig::tfrc(0.1, crate::tfrc::TfrcConfig::for_rtt(0.2)))
            } else {
                net.add_flow(tcp_flow(0.1))
            };
            net.add_flow(tcp_flow(0.1)); // competing TCP
            let mut deliveries = Vec::new();
            let mut last = 0u64;
            for _ in 0..windows {
                net.run_for(secs(10.0));
                let d = net.stats()[probe].delivered;
                deliveries.push((d - last) as f64);
                last = d;
            }
            // Coefficient of variation over the second half (post warm-up).
            let tail = &deliveries[windows / 2..];
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            let var = tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tail.len() as f64;
            var.sqrt() / mean.max(1.0)
        };
        let cv_tfrc = measure(true);
        let cv_tcp = measure(false);
        assert!(
            cv_tfrc < cv_tcp * 1.5,
            "TFRC CV {cv_tfrc:.3} should not be rougher than TCP CV {cv_tcp:.3}"
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut net = Network::new(80.0, Box::new(DropTail::new(20)), seed);
            net.add_flow(tcp_flow(0.1));
            net.add_flow(FlowConfig::cbr(0.1, 30.0));
            net.run_for(secs(120.0));
            net.finish();
            net.stats()
                .iter()
                .map(|s| (s.sent, s.dropped, s.delivered))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn finite_tcp_flow_completes_in_shared_network() {
        let sender = SenderConfig {
            data_limit: Some(500),
            ..SenderConfig::default()
        };
        let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 8);
        net.add_flow(FlowConfig::tcp(0.1, sender));
        net.add_flow(FlowConfig::cbr(0.1, 40.0)); // background load
        net.run_for(secs(120.0));
        net.finish();
        let stats = net.stats();
        assert_eq!(stats[0].delivered, 500, "transfer must complete");
    }
}
