//! Packet-loss processes.
//!
//! The paper assumes losses are *correlated within a round* (one loss dooms
//! the rest of the round) and *independent across rounds* (§II), while noting
//! that real Internet loss is bursty (ref \[23\]) and that the model nevertheless
//! "was able to predict the throughput of TCP connections quite well, even
//! with Bernoulli losses" (§IV). We implement the whole menagerie so the
//! benchmarks can compare the model's robustness across loss processes:
//!
//! * [`NoLoss`] — control;
//! * [`Bernoulli`] — i.i.d. per-packet loss;
//! * [`RoundCorrelated`] — the paper's §II assumption, parameterized by the
//!   *first-loss* probability `p`;
//! * [`GilbertElliott`] — two-state bursty loss (ref \[23\]'s observation),
//!   per-packet chain;
//! * [`TimedGilbertElliott`] — two-state bursty loss with state durations
//!   in *seconds*: loss episodes that outlast the RTO, producing the
//!   exponential-backoff sequences of Table II's T1+ columns;
//! * [`Deterministic`] — drop every `n`-th packet (for exact-scenario unit
//!   tests).
//!
//! Implementations see every data transmission in order via
//! [`LossModel::should_drop`] and are told when a round boundary passes via
//! [`LossModel::on_round_boundary`] (the packet-level simulator approximates
//! rounds by flight boundaries; the rounds-based simulator has exact rounds).

use crate::rng::SimRng;
use crate::time::SimTime;
use pftk_snap::{SnapError, SnapReader, SnapResult, SnapWriter};

/// A loss process: decides the fate of each transmitted data packet.
pub trait LossModel {
    /// Returns `true` if the transmission departing at `now` should be
    /// dropped. Memoryless processes ignore `now`; time-correlated ones
    /// ([`TimedGilbertElliott`]) advance their state by it — which matters
    /// during retransmission timeouts, when seconds pass between packets.
    fn should_drop(&mut self, now: SimTime, rng: &mut SimRng) -> bool;

    /// Signals that a new round (window flight) has begun. Processes with
    /// intra-round correlation reset here; memoryless processes ignore it.
    fn on_round_boundary(&mut self) {}

    /// A short human-readable label for reports.
    fn label(&self) -> &'static str;
}

/// Lossless control channel.
#[derive(Debug, Clone, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    #[inline]
    fn should_drop(&mut self, _now: SimTime, _rng: &mut SimRng) -> bool {
        false
    }
    fn label(&self) -> &'static str {
        "none"
    }
}

/// Independent (Bernoulli) per-packet loss with probability `p`.
#[derive(Debug, Clone)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli dropper; `p` is clamped to `[0, 1]`.
    pub fn new(p: f64) -> Self {
        Bernoulli {
            p: p.clamp(0.0, 1.0),
        }
    }

    /// The per-packet drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl LossModel for Bernoulli {
    #[inline]
    fn should_drop(&mut self, _now: SimTime, rng: &mut SimRng) -> bool {
        rng.chance(self.p)
    }
    fn label(&self) -> &'static str {
        "bernoulli"
    }
}

/// The paper's loss model: within a round, once one packet is lost *every
/// subsequent packet of that round is lost too*; the first packet of each
/// round (and each packet until the first loss) is lost independently with
/// probability `p`. This makes `p` exactly the paper's "probability that a
/// packet is lost, given that either it is the first packet in its round or
/// the preceding packet in its round is not lost."
#[derive(Debug, Clone)]
pub struct RoundCorrelated {
    p: f64,
    dropping_rest_of_round: bool,
}

impl RoundCorrelated {
    /// Creates the §II loss process with first-loss probability `p`.
    pub fn new(p: f64) -> Self {
        RoundCorrelated {
            p: p.clamp(0.0, 1.0),
            dropping_rest_of_round: false,
        }
    }
}

impl LossModel for RoundCorrelated {
    #[inline]
    fn should_drop(&mut self, _now: SimTime, rng: &mut SimRng) -> bool {
        if self.dropping_rest_of_round {
            return true;
        }
        if rng.chance(self.p) {
            self.dropping_rest_of_round = true;
            true
        } else {
            false
        }
    }

    fn on_round_boundary(&mut self) {
        self.dropping_rest_of_round = false;
    }

    fn label(&self) -> &'static str {
        "round-correlated"
    }
}

/// Two-state Gilbert–Elliott burst-loss process: a Markov chain alternating
/// between a Good state (loss probability `p_good`, usually ≈0) and a Bad
/// state (loss probability `p_bad`, usually large), with transition
/// probabilities `p_g2b` and `p_b2g` evaluated per packet.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    p_good: f64,
    p_bad: f64,
    p_g2b: f64,
    p_b2g: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates the chain in the Good state.
    pub fn new(p_good: f64, p_bad: f64, p_g2b: f64, p_b2g: f64) -> Self {
        GilbertElliott {
            p_good: p_good.clamp(0.0, 1.0),
            p_bad: p_bad.clamp(0.0, 1.0),
            p_g2b: p_g2b.clamp(0.0, 1.0),
            p_b2g: p_b2g.clamp(0.0, 1.0),
            in_bad: false,
        }
    }

    /// A convenience construction from a target long-run loss rate and a
    /// mean burst length (in packets): Bad drops everything, Good drops
    /// nothing, stationary Bad occupancy = `loss_rate`.
    pub fn from_rate_and_burst(loss_rate: f64, mean_burst: f64) -> Self {
        let loss_rate = loss_rate.clamp(1e-9, 0.999);
        let mean_burst = mean_burst.max(1.0);
        let p_b2g = 1.0 / mean_burst;
        // Stationary bad fraction = p_g2b / (p_g2b + p_b2g) = loss_rate.
        let p_g2b = loss_rate * p_b2g / (1.0 - loss_rate);
        GilbertElliott::new(0.0, 1.0, p_g2b, p_b2g)
    }

    /// True while the chain sits in the Bad (bursty-loss) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

impl LossModel for GilbertElliott {
    #[inline]
    fn should_drop(&mut self, _now: SimTime, rng: &mut SimRng) -> bool {
        // Transition first, then emit: a per-packet-step chain.
        let flip = if self.in_bad {
            rng.chance(self.p_b2g)
        } else {
            rng.chance(self.p_g2b)
        };
        if flip {
            self.in_bad = !self.in_bad;
        }
        let p = if self.in_bad { self.p_bad } else { self.p_good };
        rng.chance(p)
    }

    fn label(&self) -> &'static str {
        "gilbert-elliott"
    }
}

/// Drops exactly every `period`-th transmission (1-indexed): packet numbers
/// `period, 2·period, …`. Deterministic scaffolding for unit tests.
#[derive(Debug, Clone)]
pub struct Deterministic {
    period: u64,
    count: u64,
}

impl Deterministic {
    /// Drops every `period`-th packet; `period == 0` never drops.
    pub fn every(period: u64) -> Self {
        Deterministic { period, count: 0 }
    }
}

impl LossModel for Deterministic {
    #[inline]
    fn should_drop(&mut self, _now: SimTime, _rng: &mut SimRng) -> bool {
        if self.period == 0 {
            return false;
        }
        self.count += 1;
        self.count.is_multiple_of(self.period)
    }
    fn label(&self) -> &'static str {
        "deterministic"
    }
}

/// A **time-based** Gilbert–Elliott process: the chain alternates between a
/// Good and a Bad state whose *durations are drawn in seconds* (exponential
/// with the configured means), independent of the packet rate. Every packet
/// sent while the chain is Bad is lost.
///
/// This is the loss process that produces realistic *exponential backoff*:
/// a bad episode lasting longer than the RTO kills the timeout
/// retransmissions too, chaining T1/T2/… sequences exactly as Table II's
/// backoff columns show. The per-packet [`GilbertElliott`] cannot model
/// this: packets are its clock, so during a timeout (one probe per RTO) the
/// chain barely advances — a bad state effectively *freezes* across
/// arbitrarily long wall-clock gaps, producing pathological 64×-capped
/// timeout sequences instead of episode-sized ones (demonstrated in the
/// `burst_loss_backoff` integration tests).
#[derive(Debug, Clone)]
pub struct TimedGilbertElliott {
    mean_good_secs: f64,
    mean_bad_secs: f64,
    in_bad: bool,
    /// When the current state expires (lazily extended as time passes).
    next_flip: SimTime,
    initialized: bool,
}

impl TimedGilbertElliott {
    /// A chain with the given mean state durations (seconds), starting Good.
    pub fn new(mean_good_secs: f64, mean_bad_secs: f64) -> Self {
        assert!(
            mean_good_secs > 0.0 && mean_bad_secs > 0.0,
            "state durations must be positive"
        );
        TimedGilbertElliott {
            mean_good_secs,
            mean_bad_secs,
            in_bad: false,
            next_flip: SimTime::ZERO,
            initialized: false,
        }
    }

    /// Convenience: pick the Good-state mean so the long-run fraction of
    /// time spent Bad equals `loss_rate`, with Bad episodes of
    /// `mean_bad_secs` each.
    pub fn from_rate_and_burst_secs(loss_rate: f64, mean_bad_secs: f64) -> Self {
        let loss_rate = loss_rate.clamp(1e-6, 0.95);
        let mean_good = mean_bad_secs * (1.0 - loss_rate) / loss_rate;
        TimedGilbertElliott::new(mean_good, mean_bad_secs)
    }

    fn draw_duration(&self, mean: f64, rng: &mut SimRng) -> f64 {
        -mean * rng.open01().ln()
    }

    fn advance_to(&mut self, now: SimTime, rng: &mut SimRng) {
        if !self.initialized {
            self.initialized = true;
            let d = self.draw_duration(self.mean_good_secs, rng);
            self.next_flip = now + crate::time::SimDuration::from_secs_f64(d);
        }
        while now >= self.next_flip {
            self.in_bad = !self.in_bad;
            let mean = if self.in_bad {
                self.mean_bad_secs
            } else {
                self.mean_good_secs
            };
            let d = self.draw_duration(mean, rng);
            self.next_flip += crate::time::SimDuration::from_secs_f64(d);
        }
    }

    /// True while the chain sits in the Bad state (after advancing to `now`).
    pub fn is_bad_at(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        self.advance_to(now, rng);
        self.in_bad
    }

    /// Writes the chain's cursor (state, expiry, lazily-initialized flag).
    /// Shared by the loss-process and fault-impairment snapshot paths.
    pub(crate) fn state_snapshot_into(&self, w: &mut SnapWriter) {
        w.put_bool(self.in_bad);
        w.put_u64(self.next_flip.as_nanos());
        w.put_bool(self.initialized);
    }

    /// Reads a cursor written by [`Self::state_snapshot_into`].
    pub(crate) fn state_restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.in_bad = r.get_bool()?;
        self.next_flip = SimTime::from_nanos(r.get_u64()?);
        self.initialized = r.get_bool()?;
        Ok(())
    }
}

impl LossModel for TimedGilbertElliott {
    #[inline]
    fn should_drop(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        self.advance_to(now, rng);
        self.in_bad
    }

    fn label(&self) -> &'static str {
        "timed-gilbert-elliott"
    }
}

/// A union of loss processes: a packet is dropped if **any** component
/// drops it. Used by the testbed to mix isolated losses (which produce
/// triple-duplicate recoveries) with timed burst losses (which produce
/// timeout sequences), calibrated independently against a Table II row's
/// TD and TO counts.
pub struct Mixed {
    components: Vec<LossKind>,
}

impl std::fmt::Debug for Mixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixed")
            .field("components", &self.components.len())
            .finish()
    }
}

impl Mixed {
    /// Combines the given boxed processes (retained for API compatibility;
    /// each component pays one virtual call per packet).
    pub fn new(components: Vec<Box<dyn LossModel + Send>>) -> Self {
        Mixed {
            components: components.into_iter().map(LossKind::Dyn).collect(),
        }
    }

    /// Combines the given monomorphized processes: component draws inline,
    /// with no per-packet virtual dispatch.
    pub fn from_kinds(components: Vec<LossKind>) -> Self {
        Mixed { components }
    }
}

impl LossModel for Mixed {
    #[inline]
    fn should_drop(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        // Every component must observe every packet (stateful processes
        // advance on each call), so no short-circuiting.
        let mut drop = false;
        for c in &mut self.components {
            drop |= c.should_drop(now, rng);
        }
        drop
    }

    fn on_round_boundary(&mut self) {
        for c in &mut self.components {
            c.on_round_boundary();
        }
    }

    fn label(&self) -> &'static str {
        "mixed"
    }
}

/// A closed sum of the loss processes, so the packet-level hot path can
/// dispatch `should_drop` with an inlined `match` instead of a virtual call
/// per packet.
///
/// The connection builder accepts `impl Into<LossKind>`, and every concrete
/// model (bare or boxed) converts losslessly, so existing
/// `.loss(Box::new(Bernoulli::new(p)))` call sites monomorphize without
/// source changes. Truly dynamic processes still fit via [`LossKind::Dyn`]
/// (the `From<Box<dyn LossModel + Send>>` impl), which preserves the old
/// one-virtual-call-per-packet behavior for that model only.
pub enum LossKind {
    /// [`NoLoss`], inlined.
    None(NoLoss),
    /// [`Bernoulli`], inlined.
    Bernoulli(Bernoulli),
    /// [`RoundCorrelated`], inlined.
    RoundCorrelated(RoundCorrelated),
    /// [`GilbertElliott`], inlined.
    GilbertElliott(GilbertElliott),
    /// [`TimedGilbertElliott`], inlined.
    TimedGilbertElliott(TimedGilbertElliott),
    /// [`Deterministic`], inlined.
    Deterministic(Deterministic),
    /// [`Mixed`], with each component itself a `LossKind`.
    Mixed(Mixed),
    /// Escape hatch for loss processes defined outside this module;
    /// dispatches virtually like the pre-enum engine did.
    Dyn(Box<dyn LossModel + Send>),
}

impl std::fmt::Debug for LossKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("LossKind").field(&self.label()).finish()
    }
}

impl LossModel for LossKind {
    #[inline]
    fn should_drop(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        match self {
            LossKind::None(m) => m.should_drop(now, rng),
            LossKind::Bernoulli(m) => m.should_drop(now, rng),
            LossKind::RoundCorrelated(m) => m.should_drop(now, rng),
            LossKind::GilbertElliott(m) => m.should_drop(now, rng),
            LossKind::TimedGilbertElliott(m) => m.should_drop(now, rng),
            LossKind::Deterministic(m) => m.should_drop(now, rng),
            LossKind::Mixed(m) => m.should_drop(now, rng),
            LossKind::Dyn(m) => m.should_drop(now, rng),
        }
    }

    #[inline]
    fn on_round_boundary(&mut self) {
        match self {
            LossKind::None(m) => m.on_round_boundary(),
            LossKind::Bernoulli(m) => m.on_round_boundary(),
            LossKind::RoundCorrelated(m) => m.on_round_boundary(),
            LossKind::GilbertElliott(m) => m.on_round_boundary(),
            LossKind::TimedGilbertElliott(m) => m.on_round_boundary(),
            LossKind::Deterministic(m) => m.on_round_boundary(),
            LossKind::Mixed(m) => m.on_round_boundary(),
            LossKind::Dyn(m) => m.on_round_boundary(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            LossKind::None(m) => m.label(),
            LossKind::Bernoulli(m) => m.label(),
            LossKind::RoundCorrelated(m) => m.label(),
            LossKind::GilbertElliott(m) => m.label(),
            LossKind::TimedGilbertElliott(m) => m.label(),
            LossKind::Deterministic(m) => m.label(),
            LossKind::Mixed(m) => m.label(),
            LossKind::Dyn(m) => m.label(),
        }
    }
}

impl LossKind {
    /// Stable numeric code for the variant, used as a snapshot shape tag.
    fn variant_tag(&self) -> u64 {
        match self {
            LossKind::None(_) => 0,
            LossKind::Bernoulli(_) => 1,
            LossKind::RoundCorrelated(_) => 2,
            LossKind::GilbertElliott(_) => 3,
            LossKind::TimedGilbertElliott(_) => 4,
            LossKind::Deterministic(_) => 5,
            LossKind::Mixed(_) => 6,
            LossKind::Dyn(_) => 7,
        }
    }

    /// Writes the process's mutable cursor (burst state, episode expiry,
    /// drop counter, …). Parameters (`p`, state means, period) are config:
    /// restore requires an identically-configured process, enforced by the
    /// variant tag. [`LossKind::Dyn`] is opaque and unsupported.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.put_tag(self.variant_tag());
        match self {
            LossKind::None(_) | LossKind::Bernoulli(_) => {}
            LossKind::RoundCorrelated(m) => w.put_bool(m.dropping_rest_of_round),
            LossKind::GilbertElliott(m) => w.put_bool(m.in_bad),
            LossKind::TimedGilbertElliott(m) => m.state_snapshot_into(w),
            LossKind::Deterministic(m) => w.put_u64(m.count),
            LossKind::Mixed(m) => {
                w.put_tag(m.components.len() as u64); //~ allow(cast): usize length to u64, lossless on this platform set
                for c in &m.components {
                    c.snapshot_into(w)?;
                }
            }
            LossKind::Dyn(_) => {
                return Err(SnapError::Unsupported(
                    "LossKind::Dyn processes cannot be snapshotted",
                ))
            }
        }
        Ok(())
    }

    /// Reads a cursor written by [`Self::snapshot_into`]; fails with a tag
    /// mismatch if this process's variant differs from the snapshotted one.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        let tag = self.variant_tag();
        r.expect_tag("loss-kind", tag)?;
        match self {
            LossKind::None(_) | LossKind::Bernoulli(_) => {}
            LossKind::RoundCorrelated(m) => m.dropping_rest_of_round = r.get_bool()?,
            LossKind::GilbertElliott(m) => m.in_bad = r.get_bool()?,
            LossKind::TimedGilbertElliott(m) => m.state_restore_from(r)?,
            LossKind::Deterministic(m) => m.count = r.get_u64()?,
            LossKind::Mixed(m) => {
                r.expect_tag("loss-mixed-len", m.components.len() as u64)?; //~ allow(cast): usize length to u64, lossless on this platform set
                for c in &mut m.components {
                    c.restore_from(r)?;
                }
            }
            LossKind::Dyn(_) => {
                return Err(SnapError::Unsupported(
                    "LossKind::Dyn processes cannot be snapshotted",
                ))
            }
        }
        Ok(())
    }
}

/// Generates the lossless conversions from a concrete model (bare or
/// boxed — boxed because historical call sites write `Box::new(...)`).
macro_rules! loss_kind_from {
    ($($ty:ident => $variant:ident),* $(,)?) => {
        $(
            impl From<$ty> for LossKind {
                fn from(m: $ty) -> Self {
                    LossKind::$variant(m)
                }
            }
            impl From<Box<$ty>> for LossKind {
                fn from(m: Box<$ty>) -> Self {
                    LossKind::$variant(*m)
                }
            }
        )*
    };
}

loss_kind_from! {
    NoLoss => None,
    Bernoulli => Bernoulli,
    RoundCorrelated => RoundCorrelated,
    GilbertElliott => GilbertElliott,
    TimedGilbertElliott => TimedGilbertElliott,
    Deterministic => Deterministic,
    Mixed => Mixed,
}

impl From<Box<dyn LossModel + Send>> for LossKind {
    fn from(m: Box<dyn LossModel + Send>) -> Self {
        LossKind::Dyn(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1234)
    }

    fn measure(model: &mut dyn LossModel, n: u64, round_len: u64) -> f64 {
        let mut r = rng();
        let mut drops = 0u64;
        for i in 0..n {
            if round_len > 0 && i % round_len == 0 {
                model.on_round_boundary();
            }
            // One packet per (simulated) millisecond.
            let now = SimTime::from_nanos(i * 1_000_000);
            if model.should_drop(now, &mut r) {
                drops += 1;
            }
        }
        drops as f64 / n as f64
    }

    #[test]
    fn no_loss_never_drops() {
        assert_eq!(measure(&mut NoLoss, 10_000, 0), 0.0);
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let mut m = Bernoulli::new(0.07);
        let rate = measure(&mut m, 300_000, 0);
        assert!((rate - 0.07).abs() < 0.005, "rate={rate}");
        assert_eq!(m.p(), 0.07);
    }

    #[test]
    fn bernoulli_clamps() {
        assert_eq!(Bernoulli::new(7.0).p(), 1.0);
        assert_eq!(Bernoulli::new(-3.0).p(), 0.0);
    }

    #[test]
    fn round_correlated_dooms_rest_of_round() {
        let mut m = RoundCorrelated::new(1.0); // first packet always lost
        let mut r = rng();
        let t = SimTime::ZERO;
        m.on_round_boundary();
        assert!(m.should_drop(t, &mut r));
        // Everything until the next boundary is lost.
        for _ in 0..10 {
            assert!(m.should_drop(t, &mut r));
        }
        m.on_round_boundary();
        // New round: p=1 drops again immediately, but the *state* reset.
        let mut m2 = RoundCorrelated::new(0.0);
        m2.on_round_boundary();
        let mut r2 = rng();
        assert!(!m2.should_drop(t, &mut r2));
    }

    #[test]
    fn round_correlated_first_loss_rate_is_p() {
        // Measure the *first-loss* probability: fraction of rounds whose
        // first packet survives k-1 then dies, aggregated as: the per-round
        // "any loss" rate should be 1-(1-p)^w.
        let p = 0.02;
        let w = 10u64;
        let mut m = RoundCorrelated::new(p);
        let mut r = rng();
        let rounds = 100_000;
        let mut rounds_with_loss = 0;
        for _ in 0..rounds {
            m.on_round_boundary();
            let mut lost = false;
            for _ in 0..w {
                if m.should_drop(SimTime::ZERO, &mut r) {
                    lost = true;
                }
            }
            if lost {
                rounds_with_loss += 1;
            }
        }
        let measured = rounds_with_loss as f64 / rounds as f64;
        let expect = 1.0 - (1.0f64 - p).powi(w as i32);
        assert!(
            (measured - expect).abs() < 0.005,
            "measured={measured} expect={expect}"
        );
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut m = GilbertElliott::from_rate_and_burst(0.05, 5.0);
        let rate = measure(&mut m, 500_000, 0);
        assert!((rate - 0.05).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Mean run length of consecutive drops should approach the
        // configured burst length, far above the Bernoulli value of
        // 1/(1-p) ≈ 1.05.
        let mut m = GilbertElliott::from_rate_and_burst(0.05, 8.0);
        let mut r = rng();
        let mut bursts = 0u64;
        let mut dropped = 0u64;
        let mut in_burst = false;
        for _ in 0..500_000 {
            if m.should_drop(SimTime::ZERO, &mut r) {
                dropped += 1;
                if !in_burst {
                    bursts += 1;
                    in_burst = true;
                }
            } else {
                in_burst = false;
            }
        }
        let mean_burst = dropped as f64 / bursts as f64;
        assert!(mean_burst > 4.0, "mean burst {mean_burst} not bursty");
    }

    #[test]
    fn deterministic_period() {
        let mut m = Deterministic::every(3);
        let mut r = rng();
        let pattern: Vec<bool> = (0..9)
            .map(|_| m.should_drop(SimTime::ZERO, &mut r))
            .collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
        let mut never = Deterministic::every(0);
        assert!(!(0..100).any(|_| never.should_drop(SimTime::ZERO, &mut r)));
    }

    #[test]
    fn timed_ge_long_run_fraction() {
        let mut m = TimedGilbertElliott::from_rate_and_burst_secs(0.1, 2.0);
        let mut r = rng();
        let mut drops = 0u64;
        let n = 200_000u64;
        for i in 0..n {
            // Sample every 10 ms over 2000 s of simulated time.
            let now = SimTime::from_nanos(i * 10_000_000);
            drops += m.should_drop(now, &mut r) as u64;
        }
        let frac = drops as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.03, "bad-time fraction {frac}");
    }

    #[test]
    fn timed_ge_episodes_persist_in_time() {
        // Within a bad episode, every probe drops — including probes spaced
        // like RTO retransmissions (seconds apart, if the episode lasts).
        let mut m = TimedGilbertElliott::from_rate_and_burst_secs(0.3, 50.0);
        let mut r = rng();
        // March forward until the chain goes bad.
        let mut t_ns = 0u64;
        while !m.should_drop(SimTime::from_nanos(t_ns), &mut r) {
            t_ns += 100_000_000; // 100 ms steps
            assert!(t_ns < 20_000_000_000_000, "never went bad");
        }
        // A 50 s mean episode almost surely covers the next 100 ms.
        assert!(m.should_drop(SimTime::from_nanos(t_ns + 100_000_000), &mut r));
    }

    #[test]
    fn timed_ge_time_ordering_required_and_deterministic() {
        let mut a = TimedGilbertElliott::new(1.0, 1.0);
        let mut b = TimedGilbertElliott::new(1.0, 1.0);
        let mut ra = SimRng::seed_from_u64(5);
        let mut rb = SimRng::seed_from_u64(5);
        for i in 0..10_000u64 {
            let now = SimTime::from_nanos(i * 5_000_000);
            assert_eq!(a.should_drop(now, &mut ra), b.should_drop(now, &mut rb));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn timed_ge_rejects_zero_durations() {
        let _ = TimedGilbertElliott::new(0.0, 1.0);
    }

    #[test]
    fn mixed_unions_components() {
        let mut m = Mixed::new(vec![
            Box::new(Deterministic::every(2)),
            Box::new(Deterministic::every(3)),
        ]);
        let mut r = rng();
        // Packets 1..=6: component A drops 2,4,6; B drops 3,6.
        let drops: Vec<bool> = (0..6)
            .map(|_| m.should_drop(SimTime::ZERO, &mut r))
            .collect();
        assert_eq!(drops, vec![false, true, true, true, false, true]);
    }

    #[test]
    fn mixed_forwards_round_boundaries() {
        let mut m = Mixed::new(vec![Box::new(RoundCorrelated::new(1.0))]);
        let mut r = rng();
        assert!(m.should_drop(SimTime::ZERO, &mut r));
        assert!(m.should_drop(SimTime::ZERO, &mut r)); // rest of round doomed
        m.on_round_boundary();
        let mut clean = Mixed::new(vec![Box::new(RoundCorrelated::new(0.0))]);
        clean.on_round_boundary();
        assert!(!clean.should_drop(SimTime::ZERO, &mut r));
    }

    #[test]
    fn empty_mixed_never_drops() {
        let mut m = Mixed::new(vec![]);
        let mut r = rng();
        assert!(!(0..100).any(|_| m.should_drop(SimTime::ZERO, &mut r)));
    }

    #[test]
    fn loss_kind_draws_match_underlying_model() {
        // Same seed, same draw sequence: the enum wrapper must consume the
        // RNG identically to the bare model (bit-identical replay depends
        // on it).
        let mut bare = GilbertElliott::from_rate_and_burst(0.05, 5.0);
        let mut kind = LossKind::from(Box::new(GilbertElliott::from_rate_and_burst(0.05, 5.0)));
        let mut ra = rng();
        let mut rb = rng();
        for i in 0..10_000u64 {
            let now = SimTime::from_nanos(i * 1_000_000);
            assert_eq!(
                bare.should_drop(now, &mut ra),
                kind.should_drop(now, &mut rb)
            );
            if i % 17 == 0 {
                bare.on_round_boundary();
                kind.on_round_boundary();
            }
        }
        assert_eq!(kind.label(), "gilbert-elliott");
    }

    #[test]
    fn loss_kind_dyn_fallback_matches() {
        let boxed: Box<dyn LossModel + Send> = Box::new(Deterministic::every(3));
        let mut kind = LossKind::from(boxed);
        let mut r = rng();
        let pattern: Vec<bool> = (0..6)
            .map(|_| kind.should_drop(SimTime::ZERO, &mut r))
            .collect();
        assert_eq!(pattern, vec![false, false, true, false, false, true]);
        assert_eq!(kind.label(), "deterministic");
    }

    #[test]
    fn mixed_from_kinds_matches_boxed_mixed() {
        let mut boxed = Mixed::new(vec![
            Box::new(Bernoulli::new(0.1)),
            Box::new(RoundCorrelated::new(0.05)),
        ]);
        let mut kinds = Mixed::from_kinds(vec![
            Bernoulli::new(0.1).into(),
            RoundCorrelated::new(0.05).into(),
        ]);
        let mut ra = rng();
        let mut rb = rng();
        for i in 0..20_000u64 {
            if i % 13 == 0 {
                boxed.on_round_boundary();
                kinds.on_round_boundary();
            }
            assert_eq!(
                boxed.should_drop(SimTime::ZERO, &mut ra),
                kinds.should_drop(SimTime::ZERO, &mut rb)
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            NoLoss.label(),
            Bernoulli::new(0.1).label(),
            RoundCorrelated::new(0.1).label(),
            GilbertElliott::new(0.0, 1.0, 0.1, 0.2).label(),
            Deterministic::every(2).label(),
            TimedGilbertElliott::new(1.0, 1.0).label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
