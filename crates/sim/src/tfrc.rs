//! A simplified TFRC endpoint: equation-based congestion control built on
//! the paper's approximate model (Eq. (33)) — the control law that RFC 5348
//! later standardized, and the §I application that motivated the model.
//!
//! Faithful pieces:
//!
//! * **loss-event detection** — sequence gaps at the receiver, with gaps
//!   inside one RTT coalesced into a single loss event (the paper's
//!   loss-*indication* notion, and RFC 5348 §5.2);
//! * **average loss interval** — the weighted mean of the last eight
//!   closed loss-event intervals with weights `[1,1,1,1,0.8,0.6,0.4,0.2]`,
//!   including the open interval when that raises the mean (RFC 5348 §5.4);
//! * **the control equation** — send rate = Eq. (33) at the measured loss
//!   event rate.
//!
//! Simplifications (documented, deliberate): feedback is computed at the
//! receiver and applied after one configured feedback delay rather than via
//! explicit feedback packets; the RTT is a configured estimate instead of a
//! measured one; there is no oscillation damping or idle-period handling.

use crate::time::SimTime;
use pftk_model::params::ModelParams;
use pftk_model::sendrate::approx_model;
use pftk_model::units::LossProb;
use std::collections::VecDeque;

/// RFC 5348 §5.4 loss-interval weights, most recent first.
const WEIGHTS: [f64; 8] = [1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2];

/// Receiver-side loss-event-rate estimator (the average-loss-interval
/// method).
#[derive(Debug, Clone)]
pub struct LossIntervalEstimator {
    /// Closed intervals (packets between consecutive loss-event starts),
    /// most recent first; at most 8 kept.
    closed: VecDeque<u64>,
    /// Packets since the current loss event started (the open interval).
    open: u64,
    /// When the current loss event started.
    last_event_at: Option<SimTime>,
    /// Gaps within this span of the previous event are the same event.
    coalesce_secs: f64,
}

impl LossIntervalEstimator {
    /// An estimator coalescing losses within `rtt_secs` into one event.
    pub fn new(rtt_secs: f64) -> Self {
        assert!(rtt_secs > 0.0, "rtt must be positive");
        LossIntervalEstimator {
            closed: VecDeque::new(),
            open: 0,
            last_event_at: None,
            coalesce_secs: rtt_secs,
        }
    }

    /// A packet arrived in order (or filled a hole).
    pub fn on_packet(&mut self) {
        self.open += 1;
    }

    /// A sequence gap was observed at `now`. Returns `true` when this
    /// starts a *new* loss event (not coalesced into the previous one).
    pub fn on_gap(&mut self, now: SimTime) -> bool {
        if let Some(last) = self.last_event_at {
            if now.saturating_since(last).as_secs_f64() < self.coalesce_secs {
                return false; // same loss event
            }
        }
        // Close the running interval and start a new event.
        if self.last_event_at.is_some() {
            self.closed.push_front(self.open);
            if self.closed.len() > WEIGHTS.len() {
                self.closed.pop_back();
            }
        }
        self.open = 0;
        self.last_event_at = Some(now);
        true
    }

    /// The average loss interval (RFC 5348 §5.4): weighted mean of the
    /// closed intervals, taking the open interval into account when it
    /// raises the mean. `None` until the first loss event.
    pub fn average_interval(&self) -> Option<f64> {
        self.last_event_at?;
        if self.closed.is_empty() {
            // Only the open interval exists; use it directly (bootstraps
            // the estimator right after the first event).
            return Some(self.open.max(1) as f64); //~ allow(cast): integer count to f64, exact below 2^53
        }
        let weighted = |vals: &mut dyn Iterator<Item = u64>| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for (v, w) in vals.zip(WEIGHTS.iter()) {
                num += v as f64 * w; //~ allow(cast): integer count to f64, exact below 2^53
                den += w;
            }
            num / den
        };
        let hist = weighted(&mut self.closed.iter().copied());
        let with_open =
            weighted(&mut std::iter::once(self.open).chain(self.closed.iter().copied()));
        Some(hist.max(with_open))
    }

    /// The loss-event rate `p = 1 / average interval`; `None` before any
    /// loss.
    pub fn loss_event_rate(&self) -> Option<f64> {
        self.average_interval()
            .map(|iv| (1.0 / iv).clamp(1e-9, 1.0))
    }
}

/// TFRC sender configuration.
#[derive(Debug, Clone, Copy)]
pub struct TfrcConfig {
    /// RTT estimate used in the control equation, seconds.
    pub rtt_secs: f64,
    /// Timeout estimate `T0` for the control equation, seconds
    /// (RFC 5348 uses `4·RTT` when no finer estimate exists).
    pub t0_secs: f64,
    /// Initial sending rate, packets per second.
    pub initial_rate_pps: f64,
    /// Hard ceiling on the sending rate (a sanity bound; RFC 5348 bounds by
    /// twice the receive rate — we keep the simpler static cap).
    pub max_rate_pps: f64,
}

impl TfrcConfig {
    /// Conventional defaults for a given RTT: `T0 = 4·RTT`, initial rate of
    /// one packet per RTT.
    pub fn for_rtt(rtt_secs: f64) -> Self {
        TfrcConfig {
            rtt_secs,
            t0_secs: 4.0 * rtt_secs,
            initial_rate_pps: 1.0 / rtt_secs,
            max_rate_pps: 100_000.0,
        }
    }
}

/// The TFRC rate controller (sender side).
#[derive(Debug, Clone)]
pub struct TfrcController {
    config: TfrcConfig,
    rate_pps: f64,
}

impl TfrcController {
    /// A controller starting at the configured initial rate.
    pub fn new(config: TfrcConfig) -> Self {
        assert!(config.initial_rate_pps > 0.0 && config.rtt_secs > 0.0);
        TfrcController {
            config,
            rate_pps: config.initial_rate_pps,
        }
    }

    /// Current allowed sending rate, packets per second.
    pub fn rate_pps(&self) -> f64 {
        self.rate_pps
    }

    /// Feedback arrived: update the rate. With no loss yet, the rate
    /// doubles per feedback (slow-start phase); with a measured loss-event
    /// rate, the allowed rate is the paper's Eq. (33).
    pub fn on_feedback(&mut self, loss_event_rate: Option<f64>) {
        match loss_event_rate {
            None => {
                self.rate_pps = (self.rate_pps * 2.0).min(self.config.max_rate_pps);
            }
            Some(p) => {
                // `TfrcConfig` was validated on construction and the loss
                // rate is clamped into the open interval, so both
                // constructors succeed; if either ever failed we hold the
                // current rate rather than panic mid-simulation.
                let params = ModelParams::new(
                    self.config.rtt_secs,
                    self.config.t0_secs,
                    2,
                    u32::from(u16::MAX),
                );
                let lp = LossProb::new(p.clamp(1e-9, 1.0 - 1e-9));
                let (Ok(params), Ok(lp)) = (params, lp) else {
                    return;
                };
                //= pftk#eq-33
                //= pftk#tcp-friendly
                let eq = approx_model(lp, &params);
                self.rate_pps = eq.clamp(
                    // At least one packet per RTO-ish interval, so the flow
                    // keeps probing (RFC 5348's one-packet-per-64s absolute
                    // floor is far below anything this testbed needs).
                    1.0 / (8.0 * self.config.rtt_secs),
                    self.config.max_rate_pps,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn estimator_starts_empty() {
        let e = LossIntervalEstimator::new(0.1);
        assert!(e.loss_event_rate().is_none());
        assert!(e.average_interval().is_none());
    }

    #[test]
    fn gaps_within_rtt_coalesce() {
        let mut e = LossIntervalEstimator::new(0.1);
        for _ in 0..50 {
            e.on_packet();
        }
        assert!(e.on_gap(t(1.0)), "first gap starts an event");
        assert!(!e.on_gap(t(1.05)), "gap 50 ms later is the same event");
        assert!(e.on_gap(t(1.30)), "gap 300 ms later is a new event");
    }

    #[test]
    fn loss_event_rate_tracks_regular_spacing() {
        // A loss event every 100 packets → p ≈ 0.01.
        let mut e = LossIntervalEstimator::new(0.1);
        let mut now = 0.0;
        for _ in 0..20 {
            for _ in 0..100 {
                e.on_packet();
            }
            now += 10.0;
            e.on_gap(t(now));
        }
        let p = e.loss_event_rate().unwrap();
        assert!((p - 0.01).abs() < 0.002, "p = {p}");
    }

    #[test]
    fn open_interval_raises_the_mean_only_upward() {
        let mut e = LossIntervalEstimator::new(0.1);
        // Two closed intervals of 10.
        for k in 0..3 {
            for _ in 0..10 {
                e.on_packet();
            }
            e.on_gap(t(1.0 + k as f64));
        }
        let base = e.average_interval().unwrap();
        assert!((base - 10.0).abs() < 1e-9);
        // A long open interval lifts the mean…
        for _ in 0..100 {
            e.on_packet();
        }
        assert!(e.average_interval().unwrap() > base);
        // …but a short open interval must not drag it down.
        let mut e2 = LossIntervalEstimator::new(0.1);
        for k in 0..3 {
            for _ in 0..10 {
                e2.on_packet();
            }
            e2.on_gap(t(1.0 + k as f64));
        }
        e2.on_packet(); // open interval of 1
        assert!((e2.average_interval().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn history_bounded_to_eight() {
        let mut e = LossIntervalEstimator::new(0.1);
        // Early intervals of 1000, then a regime change to 10.
        for k in 0..4 {
            for _ in 0..1_000 {
                e.on_packet();
            }
            e.on_gap(t(10.0 * k as f64));
        }
        for k in 4..30 {
            for _ in 0..10 {
                e.on_packet();
            }
            e.on_gap(t(10.0 * k as f64));
        }
        // Old regime fully aged out: p ≈ 1/10.
        let p = e.loss_event_rate().unwrap();
        assert!((p - 0.1).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn controller_slow_starts_then_obeys_equation() {
        let mut c = TfrcController::new(TfrcConfig::for_rtt(0.1));
        let r0 = c.rate_pps();
        c.on_feedback(None);
        c.on_feedback(None);
        assert!(
            (c.rate_pps() - 4.0 * r0).abs() < 1e-9,
            "doubling per feedback"
        );
        // First loss feedback: rate follows Eq. (33).
        c.on_feedback(Some(0.01));
        let params = ModelParams::new(0.1, 0.4, 2, u16::MAX as u32).unwrap();
        let expect = approx_model(LossProb::new(0.01).unwrap(), &params);
        assert!((c.rate_pps() - expect).abs() < 1e-9);
        // Higher loss → lower rate.
        let before = c.rate_pps();
        c.on_feedback(Some(0.05));
        assert!(c.rate_pps() < before);
    }

    #[test]
    fn controller_rate_floor_and_cap() {
        let mut c = TfrcController::new(TfrcConfig {
            rtt_secs: 0.1,
            t0_secs: 0.4,
            initial_rate_pps: 10.0,
            max_rate_pps: 50.0,
        });
        for _ in 0..20 {
            c.on_feedback(None);
        }
        assert_eq!(c.rate_pps(), 50.0, "cap binds");
        c.on_feedback(Some(0.9));
        assert!(c.rate_pps() >= 1.0 / 0.8, "floor binds at extreme loss");
    }
}
