//! Wire units: data segments and cumulative ACKs.
//!
//! The simulator works in MSS-sized packets, as the paper's model does
//! ("we measure send rate in terms of packets per unit of time"). Sequence
//! numbers count whole segments.

use pftk_snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use serde::{Deserialize, Serialize};

/// A segment sequence number (in packets, not bytes).
pub type Seq = u64;

/// A data segment in flight from sender to receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Sequence number of this segment.
    pub seq: Seq,
    /// True when this transmission is a retransmission of `seq`.
    pub retransmit: bool,
}

/// Maximum SACK ranges carried per ACK (RFC 2018 fits 3–4 in the TCP
/// option space; we use 3).
pub const MAX_SACK_BLOCKS: usize = 3;

/// Up to [`MAX_SACK_BLOCKS`] selective-acknowledgment ranges, each
/// half-open `[start, end)` in packet sequence numbers, most recently
/// updated first (RFC 2018's ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SackBlocks {
    blocks: [(Seq, Seq); MAX_SACK_BLOCKS],
    len: u8,
}

impl SackBlocks {
    /// No SACK information.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [(0, 0); MAX_SACK_BLOCKS],
        len: 0,
    };

    /// Builds from an iterator of ranges (first = most recent); extra
    /// ranges beyond the capacity are dropped.
    pub fn from_ranges<I: IntoIterator<Item = (Seq, Seq)>>(ranges: I) -> SackBlocks {
        let mut out = SackBlocks::EMPTY;
        for (start, end) in ranges {
            if usize::from(out.len) == MAX_SACK_BLOCKS {
                break;
            }
            debug_assert!(start < end, "SACK range must be non-empty");
            out.blocks[usize::from(out.len)] = (start, end); //~ allow(hot_panic): write guarded by the capacity break above
            out.len += 1;
        }
        out
    }

    /// The carried ranges, most recent first.
    pub fn ranges(&self) -> &[(Seq, Seq)] {
        &self.blocks[..usize::from(self.len)] //~ allow(hot_panic): len <= MAX_SACK_BLOCKS by construction
    }

    /// True when no ranges are carried.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes the carried ranges. Unused block slots are always `(0, 0)`
    /// (construction goes through [`SackBlocks::EMPTY`]), so encoding only
    /// the live ranges round-trips bit-exactly.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u8(self.len);
        for (start, end) in self.ranges() {
            w.put_u64(*start);
            w.put_u64(*end);
        }
    }

    /// Reads blocks written by [`Self::snapshot_into`]. Validates the
    /// count against the fixed capacity instead of asserting, so corrupt
    /// input yields an error, never a panic.
    pub(crate) fn restore_from(r: &mut SnapReader<'_>) -> SnapResult<SackBlocks> {
        let len = r.get_u8()?;
        if usize::from(len) > MAX_SACK_BLOCKS {
            return Err(SnapError::Invalid("SACK block count exceeds capacity"));
        }
        let mut out = SackBlocks::EMPTY;
        for slot in out.blocks.iter_mut().take(usize::from(len)) {
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            if start >= end {
                return Err(SnapError::Invalid("SACK range must be non-empty"));
            }
            *slot = (start, end);
        }
        out.len = len;
        Ok(out)
    }
}

/// A cumulative acknowledgment in flight from receiver to sender.
///
/// `ack` is the *next expected* sequence number: an ACK with `ack == n`
/// acknowledges every segment with `seq < n`. Repeated ACKs carrying the
/// same `ack` are the duplicate ACKs that trigger fast retransmit. `sack`
/// optionally reports out-of-order data already held by the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ack {
    /// Next sequence number the receiver expects.
    pub ack: Seq,
    /// Selective-acknowledgment ranges (empty unless the receiver has SACK
    /// enabled and holds out-of-order data).
    pub sack: SackBlocks,
}

impl Ack {
    /// A plain cumulative ACK with no SACK information.
    pub fn plain(ack: Seq) -> Ack {
        Ack {
            ack,
            sack: SackBlocks::EMPTY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_equality_includes_retransmit_flag() {
        let a = Segment {
            seq: 5,
            retransmit: false,
        };
        let b = Segment {
            seq: 5,
            retransmit: true,
        };
        assert_ne!(a, b);
    }

    #[test]
    fn ack_semantics() {
        let ack = Ack::plain(10);
        // ack=10 acknowledges 0..=9.
        assert!(ack.ack > 9);
        assert!(ack.sack.is_empty());
    }

    #[test]
    fn sack_blocks_capacity_and_order() {
        let blocks = SackBlocks::from_ranges([(10, 12), (5, 7), (20, 21), (30, 40), (50, 60)]);
        assert_eq!(
            blocks.ranges(),
            &[(10, 12), (5, 7), (20, 21)],
            "capped at 3, order kept"
        );
        assert!(!blocks.is_empty());
        assert!(SackBlocks::EMPTY.is_empty());
        assert_eq!(SackBlocks::from_ranges([]), SackBlocks::EMPTY);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Segment {
            seq: 42,
            retransmit: true,
        };
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Segment>(&json).unwrap(), s);
    }
}
