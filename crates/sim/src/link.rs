//! One-way path model: propagation delay, jitter, and an optional
//! rate-limited bottleneck with a queue.
//!
//! A path is FIFO: computed arrival times are clamped to be strictly
//! increasing, as on a real link — TCP's duplicate-ACK machinery is
//! sensitive to reordering, and an additive-jitter model would otherwise
//! reorder freely.

use crate::queue::QueuePolicy;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Additive delay jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Jitter {
    /// No jitter: constant propagation delay.
    None,
    /// Uniform additive jitter in `[0, max]`.
    Uniform {
        /// Upper bound of the additive delay.
        max: SimDuration,
    },
}

/// A rate-limited bottleneck element with an admission policy.
pub struct Bottleneck {
    /// Transmission (service) time of one packet.
    service: SimDuration,
    /// Admission policy consulted with the instantaneous backlog.
    policy: Box<dyn QueuePolicy + Send>,
    /// Time at which the server frees up after the last admitted packet.
    horizon: SimTime,
    /// Drops charged to the queue (for stats).
    drops: u64,
}

impl std::fmt::Debug for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bottleneck")
            .field("service", &self.service)
            .field("policy", &self.policy.label())
            .field("horizon", &self.horizon)
            .field("drops", &self.drops)
            .finish()
    }
}

impl Bottleneck {
    /// A bottleneck serving `rate_pps` packets per second under `policy`.
    pub fn new(rate_pps: f64, policy: Box<dyn QueuePolicy + Send>) -> Self {
        assert!(
            rate_pps.is_finite() && rate_pps > 0.0,
            "bottleneck rate must be positive"
        );
        Bottleneck {
            service: SimDuration::from_secs_f64(1.0 / rate_pps),
            policy,
            horizon: SimTime::ZERO,
            drops: 0,
        }
    }

    /// Packets dropped by the admission policy so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Current backlog in packets at time `now`.
    fn backlog(&self, now: SimTime) -> f64 {
        let residual = self.horizon.saturating_since(now);
        residual.as_nanos() as f64 / self.service.as_nanos().max(1) as f64 //~ allow(cast): integer count to f64, exact below 2^53
    }

    /// Offers a packet at `now`; returns its departure time or `None` on
    /// drop.
    fn offer(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let backlog = self.backlog(now);
        if self.policy.should_drop(backlog, rng) {
            self.drops += 1;
            return None;
        }
        let start = if self.horizon > now {
            self.horizon
        } else {
            now
        };
        let depart = start + self.service;
        self.horizon = depart;
        Some(depart)
    }
}

/// A one-way path. Data and ACK directions each get their own `Path`.
#[derive(Debug)]
pub struct Path {
    propagation: SimDuration,
    jitter: Jitter,
    bottleneck: Option<Bottleneck>,
    /// Last delivery time, for FIFO clamping.
    last_arrival: SimTime,
}

impl Path {
    /// A jitter-free path with pure propagation delay.
    pub fn constant(propagation: SimDuration) -> Self {
        Path {
            propagation,
            jitter: Jitter::None,
            bottleneck: None,
            last_arrival: SimTime::ZERO,
        }
    }

    /// Adds uniform additive jitter in `[0, max]`.
    pub fn with_jitter(mut self, max: SimDuration) -> Self {
        self.jitter = Jitter::Uniform { max };
        self
    }

    /// Inserts a rate-limited bottleneck before the propagation element.
    pub fn with_bottleneck(mut self, bottleneck: Bottleneck) -> Self {
        self.bottleneck = Some(bottleneck);
        self
    }

    /// Packets dropped by this path's bottleneck (0 if none configured).
    pub fn bottleneck_drops(&self) -> u64 {
        self.bottleneck.as_ref().map_or(0, Bottleneck::drops)
    }

    /// Base propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Writes the path's mutable state (FIFO clamp, bottleneck server
    /// horizon + drop counter + policy state). The bottleneck's presence is
    /// a shape tag: restore requires an identically-configured path.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.last_arrival.as_nanos());
        match &self.bottleneck {
            Some(b) => {
                w.put_tag(1);
                w.put_u64(b.horizon.as_nanos());
                w.put_u64(b.drops);
                b.policy.state_snapshot_into(w);
            }
            None => w.put_tag(0),
        }
    }

    /// Reads state written by [`Self::snapshot_into`]; fails with a tag
    /// mismatch if this path's bottleneck shape differs.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.last_arrival = SimTime::from_nanos(r.get_u64()?);
        match &mut self.bottleneck {
            Some(b) => {
                r.expect_tag("path-bottleneck", 1)?;
                b.horizon = SimTime::from_nanos(r.get_u64()?);
                b.drops = r.get_u64()?;
                b.policy.state_restore_from(r)
            }
            None => {
                r.expect_tag("path-bottleneck", 0)?;
                Ok(())
            }
        }
    }

    /// Transits one packet entering the path at `now`. Returns its arrival
    /// time at the far end, or `None` if a bottleneck dropped it. Arrivals
    /// are strictly increasing (FIFO).
    pub fn transit(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let after_queue = match &mut self.bottleneck {
            Some(b) => b.offer(now, rng)?,
            None => now,
        };
        let jitter = match self.jitter {
            Jitter::None => SimDuration::ZERO,
            Jitter::Uniform { max } => {
                //~ allow(cast): nanosecond count to f64 and back, jitter precision irrelevant
                SimDuration::from_nanos(rng.uniform_f64(0.0, max.as_nanos() as f64 + 1.0) as u64)
            }
        };
        let mut arrival = after_queue + self.propagation + jitter;
        if arrival <= self.last_arrival {
            arrival = self.last_arrival + SimDuration::from_nanos(1);
        }
        self.last_arrival = arrival;
        Some(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::DropTail;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(10)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at_ms(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn constant_path_adds_propagation() {
        let mut p = Path::constant(ms(100));
        let mut r = rng();
        assert_eq!(p.transit(at_ms(0), &mut r), Some(at_ms(100)));
        assert_eq!(p.transit(at_ms(50), &mut r), Some(at_ms(150)));
    }

    #[test]
    fn fifo_clamp_prevents_reordering() {
        let mut p = Path::constant(ms(100)).with_jitter(ms(50));
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            let arr = p.transit(at_ms(i), &mut r).unwrap();
            assert!(arr > last, "reordered at packet {i}");
            last = arr;
        }
    }

    #[test]
    fn jitter_within_bounds() {
        let mut p = Path::constant(ms(100)).with_jitter(ms(50));
        let mut r = rng();
        // Widely spaced packets: FIFO clamp never engages.
        for i in 0..100 {
            let depart = at_ms(i * 1000);
            let arr = p.transit(depart, &mut r).unwrap();
            let delay = (arr - depart).as_nanos();
            assert!(delay >= ms(100).as_nanos() && delay <= ms(151).as_nanos());
        }
    }

    #[test]
    fn bottleneck_adds_queueing_delay() {
        // 10 pkt/s service = 100 ms per packet; send 5 back-to-back at t=0.
        let mut p = Path::constant(ms(10))
            .with_bottleneck(Bottleneck::new(10.0, Box::new(DropTail::new(100))));
        let mut r = rng();
        let arrivals: Vec<_> = (0..5)
            .map(|_| p.transit(SimTime::ZERO, &mut r).unwrap())
            .collect();
        // k-th departure at (k+1)·100 ms, plus 10 ms propagation.
        for (k, arr) in arrivals.iter().enumerate() {
            let expect = at_ms(100 * (k as u64 + 1) + 10);
            assert_eq!(*arr, expect, "packet {k}");
        }
    }

    #[test]
    fn bottleneck_drops_on_overflow() {
        // Capacity 2: offered 10 back-to-back, expect drops.
        let mut p = Path::constant(ms(10))
            .with_bottleneck(Bottleneck::new(10.0, Box::new(DropTail::new(2))));
        let mut r = rng();
        let delivered = (0..10)
            .filter(|_| p.transit(SimTime::ZERO, &mut r).is_some())
            .count();
        assert!(delivered < 10);
        assert_eq!(p.bottleneck_drops() as usize, 10 - delivered);
    }

    #[test]
    fn bottleneck_idle_server_has_no_backlog() {
        let mut p = Path::constant(ms(10))
            .with_bottleneck(Bottleneck::new(10.0, Box::new(DropTail::new(1))));
        let mut r = rng();
        // Widely spaced arrivals never queue, so capacity 1 never drops.
        for i in 0..20 {
            assert!(p.transit(at_ms(i * 1000), &mut r).is_some());
        }
        assert_eq!(p.bottleneck_drops(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_bottleneck_rejected() {
        let _ = Bottleneck::new(0.0, Box::new(DropTail::new(1)));
    }
}
