//! The rounds-based abstract simulator: the paper's §II model assumptions,
//! executed literally.
//!
//! Where the packet-level simulator ([`crate::connection`]) is a faithful
//! TCP Reno implementation, this simulator *is the model*, minus the final
//! i.i.d./independence approximations that produce the closed form:
//!
//! * time advances in rounds of exactly one RTT;
//! * in each round of window `w`, the first loss falls on packet `k` with
//!   probability `(1−p)^{k−1} p` (no loss with probability `(1−p)^w`), and
//!   dooms the rest of the round;
//! * a loss in the "penultimate" round of window `W` is followed by one
//!   "last" round of `k` packets (the ones that were ACKed), of which `m`
//!   survive with the paper's `C(k, m)` law — a triple-duplicate needs
//!   `k ≥ 3` and `m ≥ 3`, otherwise the indication is a timeout (Fig. 4);
//! * a timeout sequence has geometric length (each retransmission fails
//!   with probability `p`), duration `L_k` with doubling capped at
//!   `2^cap · T0`, and restarts congestion avoidance from window 1;
//! * a triple-duplicate halves the window; growth is 1 packet per `b`
//!   rounds, clamped at `W_m`.
//!
//! Because it shares the closed form's assumptions exactly, its long-run
//! send rate converges tightly to Eq. (32) — the crate's strongest
//! correctness check — and its sample paths regenerate Figs. 1, 3, 5 and 6.

use crate::cc::{CcAlgorithm, RoundCc};
use crate::rng::SimRng;
use crate::stats::ConnStats;
use serde::{Deserialize, Serialize};

/// Parameters of the rounds-based simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RoundsConfig {
    /// First-loss probability `p` (the paper's loss measure).
    pub p: f64,
    /// Round duration = RTT, seconds.
    pub rtt: f64,
    /// Single-timeout duration `T0`, seconds.
    pub t0: f64,
    /// Delayed-ACK factor `b`: window grows 1 packet per `b` rounds.
    pub b: u32,
    /// Receiver-window clamp `W_m`, packets.
    pub wmax: u32,
    /// Backoff-doubling cap exponent (6 → the paper's `64·T0`).
    pub backoff_cap_exp: u32,
    /// Window at the start of the very first TDP.
    pub initial_window: u32,
    /// Whether the window recovers via slow start after a timeout (real TCP
    /// behaviour, and what the paper's reuse of the §II-A TDP statistics for
    /// post-timeout periods implicitly credits). When false, post-timeout
    /// periods grow linearly from 1, which is strictly more pessimistic than
    /// the model.
    pub slow_start_after_to: bool,
    /// Congestion-control window laws the flow runs (default: Reno, the
    /// paper's protocol). Loss sampling and TD/TO classification are
    /// engine-side and identical for every variant — see
    /// [`crate::cc::RoundCc`].
    #[serde(default)]
    pub cc: CcAlgorithm,
}

impl Default for RoundsConfig {
    fn default() -> Self {
        RoundsConfig {
            p: 0.01,
            rtt: 0.1,
            t0: 1.0,
            b: 2,
            wmax: u32::from(u16::MAX),
            backoff_cap_exp: 6,
            initial_window: 1,
            slow_start_after_to: true,
            cc: CcAlgorithm::Reno,
        }
    }
}

/// How a TD period ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Indication {
    /// Triple-duplicate ACK: window halves.
    TripleDuplicate,
    /// Timeout (with the recorded number of consecutive timeouts).
    Timeout {
        /// Consecutive RTO firings in the ensuing timeout sequence.
        sequence_len: u32,
    },
}

/// One TD period, for Fig. 2-style inspection.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TdpRecord {
    /// Window at the start of the period.
    pub start_window: u32,
    /// The paper's `W_i`: window in the round where the loss fell.
    pub peak_window: u32,
    /// The paper's `X_i`: 1-indexed round where the first loss fell.
    pub loss_round: u32,
    /// The paper's `α_i`: packets sent up to and including the first loss.
    pub alpha: u64,
    /// The paper's `Y_i = α_i + W_i − 1`: total packets sent in the period.
    pub packets_sent: u64,
    /// Packets that actually reached the receiver in the period.
    pub packets_delivered: u64,
    /// How the period ended.
    pub indication: Indication,
}

/// A `(time, window)` point of the sample path (Figs. 1/3/5/6).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WindowSample {
    /// Wall-clock seconds since simulation start.
    pub time: f64,
    /// Congestion window during this round (0 marks a timeout gap).
    pub window: u32,
}

/// The rounds-based simulator.
#[derive(Debug)]
pub struct RoundsSim {
    config: RoundsConfig,
    rng: SimRng,
    /// Round-level congestion controller: owns the fractional window and
    /// the variant's growth/decrease laws; never draws from `rng`.
    cc: RoundCc,
    elapsed: f64,
    stats: ConnStats,
    /// Optional window sample path (bounded).
    samples: Option<Vec<WindowSample>>,
    /// Optional per-TDP records (bounded).
    tdps: Option<Vec<TdpRecord>>,
    sample_cap: usize,
}

impl RoundsSim {
    /// Creates a simulator; `seed` fixes the whole run.
    pub fn new(config: RoundsConfig, seed: u64) -> Self {
        assert!(config.p > 0.0 && config.p < 1.0, "p must be in (0,1)");
        assert!(
            config.rtt > 0.0 && config.t0 > 0.0,
            "times must be positive"
        );
        assert!(config.b >= 1 && config.wmax >= 1 && config.initial_window >= 1);
        RoundsSim {
            cc: RoundCc::new(config.cc, config.initial_window.min(config.wmax)),
            config,
            rng: SimRng::seed_from_u64(seed),
            elapsed: 0.0,
            stats: ConnStats::default(),
            samples: None,
            tdps: None,
            sample_cap: 100_000,
        }
    }

    /// Enables window-sample-path recording (bounded at `cap` samples).
    pub fn record_samples(mut self, cap: usize) -> Self {
        self.samples = Some(Vec::new());
        self.sample_cap = cap;
        self
    }

    /// Enables per-TDP recording (bounded at 100 000 periods).
    pub fn record_tdps(mut self) -> Self {
        self.tdps = Some(Vec::new());
        self
    }

    /// Elapsed simulated seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Ground-truth counters.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// Long-run send rate so far, packets per second.
    pub fn send_rate(&self) -> f64 {
        if self.elapsed <= 0.0 {
            0.0
        } else {
            self.stats.packets_sent as f64 / self.elapsed //~ allow(cast): u64 count; f64 noise irrelevant for a rate
        }
    }

    /// Long-run receiver throughput so far, packets per second (§V).
    pub fn throughput(&self) -> f64 {
        if self.elapsed <= 0.0 {
            0.0
        } else {
            self.stats.packets_delivered as f64 / self.elapsed //~ allow(cast): u64 count; f64 noise irrelevant for a rate
        }
    }

    /// The recorded sample path, if enabled.
    pub fn samples(&self) -> &[WindowSample] {
        self.samples.as_deref().unwrap_or(&[])
    }

    /// The recorded TD periods, if enabled.
    pub fn tdps(&self) -> &[TdpRecord] {
        self.tdps.as_deref().unwrap_or(&[])
    }

    /// Runs complete TD periods until at least `horizon_secs` of simulated
    /// time have elapsed.
    pub fn run_for(&mut self, horizon_secs: f64) {
        let end = self.elapsed + horizon_secs;
        while self.elapsed < end {
            self.run_one_tdp();
        }
    }

    /// Runs exactly `n` TD periods.
    pub fn run_tdps(&mut self, n: usize) {
        for _ in 0..n {
            self.run_one_tdp();
        }
    }

    /// Simulates one TD period and, if it ends in a timeout, the ensuing
    /// timeout sequence.
    fn run_one_tdp(&mut self) {
        let cfg = self.config;
        let mut round: u32 = 0; // 0-indexed rounds within this TDP
        let mut alpha: u64 = 0; // packets before/incl. the first loss
        let mut delivered_before_loss: u64 = 0;
        let (peak, first_loss_pos) = loop {
            let w = self.cc.window(cfg.wmax);
            self.record_sample(w);
            // Whole round is transmitted regardless of loss (§II-A: send
            // rate counts packets "regardless of their eventual fate").
            self.stats.packets_sent += u64::from(w);
            self.stats.packets_sent_new += u64::from(w);
            self.elapsed += cfg.rtt;
            round += 1;
            //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
            if self.rng.chance(1.0 - (1.0 - cfg.p).powi(w as i32)) {
                // First loss lands at position k ∈ 1..=w (truncated geometric).
                let k = self.sample_truncated_geometric(w);
                alpha += u64::from(k);
                delivered_before_loss += u64::from(k) - 1;
                break (w, k);
            }
            alpha += u64::from(w);
            delivered_before_loss += u64::from(w);
            // Grow the window for the next round (variant law).
            self.cc.on_round_no_loss(cfg.b, cfg.wmax, cfg.rtt);
        };

        // The "last" round (Fig. 4): the k = pos − 1 ACKed packets of the
        // penultimate round trigger k more transmissions. The post-loss tail
        // of the penultimate round was already counted by the per-round
        // `packets_sent += w` above, so adding k here yields the paper's
        // Y = α + W − 1 total exactly.
        let k = first_loss_pos - 1;
        self.stats.packets_sent += u64::from(k);
        self.stats.packets_sent_new += u64::from(k);
        self.elapsed += cfg.rtt;
        self.record_sample(peak);

        // Successes in the last round of k packets: m ~ C(k, m).
        let m = self.sample_last_round_successes(k);
        let delivered = delivered_before_loss + u64::from(m);
        self.stats.packets_delivered += delivered;

        let is_td = k >= 3 && m >= 3;
        let indication = if is_td {
            self.stats.td_events += 1;
            // Packets lost this period: the doomed tail of the penultimate
            // round plus the last round's failures. Only the
            // loss-proportional variants read it.
            let losses = (peak - first_loss_pos + 1) + (k - m);
            let recovery = self.cc.on_td(peak, losses, cfg.p);
            // Recovery rounds (NewReno, RFC 6582 Impatient variant): one
            // retransmission per round, no new data. They run under the
            // retransmit timer, which was armed at the first partial ACK
            // and is never reset, so recovery lasting T0 degrades into a
            // timeout sequence — as does a lost retransmission, from the
            // already-reduced window either way. Reno/Cubic/Relentless
            // request zero rounds, so their draw sequence — and Reno's
            // bit-identity — is untouched.
            let timer_cap = recovery_round_cap(cfg.t0, cfg.rtt);
            let mut degraded = false;
            for r in 0..recovery {
                if r >= timer_cap {
                    degraded = true;
                    break;
                }
                self.elapsed += cfg.rtt;
                self.stats.packets_sent += 1;
                self.stats.retransmissions += 1;
                if self.rng.chance(cfg.p) {
                    degraded = true;
                    break;
                }
                self.stats.packets_delivered += 1;
            }
            if degraded {
                let w = self.cc.window(cfg.wmax);
                let seq_len = self.run_timeout_sequence();
                self.cc.on_to(w, self.config.slow_start_after_to);
                Indication::Timeout {
                    sequence_len: seq_len,
                }
            } else {
                Indication::TripleDuplicate
            }
        } else {
            let seq_len = self.run_timeout_sequence();
            self.cc.on_to(peak, self.config.slow_start_after_to);
            Indication::Timeout {
                sequence_len: seq_len,
            }
        };

        if let Some(tdps) = &mut self.tdps {
            if tdps.len() < 100_000 {
                tdps.push(TdpRecord {
                    start_window: if matches!(indication, Indication::TripleDuplicate) {
                        peak / 2
                    } else {
                        1
                    },
                    peak_window: peak,
                    loss_round: round,
                    alpha,
                    packets_sent: alpha + u64::from(peak) - 1,
                    packets_delivered: delivered,
                    indication,
                });
            }
        }
    }

    /// First-loss position within a round of `w` packets, truncated
    /// geometric on `1..=w`.
    fn sample_truncated_geometric(&mut self, w: u32) -> u32 {
        // Rejection-free inverse CDF on the conditional law.
        let p = self.config.p;
        let q = 1.0 - p;
        let mass = 1.0 - q.powi(w as i32); //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
        let u = self.rng.open01() * mass;
        // Find smallest k with 1 - q^k >= u.
        let k = ((1.0 - u).ln() / q.ln()).ceil();
        (k as u32).clamp(1, w) //~ allow(cast): deliberate float truncation after round/floor
    }

    /// Number of in-sequence successes in the last round of `k` packets
    /// (the paper's `C(k, m)` law): each packet independently survives with
    /// probability `1−p` until the first failure.
    fn sample_last_round_successes(&mut self, k: u32) -> u32 {
        let mut m = 0;
        while m < k && !self.rng.chance(self.config.p) {
            m += 1;
        }
        m
    }

    /// Simulates one timeout sequence; returns its length.
    fn run_timeout_sequence(&mut self) -> u32 {
        let cfg = self.config;
        let mut len: u32 = 0;
        loop {
            len += 1;
            self.record_timeout_gap();
            // Timeout #len has duration 2^min(len−1, cap) · T0.
            let exp = (len - 1).min(cfg.backoff_cap_exp);
            self.elapsed += cfg.t0 * f64::from(1u32 << exp);
            // One retransmission at the end of the waiting period.
            self.stats.packets_sent += 1;
            self.stats.retransmissions += 1;
            self.stats.rto_firings += 1;
            if !self.rng.chance(cfg.p) {
                // Retransmission got through: sequence over, the receiver
                // finally gets one packet (§V: E[R'] = 1).
                self.stats.packets_delivered += 1;
                break;
            }
            if len >= 1_000 {
                // Astronomically unlikely for p < 1; bound the loop anyway.
                break;
            }
        }
        self.stats.record_to_sequence(len);
        len
    }

    fn record_sample(&mut self, w: u32) {
        if let Some(samples) = &mut self.samples {
            if samples.len() < self.sample_cap {
                samples.push(WindowSample {
                    time: self.elapsed,
                    window: w,
                });
            }
        }
    }

    fn record_timeout_gap(&mut self) {
        if let Some(samples) = &mut self.samples {
            if samples.len() < self.sample_cap {
                samples.push(WindowSample {
                    time: self.elapsed,
                    window: 0,
                });
            }
        }
    }
}

/// Maximum recovery rounds before the retransmit timer fires: the timer,
/// armed at the first partial ACK and never reset (RFC 6582 §4, the
/// Impatient variant), expires after `t0`, i.e. after ⌊T0/RTT⌋ one-RTT
/// recovery rounds (at least one — an RTO is never shorter than the RTT).
///
/// Shared with the fleet arena so both engines degrade at the identical
/// round, keeping draw parity.
pub(crate) fn recovery_round_cap(t0: f64, rtt: f64) -> u32 {
    ((t0 / rtt).floor() as u32).max(1) //~ allow(cast): deliberate float truncation after round/floor
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(p: f64, wmax: u32) -> RoundsConfig {
        RoundsConfig {
            p,
            rtt: 0.1,
            t0: 1.0,
            b: 2,
            wmax,
            ..RoundsConfig::default()
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = RoundsSim::new(config(0.02, 64), 5);
        let mut b = RoundsSim::new(config(0.02, 64), 5);
        a.run_for(1000.0);
        b.run_for(1000.0);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.elapsed(), b.elapsed());
    }

    #[test]
    fn send_rate_decreases_with_p() {
        let rate = |p| {
            let mut s = RoundsSim::new(config(p, 1_000), 7);
            s.run_for(50_000.0);
            s.send_rate()
        };
        assert!(rate(0.005) > rate(0.02));
        assert!(rate(0.02) > rate(0.1));
    }

    #[test]
    fn window_cap_respected_in_samples() {
        let mut s = RoundsSim::new(config(0.001, 8), 3).record_samples(50_000);
        s.run_for(5_000.0);
        assert!(s.samples().iter().all(|w| w.window <= 8));
        // With p tiny the clamp should actually bind most of the time.
        let at_cap = s.samples().iter().filter(|w| w.window == 8).count();
        assert!(at_cap * 2 > s.samples().len(), "cap never binding");
    }

    #[test]
    fn tdp_records_satisfy_paper_identities() {
        let mut s = RoundsSim::new(config(0.03, 256), 11).record_tdps();
        s.run_tdps(2_000);
        for (i, rec) in s.tdps().iter().enumerate() {
            // Y_i = α_i + W_i − 1 (Fig. 2).
            assert_eq!(
                rec.packets_sent,
                rec.alpha + u64::from(rec.peak_window) - 1,
                "TDP {i}: Y ≠ α + W − 1"
            );
            assert!(rec.loss_round >= 1);
            assert!(rec.packets_delivered <= rec.packets_sent);
            assert!(rec.peak_window >= 1);
        }
        // E[α] should be close to 1/p (Eq. (4)).
        let mean_alpha: f64 =
            s.tdps().iter().map(|r| r.alpha as f64).sum::<f64>() / s.tdps().len() as f64;
        assert!(
            (mean_alpha - 1.0 / 0.03).abs() / (1.0 / 0.03) < 0.1,
            "E[α]={mean_alpha}, expected ≈{}",
            1.0 / 0.03
        );
    }

    #[test]
    fn small_window_losses_always_time_out() {
        // With W_m = 3 a triple-duplicate is impossible (§II-B: Q̂(w)=1 for
        // w ≤ 3): every indication must be a timeout.
        let mut s = RoundsSim::new(config(0.05, 3), 13);
        s.run_for(20_000.0);
        assert_eq!(s.stats().td_events, 0);
        assert!(s.stats().to_events() > 50);
    }

    #[test]
    fn large_window_low_loss_mostly_td() {
        let mut s = RoundsSim::new(config(0.003, 10_000), 17);
        s.run_for(200_000.0);
        let td = s.stats().td_events as f64;
        let to = s.stats().to_events() as f64;
        // E[W] ≈ sqrt(8/(3bp)) ≈ 21 ⇒ Q ≈ 3/21 ≈ 0.14.
        let q = to / (td + to);
        assert!(q < 0.35, "timeout fraction {q} too high for large windows");
        assert!(td > 100.0);
    }

    #[test]
    fn timeout_sequence_lengths_geometric() {
        let p = 0.3;
        let mut s = RoundsSim::new(config(p, 3), 19); // every loss a TO
        s.run_for(200_000.0);
        let seqs = &s.stats().to_sequences;
        let total: u64 = seqs.iter().sum();
        assert!(total > 500);
        // P[len = 2]/P[len = 1] should be ≈ p.
        let ratio = seqs[1] as f64 / seqs[0] as f64;
        assert!((ratio - p).abs() < 0.08, "ratio {ratio}, expected ≈{p}");
    }

    #[test]
    fn throughput_below_send_rate() {
        let mut s = RoundsSim::new(config(0.05, 64), 23);
        s.run_for(50_000.0);
        assert!(s.throughput() < s.send_rate());
        assert!(s.throughput() > 0.0);
    }

    #[test]
    fn sample_path_shows_sawtooth() {
        let mut s = RoundsSim::new(config(0.01, 1_000), 29).record_samples(10_000);
        s.run_for(2_000.0);
        let samples = s.samples();
        // There must be rises (congestion avoidance) and falls (halvings).
        let rises = samples
            .windows(2)
            .filter(|w| w[1].window > w[0].window)
            .count();
        let falls = samples
            .windows(2)
            .filter(|w| w[1].window < w[0].window && w[1].window > 0)
            .count();
        assert!(rises > 100, "rises={rises}");
        assert!(falls > 5, "falls={falls}");
        // Time is nondecreasing.
        assert!(samples.windows(2).all(|w| w[1].time >= w[0].time));
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn invalid_p_rejected() {
        let _ = RoundsSim::new(config(0.0, 8), 1);
    }
}
