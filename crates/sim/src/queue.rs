//! Bottleneck queue admission policies.
//!
//! Used by the optional bottleneck element of a [`crate::link::Path`]. The
//! paper's Fig. 11 scenario — a modem line with "a buffer devoted exclusively
//! to this connection" — needs a drop-tail queue; RED (\[4\] in the paper's
//! references) is included as an ablation: it keeps the standing queue small,
//! which weakens the RTT–window correlation that breaks the model on modem
//! paths.

use crate::rng::SimRng;
use pftk_snap::{SnapReader, SnapResult, SnapWriter};

/// Decides whether an arriving packet is admitted to the bottleneck queue.
pub trait QueuePolicy {
    /// `backlog` is the queue occupancy in packets (excluding the arriving
    /// packet). Returns `true` to drop the arrival.
    fn should_drop(&mut self, backlog: f64, rng: &mut SimRng) -> bool;

    /// Human-readable label for reports.
    fn label(&self) -> &'static str;

    /// Writes the policy's mutable state into a snapshot. Stateless
    /// policies (the default) write nothing.
    fn state_snapshot_into(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Reads state written by [`QueuePolicy::state_snapshot_into`].
    fn state_restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        let _ = r;
        Ok(())
    }
}

/// Classic drop-tail: admit until the buffer is full.
#[derive(Debug, Clone)]
pub struct DropTail {
    capacity: f64,
}

impl DropTail {
    /// A drop-tail queue holding up to `capacity` packets.
    pub fn new(capacity: u32) -> Self {
        DropTail {
            capacity: f64::from(capacity),
        }
    }
}

impl QueuePolicy for DropTail {
    fn should_drop(&mut self, backlog: f64, _rng: &mut SimRng) -> bool {
        backlog >= self.capacity
    }
    fn label(&self) -> &'static str {
        "drop-tail"
    }
}

/// Random Early Detection (Floyd & Jacobson): probabilistically drop as the
/// exponentially averaged queue grows between `min_th` and `max_th`.
#[derive(Debug, Clone)]
pub struct Red {
    min_th: f64,
    max_th: f64,
    max_p: f64,
    weight: f64,
    avg: f64,
    /// Packets since the last drop, for the 1/(1 − count·p_b) spreading of
    /// the original RED paper.
    count_since_drop: u64,
    hard_capacity: f64,
}

impl Red {
    /// Creates a RED queue. `min_th`/`max_th` are thresholds in packets,
    /// `max_p` the drop probability at `max_th`, `weight` the EWMA weight
    /// (the paper's w_q, typically 0.002), and `hard_capacity` the physical
    /// buffer bound.
    pub fn new(min_th: f64, max_th: f64, max_p: f64, weight: f64, hard_capacity: u32) -> Self {
        assert!(
            min_th >= 0.0 && max_th > min_th,
            "thresholds must satisfy 0 <= min < max"
        );
        Red {
            min_th,
            max_th,
            max_p: max_p.clamp(0.0, 1.0),
            weight: weight.clamp(1e-6, 1.0),
            avg: 0.0,
            count_since_drop: 0,
            hard_capacity: f64::from(hard_capacity),
        }
    }

    /// The current exponentially weighted average queue length.
    pub fn average_queue(&self) -> f64 {
        self.avg
    }
}

impl QueuePolicy for Red {
    fn should_drop(&mut self, backlog: f64, rng: &mut SimRng) -> bool {
        // Physical overflow always drops.
        if backlog >= self.hard_capacity {
            self.count_since_drop = 0;
            return true;
        }
        self.avg = (1.0 - self.weight) * self.avg + self.weight * backlog;
        if self.avg < self.min_th {
            self.count_since_drop += 1;
            return false;
        }
        if self.avg >= self.max_th {
            self.count_since_drop = 0;
            return true;
        }
        let p_b = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th);
        let denom = 1.0 - self.count_since_drop as f64 * p_b; //~ allow(cast): integer count to f64, exact below 2^53
        let p_a = if denom <= 0.0 {
            1.0
        } else {
            (p_b / denom).min(1.0)
        };
        if rng.chance(p_a) {
            self.count_since_drop = 0;
            true
        } else {
            self.count_since_drop += 1;
            false
        }
    }

    fn label(&self) -> &'static str {
        "red"
    }

    fn state_snapshot_into(&self, w: &mut SnapWriter) {
        w.put_f64(self.avg);
        w.put_u64(self.count_since_drop);
    }

    fn state_restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.avg = r.get_f64()?;
        self.count_since_drop = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(77)
    }

    #[test]
    fn drop_tail_boundary() {
        let mut q = DropTail::new(5);
        let mut r = rng();
        assert!(!q.should_drop(0.0, &mut r));
        assert!(!q.should_drop(4.9, &mut r));
        assert!(q.should_drop(5.0, &mut r));
        assert!(q.should_drop(100.0, &mut r));
    }

    #[test]
    fn red_never_drops_below_min_threshold() {
        let mut q = Red::new(5.0, 15.0, 0.1, 0.2, 100);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(!q.should_drop(1.0, &mut r));
        }
    }

    #[test]
    fn red_always_drops_above_max_threshold() {
        let mut q = Red::new(5.0, 15.0, 0.1, 1.0, 100);
        let mut r = rng();
        // With weight 1.0 the average tracks instantaneous backlog exactly.
        assert!(q.should_drop(20.0, &mut r));
    }

    #[test]
    fn red_drops_probabilistically_in_between() {
        let mut q = Red::new(5.0, 15.0, 0.5, 1.0, 100);
        let mut r = rng();
        let drops = (0..2000).filter(|_| q.should_drop(10.0, &mut r)).count();
        // p_b = 0.25 at the midpoint; spreading raises the effective rate.
        assert!(drops > 100 && drops < 1900, "drops={drops}");
    }

    #[test]
    fn red_hard_capacity_is_absolute() {
        let mut q = Red::new(5.0, 15.0, 0.0, 0.002, 30);
        let mut r = rng();
        assert!(q.should_drop(30.0, &mut r));
    }

    #[test]
    fn red_average_tracks_backlog() {
        let mut q = Red::new(5.0, 50.0, 0.1, 0.5, 100);
        let mut r = rng();
        for _ in 0..50 {
            let _ = q.should_drop(10.0, &mut r);
        }
        assert!((q.average_queue() - 10.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn red_rejects_bad_thresholds() {
        let _ = Red::new(10.0, 5.0, 0.1, 0.002, 100);
    }
}
