//! Property-based tests of simulator invariants.

use proptest::prelude::*;
use tcp_sim::connection::Connection;
use tcp_sim::loss::{Bernoulli, GilbertElliott, RoundCorrelated};
use tcp_sim::reno::sender::SenderConfig;
use tcp_sim::rounds::{RoundsConfig, RoundsSim};
use tcp_sim::time::SimDuration;

fn loss_rate() -> impl Strategy<Value = f64> {
    (-2.5f64..-0.7).prop_map(|e| 10f64.powf(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn connection_accounting_identities(p in loss_rate(), seed in 0u64..1000) {
        let mut c = Connection::builder()
            .rtt(0.05)
            .loss(Box::new(Bernoulli::new(p)))
            .seed(seed)
            .build();
        c.run_for(SimDuration::from_secs_f64(60.0));
        c.finish();
        let s = c.stats();
        // Conservation: every transmission is new or a retransmission.
        prop_assert_eq!(s.packets_sent, s.packets_sent_new + s.retransmissions);
        // Nothing arrives that was not sent; drops never exceed sends.
        prop_assert!(s.packets_delivered <= s.packets_sent);
        prop_assert!(s.packets_dropped <= s.packets_sent);
        // Everything sent was either dropped or delivered-or-duplicate; at
        // minimum, delivered + dropped cannot exceed sent.
        prop_assert!(s.packets_delivered + s.packets_dropped <= s.packets_sent);
        // Each timeout sequence contains at least one firing.
        prop_assert!(s.rto_firings >= s.to_events());
    }

    #[test]
    fn replay_determinism(p in loss_rate(), seed in 0u64..1000) {
        let run = || {
            let mut c = Connection::builder()
                .rtt(0.08)
                .loss(Box::new(RoundCorrelated::new(p)))
                .seed(seed)
                .build();
            c.run_for(SimDuration::from_secs_f64(30.0));
            c.finish();
            c.stats()
        };
        prop_assert_eq!(run(), run());
    }

    /// Per-variant torn-tail property (the `pftk-snap` truncation proptest
    /// lifted to whole-connection snapshots): for a random variant, seed,
    /// and cut point, a truncated snapshot is always rejected — never a
    /// panic, never a silent partial restore — while the pristine bytes
    /// restore to the exact captured state.
    #[test]
    fn variant_snapshots_reject_any_truncation(
        which in 0usize..tcp_sim::cc::CcAlgorithm::ALL.len(),
        seed in 0u64..200,
        cut_frac in 0.0f64..1.0,
    ) {
        let algo = tcp_sim::cc::CcAlgorithm::ALL[which];
        let build = || {
            Connection::builder()
                .rtt(0.07)
                .sender_config(SenderConfig { cc: algo, ..SenderConfig::default() })
                .loss(Box::new(RoundCorrelated::new(0.04)))
                .seed(seed)
                .build()
        };
        let mut donor = build();
        donor.run_for(SimDuration::from_secs_f64(20.0));
        let snap = donor.snapshot().expect("snapshot");
        let cut = ((snap.len() as f64 * cut_frac) as usize).min(snap.len() - 1);
        prop_assert!(
            build().restore(&snap[..cut]).is_err(),
            "{:?}: truncation to {} of {} bytes restored",
            algo, cut, snap.len()
        );
        let mut ok = build();
        ok.restore(&snap).expect("pristine restore");
        prop_assert_eq!(ok.stats(), donor.stats());
    }

    #[test]
    fn window_never_exceeds_rwnd(rwnd in 2u32..64, seed in 0u64..200) {
        let sender = SenderConfig { rwnd, ..SenderConfig::default() };
        let mut c = Connection::builder()
            .rtt(0.05)
            .sender_config(sender)
            .loss(Box::new(Bernoulli::new(0.01)))
            .seed(seed)
            .build();
        c.run_for(SimDuration::from_secs_f64(30.0));
        // The invariant is enforced continuously; spot-check the final state.
        prop_assert!(c.sender().flight() <= u64::from(rwnd));
    }

    #[test]
    fn rounds_sim_rate_positive_and_bounded(p in loss_rate(), wmax in 4u32..128, seed in 0u64..500) {
        let mut sim = RoundsSim::new(
            RoundsConfig { p, rtt: 0.1, t0: 1.0, b: 2, wmax, ..RoundsConfig::default() },
            seed,
        );
        sim.run_for(2_000.0);
        let rate = sim.send_rate();
        prop_assert!(rate > 0.0);
        // Can never beat a full window every round.
        prop_assert!(rate <= f64::from(wmax) / 0.1 * (1.0 + 1e-9));
        // Throughput cannot exceed send rate.
        prop_assert!(sim.throughput() <= rate);
    }

    #[test]
    //= pftk#loss-model type=test
    //= pftk#infinite-source type=test
    fn rounds_sim_alpha_mean_is_one_over_p(p in -2.0f64..-1.0, seed in 0u64..100) {
        let p = 10f64.powf(p);
        let mut sim = RoundsSim::new(
            RoundsConfig { p, rtt: 0.1, t0: 1.0, b: 2, wmax: 10_000, ..RoundsConfig::default() },
            seed,
        )
        .record_tdps();
        sim.run_tdps(4_000);
        let mean: f64 =
            sim.tdps().iter().map(|t| t.alpha as f64).sum::<f64>() / sim.tdps().len() as f64;
        let expect = 1.0 / p;
        prop_assert!((mean - expect).abs() / expect < 0.15,
            "E[alpha]={mean} vs 1/p={expect}");
    }

    #[test]
    fn network_conserves_packets_per_flow(
        rtt_a in 0.02f64..0.4,
        rtt_b in 0.02f64..0.4,
        cbr_rate in 5.0f64..120.0,
        seed in 0u64..200,
    ) {
        use tcp_sim::network::{FlowConfig, Network};
        use tcp_sim::queue::DropTail;
        let mut net = Network::new(100.0, Box::new(DropTail::new(20)), seed);
        net.add_flow(FlowConfig::tcp(rtt_a, SenderConfig::default()));
        net.add_flow(FlowConfig::tcp(rtt_b, SenderConfig::default()));
        net.add_flow(FlowConfig::cbr(rtt_a, cbr_rate));
        net.run_for(SimDuration::from_secs_f64(60.0));
        net.finish();
        for (i, s) in net.stats().iter().enumerate() {
            // Delivered + dropped never exceeds sent (packets still in
            // flight at the horizon account for the slack).
            prop_assert!(s.delivered + s.dropped <= s.sent, "flow {i}: {s:?}");
            prop_assert!(s.sent > 0, "flow {i} never sent");
        }
    }

    #[test]
    fn tfrc_estimator_rate_is_valid_probability(
        gaps in proptest::collection::vec(1u64..500, 1..60),
    ) {
        use tcp_sim::tfrc::LossIntervalEstimator;
        use tcp_sim::time::SimTime;
        let mut e = LossIntervalEstimator::new(0.1);
        let mut now = 0.0f64;
        for (k, gap) in gaps.iter().enumerate() {
            for _ in 0..*gap {
                e.on_packet();
            }
            now += 1.0 + (k as f64 % 3.0) * 0.5;
            e.on_gap(SimTime::from_secs_f64(now));
            let p = e.loss_event_rate().unwrap();
            prop_assert!(p > 0.0 && p <= 1.0, "p = {p}");
        }
    }

    #[test]
    fn gilbert_elliott_hits_target_rate(target in 0.01f64..0.2, burst in 1.5f64..10.0) {
        use tcp_sim::loss::LossModel;
        use tcp_sim::rng::SimRng;
        let mut model = GilbertElliott::from_rate_and_burst(target, burst);
        let mut rng = SimRng::seed_from_u64(7);
        let n = 400_000u64;
        let drops = (0..n)
            .filter(|_| model.should_drop(tcp_sim::time::SimTime::ZERO, &mut rng))
            .count();
        let rate = drops as f64 / n as f64;
        prop_assert!((rate - target).abs() < 0.25 * target + 0.005,
            "measured {rate} vs target {target}");
    }
}
