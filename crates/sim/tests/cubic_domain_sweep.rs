//! Runtime counterpart of the audit's numlint pass for the *sim-owned*
//! `[[domain]]` roots: `pftk-model`'s `tests/domain_sweep.rs` sweeps the
//! model kernels but sits below this crate in the dependency graph, so
//! the CUBIC window kernels are grid-sampled here instead, against the
//! same registry entries in `specs/pftk-spec.toml`. An interval changed
//! in the spec changes the sweep; a root deleted from the code breaks
//! the `use` below — the registry cannot silently drift either way.

use std::path::Path;

use pftk_audit::domain::Range;
use pftk_audit::spec::DomainSpec;
use tcp_sim::cc::{cubic_k, cubic_window};

/// Loads the workspace spec's `[[domain]]` entry for `root`.
fn domain(root: &str) -> DomainSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/pftk-spec.toml");
    let text = std::fs::read_to_string(&path).expect("workspace spec readable");
    pftk_audit::spec::parse_spec(&text)
        .expect("workspace spec parses")
        .domains
        .into_iter()
        .find(|d| d.root == root)
        .unwrap_or_else(|| panic!("[[domain]] root {root:?} missing from the spec"))
}

/// Linear grid over a declared interval, endpoints included (nudged
/// inward when open). Unlike the model sweep's geometric grid this
/// handles the CUBIC intervals' zero and negative lower bounds (`t`
/// starts at 0; `k` is signed — a past epoch origin is a legal state).
fn samples(r: &Range) -> Vec<f64> {
    const N: usize = 7;
    let span = r.hi - r.lo;
    let lo = if r.lo_open { r.lo + span * 1e-9 } else { r.lo };
    let hi = if r.hi_open { r.hi - span * 1e-9 } else { r.hi };
    (0..N)
        .map(|i| lo + (hi - lo) * i as f64 / (N - 1) as f64)
        .collect()
}

fn param(d: &DomainSpec, key: &str) -> Vec<f64> {
    samples(
        d.params
            .get(key)
            .unwrap_or_else(|| panic!("root {:?} declares no {key:?} interval", d.root)),
    )
}

#[test]
fn cubic_kernels_are_finite_over_their_declared_grids() {
    let dk = domain("cubic_k");
    let mut checks = 0u64;
    for &w_max in &param(&dk, "w_max") {
        for &start in &param(&dk, "start") {
            let k = cubic_k(w_max, start);
            assert!(
                k.is_finite(),
                "cubic_k not finite at w_max={w_max} start={start}: {k}"
            );
            // Sign convention: recovering from below the plateau puts the
            // origin in the future, from above in the past.
            assert_eq!(
                k > 0.0,
                start < w_max,
                "cubic_k sign flipped at w_max={w_max} start={start}: {k}"
            );
            // The cubic returns exactly to the plateau at t = K.
            assert_eq!(
                cubic_window(k, k, w_max),
                w_max,
                "W(K) must equal w_max at w_max={w_max} start={start}"
            );
            checks += 1;
        }
    }

    let dw = domain("cubic_window");
    for &k in &param(&dw, "k") {
        for &w_max in &param(&dw, "w_max") {
            let mut prev = f64::NEG_INFINITY;
            for &t in &param(&dw, "t") {
                let w = cubic_window(t, k, w_max);
                assert!(
                    w.is_finite(),
                    "cubic_window not finite at t={t} k={k} w_max={w_max}: {w}"
                );
                // Monotone increasing in t across the whole grid.
                assert!(
                    w >= prev,
                    "cubic_window not monotone at t={t} k={k} w_max={w_max}"
                );
                prev = w;
                checks += 1;
            }
        }
    }
    assert!(checks > 300, "suspiciously small sweep: {checks} checks");
}
