//! Versioned, checksummed binary snapshot codec.
//!
//! This crate is the wire layer under the crash-safe campaign machinery:
//! `sim` encodes full connection state through it, `trace` encodes the
//! incremental analyzer cores, and `testbed` frames journal records with
//! its CRC. It is deliberately dependency-free and panic-free: every read
//! is bounds-checked and returns a [`SnapError`] instead of slicing out of
//! range, so corrupt or truncated input degrades to an `Err` the caller
//! can treat as a clean truncation point (the house lenient-decode style).
//!
//! # Format
//!
//! Primitive values are little-endian fixed-width integers; `f64` travels
//! as its IEEE-754 bit pattern via [`f64::to_bits`] so NaN payloads and
//! signed zeros survive a round trip bit-identically. Variable-length byte
//! strings carry a `u64` length prefix. Composite snapshots are framed by
//! [`frame`]/[`unframe`]: an 8-byte magic, a `u32` kind, a `u32` version,
//! a `u64` payload length, a CRC-32 of the payload, then the payload.
//!
//! Snapshots capture *mutable* state only. Restoring applies a snapshot
//! into a freshly-built, identically-configured object; shape tags written
//! by the encoder and checked by the decoder ([`SnapReader::expect_tag`])
//! turn configuration mismatches into [`SnapError::TagMismatch`] rather
//! than silent corruption.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::error::Error;
use std::fmt;

/// Magic bytes opening every framed snapshot.
pub const MAGIC: [u8; 8] = *b"PFTKSNAP";

/// Reasons a snapshot failed to decode.
///
/// All variants are recoverable: decoding never panics, and the journal
/// layer maps any of these on the tail record to a clean truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Input ended before the requested value was complete.
    Truncated,
    /// Framed input did not start with [`MAGIC`].
    BadMagic,
    /// Frame version is newer than this decoder understands.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u32,
        /// Newest version this decoder supports.
        supported: u32,
    },
    /// Payload bytes do not match the frame's CRC-32.
    ChecksumMismatch,
    /// A shape tag did not match: the snapshot was taken from an object
    /// configured differently from the restore target.
    TagMismatch {
        /// What the tag guards (e.g. `"loss-kind"`).
        context: &'static str,
        /// Tag the restore target expected.
        expected: u64,
        /// Tag found in the snapshot.
        found: u64,
    },
    /// A decoded value is structurally invalid (bad bool byte, length
    /// overflow, out-of-range discriminant, ...).
    Invalid(&'static str),
    /// The state contains something the codec cannot capture (e.g. a
    /// type-erased `Box<dyn>` loss process with unknown internals).
    Unsupported(&'static str),
    /// Decoding finished but input bytes remain.
    TrailingBytes,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "snapshot magic bytes missing"),
            SnapError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (decoder supports <= {supported})"
                )
            }
            SnapError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapError::TagMismatch {
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "snapshot shape mismatch at {context}: expected {expected}, found {found}"
                )
            }
            SnapError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            SnapError::Unsupported(what) => write!(f, "state not snapshottable: {what}"),
            SnapError::TrailingBytes => write!(f, "trailing bytes after snapshot payload"),
        }
    }
}

impl Error for SnapError {}

/// Convenience alias for codec results.
pub type SnapResult<T> = Result<T, SnapError>;

/// Slicing-by-8 lookup tables: `CRC32_TABLES[0]` is the classic
/// byte-at-a-time table; `CRC32_TABLES[k][i]` extends it by `k` zero
/// bytes, letting [`crc32`] fold eight input bytes per iteration. The
/// polynomial and the resulting checksum are the standard reflected
/// CRC-32 (IEEE 802.3) — only throughput changes (checkpoint snapshots
/// run to hundreds of kilobytes, and the frame and journal codecs each
/// checksum every byte).
const CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
///
/// Shared by the frame codec and the testbed journal's record framing.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLES[0][idx];
    }
    !crc
}

/// Append-only encoder for snapshot payloads.
///
/// All writes are infallible; the buffer grows as needed. Finish with
/// [`SnapWriter::into_bytes`] (raw payload) or wrap in [`frame`].
#[derive(Debug, Default, Clone)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Creates a writer with `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SnapWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` little-endian.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, preserving NaN
    /// payloads and signed zeros bit-for-bit.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string (`u64` length, then bytes).
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    #[inline]
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Writes raw bytes with no length prefix (caller knows the length).
    #[inline]
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a shape tag — a `u64` the decoder checks with
    /// [`SnapReader::expect_tag`] to catch configuration mismatches.
    #[inline]
    pub fn put_tag(&mut self, tag: u64) {
        self.put_u64(tag);
    }
}

/// Bounds-checked decoder over an encoded payload.
///
/// Every accessor returns [`SnapError::Truncated`] instead of reading out
/// of range; decoding arbitrary corrupt bytes can fail but never panic.
#[derive(Debug, Clone)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True if every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Asserts all input was consumed; [`SnapError::TrailingBytes`] if not.
    pub fn finish(&self) -> SnapResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(SnapError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a single byte.
    #[inline]
    pub fn get_u8(&mut self) -> SnapResult<u8> {
        let bytes = self.take(1)?;
        Ok(bytes[0])
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> SnapResult<u32> {
        let bytes = self.take(4)?;
        let arr: [u8; 4] = bytes.try_into().map_err(|_| SnapError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> SnapResult<u64> {
        let bytes = self.take(8)?;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| SnapError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `i64`.
    #[inline]
    pub fn get_i64(&mut self) -> SnapResult<i64> {
        let bytes = self.take(8)?;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| SnapError::Truncated)?;
        Ok(i64::from_le_bytes(arr))
    }

    /// Reads a `usize` encoded as `u64`; [`SnapError::Invalid`] if the
    /// value does not fit this platform's `usize`.
    #[inline]
    pub fn get_usize(&mut self) -> SnapResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Invalid("usize overflow"))
    }

    /// Reads a bool byte; anything other than 0/1 is [`SnapError::Invalid`].
    #[inline]
    pub fn get_bool(&mut self) -> SnapResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Invalid("bool byte")),
        }
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    #[inline]
    pub fn get_f64(&mut self) -> SnapResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// The length is validated against the remaining input *before* any
    /// allocation, so a corrupt huge length cannot trigger an OOM abort.
    #[inline]
    pub fn get_bytes(&mut self) -> SnapResult<&'a [u8]> {
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(SnapError::Truncated);
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> SnapResult<String> {
        let bytes = self.get_bytes()?;
        let s = std::str::from_utf8(bytes).map_err(|_| SnapError::Invalid("utf-8 string"))?;
        Ok(s.to_owned())
    }

    /// Reads `n` raw bytes with no length prefix.
    #[inline]
    pub fn get_raw(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        self.take(n)
    }

    /// Reads a shape tag and checks it against `expected`; a mismatch is
    /// [`SnapError::TagMismatch`] naming `context`.
    #[inline]
    pub fn expect_tag(&mut self, context: &'static str, expected: u64) -> SnapResult<()> {
        let found = self.get_u64()?;
        if found == expected {
            Ok(())
        } else {
            Err(SnapError::TagMismatch {
                context,
                expected,
                found,
            })
        }
    }
}

/// A decoded frame header plus its validated payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Framed<'a> {
    /// Caller-defined record kind (e.g. connection vs analyzer snapshot).
    pub kind: u32,
    /// Format version the payload was written with.
    pub version: u32,
    /// The CRC-validated payload bytes.
    pub payload: &'a [u8],
}

/// Wraps `payload` in the snapshot frame: magic, kind, version, length,
/// CRC-32, payload.
//= pftk#snapshot-codec
#[must_use]
pub fn frame(kind: u32, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + 4 + 8 + 4 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses and validates a frame produced by [`frame`].
///
/// `max_version` is the newest version the caller's decoder understands;
/// newer frames are rejected with [`SnapError::UnsupportedVersion`].
/// Trailing bytes after the payload are rejected ([`SnapError::TrailingBytes`]).
pub fn unframe(bytes: &[u8], max_version: u32) -> SnapResult<Framed<'_>> {
    let mut r = SnapReader::new(bytes);
    let magic = r.get_raw(MAGIC.len())?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let kind = r.get_u32()?;
    let version = r.get_u32()?;
    if version > max_version {
        return Err(SnapError::UnsupportedVersion {
            found: version,
            supported: max_version,
        });
    }
    let len = r.get_usize()?;
    let expected_crc = r.get_u32()?;
    if len != r.remaining() {
        return Err(if len > r.remaining() {
            SnapError::Truncated
        } else {
            SnapError::TrailingBytes
        });
    }
    let payload = r.get_raw(len)?;
    if crc32(payload) != expected_crc {
        return Err(SnapError::ChecksumMismatch);
    }
    Ok(Framed {
        kind,
        version,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_usize(12345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.put_bytes(b"hello");
        w.put_str("snapshot");
        w.put_tag(99);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8(), Ok(0xAB));
        assert_eq!(r.get_u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Ok(u64::MAX - 3));
        assert_eq!(r.get_i64(), Ok(-42));
        assert_eq!(r.get_usize(), Ok(12345));
        assert_eq!(r.get_bool(), Ok(true));
        assert_eq!(r.get_bool(), Ok(false));
        assert_eq!(r.get_f64().map(f64::to_bits), Ok((-0.0f64).to_bits()));
        assert_eq!(r.get_f64().map(f64::to_bits), Ok(0x7FF8_0000_0000_1234));
        assert_eq!(r.get_bytes(), Ok(&b"hello"[..]));
        assert_eq!(r.get_str(), Ok("snapshot".to_owned()));
        assert_eq!(r.expect_tag("t", 99), Ok(()));
        assert_eq!(r.finish(), Ok(()));
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = SnapWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(SnapError::Truncated));
    }

    #[test]
    fn bad_bool_and_huge_length_are_invalid_not_panics() {
        let mut r = SnapReader::new(&[7]);
        assert_eq!(r.get_bool(), Err(SnapError::Invalid("bool byte")));

        // Length prefix far beyond the buffer: must not allocate or panic.
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn tag_mismatch_reports_context() {
        let mut w = SnapWriter::new();
        w.put_tag(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.expect_tag("loss-kind", 2),
            Err(SnapError::TagMismatch {
                context: "loss-kind",
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn frame_round_trip_and_rejections() {
        let payload = b"state bytes".to_vec();
        let framed = frame(3, 1, &payload);
        let f = match unframe(&framed, 1) {
            Ok(f) => f,
            Err(e) => panic!("unframe failed: {e}"),
        };
        assert_eq!(f.kind, 3);
        assert_eq!(f.version, 1);
        assert_eq!(f.payload, &payload[..]);

        // Newer version than supported.
        let newer = frame(3, 2, &payload);
        assert_eq!(
            unframe(&newer, 1),
            Err(SnapError::UnsupportedVersion {
                found: 2,
                supported: 1
            })
        );

        // Flip a payload bit: checksum catches it.
        let mut corrupt = framed.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert_eq!(unframe(&corrupt, 1), Err(SnapError::ChecksumMismatch));

        // Truncate mid-payload.
        assert_eq!(
            unframe(&framed[..framed.len() - 3], 1),
            Err(SnapError::Truncated)
        );

        // Bad magic.
        let mut nomagic = framed.clone();
        nomagic[0] ^= 0xFF;
        assert_eq!(unframe(&nomagic, 1), Err(SnapError::BadMagic));

        // Trailing junk.
        let mut long = framed;
        long.push(0);
        assert_eq!(unframe(&long, 1), Err(SnapError::TrailingBytes));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
