//! Property-based tests of the snapshot codec: random valid snapshots
//! decode bit-identically, and corrupted ones (bit flips, truncation,
//! garbage) return `Err` — never panic, never silently succeed with a
//! damaged payload. Mirrors the lenient-decoder fuzz precedent in
//! `tcp-trace` (`decode_binary_lenient`).

use pftk_snap::{crc32, frame, unframe, SnapReader, SnapWriter, MAGIC};
use proptest::prelude::*;

/// One typed write in a snapshot script. The decoder must replay the
/// exact same op sequence, so the script itself is the shared schema.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    U8(u8),
    U32(u32),
    U64(u64),
    I64(i64),
    Usize(usize),
    Bool(bool),
    /// Stored as raw bits so NaN payloads and -0.0 are preserved exactly.
    F64(u64),
    Bytes(u64),
    Str(u64),
    Tag(u64),
}

/// Deterministic filler: expands a seed into `len` bytes.
fn fill_bytes(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64) >> 7) as u8)
        .collect()
}

/// Deterministic ASCII filler (put_str requires valid UTF-8).
fn fill_str(seed: u64, len: usize) -> String {
    fill_bytes(seed, len)
        .into_iter()
        .map(|b| (b'a' + b % 26) as char)
        .collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..10, 0u64..=u64::MAX).prop_map(|(kind, v)| match kind {
        0 => Op::U8(v as u8),
        1 => Op::U32(v as u32),
        2 => Op::U64(v),
        3 => Op::I64(v as i64),
        4 => Op::Usize(v as usize),
        5 => Op::Bool(v & 1 == 1),
        // Raw bits: ~49% of draws are non-finite or subnormal corners.
        6 => Op::F64(v),
        7 => Op::Bytes(v),
        8 => Op::Str(v),
        _ => Op::Tag(v),
    })
}

fn script_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(), 1..40)
}

fn encode(script: &[Op]) -> Vec<u8> {
    let mut w = SnapWriter::new();
    for op in script {
        match *op {
            Op::U8(v) => w.put_u8(v),
            Op::U32(v) => w.put_u32(v),
            Op::U64(v) => w.put_u64(v),
            Op::I64(v) => w.put_i64(v),
            Op::Usize(v) => w.put_usize(v),
            Op::Bool(v) => w.put_bool(v),
            Op::F64(bits) => w.put_f64(f64::from_bits(bits)),
            Op::Bytes(seed) => w.put_bytes(&fill_bytes(seed, (seed % 23) as usize)),
            Op::Str(seed) => w.put_str(&fill_str(seed, (seed % 17) as usize)),
            Op::Tag(v) => w.put_tag(v),
        }
    }
    w.into_bytes()
}

/// Replays the script against a reader, checking every value decodes
/// bit-identically. Returns an error string on the first divergence.
fn decode_and_check(script: &[Op], bytes: &[u8]) -> Result<(), String> {
    let mut r = SnapReader::new(bytes);
    for (i, op) in script.iter().enumerate() {
        let ok = match *op {
            Op::U8(v) => r.get_u8() == Ok(v),
            Op::U32(v) => r.get_u32() == Ok(v),
            Op::U64(v) => r.get_u64() == Ok(v),
            Op::I64(v) => r.get_i64() == Ok(v),
            Op::Usize(v) => r.get_usize() == Ok(v),
            Op::Bool(v) => r.get_bool() == Ok(v),
            Op::F64(bits) => r.get_f64().map(f64::to_bits) == Ok(bits),
            Op::Bytes(seed) => r.get_bytes() == Ok(&fill_bytes(seed, (seed % 23) as usize)[..]),
            Op::Str(seed) => r.get_str() == Ok(fill_str(seed, (seed % 17) as usize)),
            Op::Tag(v) => r.expect_tag("prop", v).is_ok(),
        };
        if !ok {
            return Err(format!("op {i} ({op:?}) did not round-trip"));
        }
    }
    r.finish().map_err(|e| format!("trailing bytes: {e}"))
}

/// Offsets of the kind..version header fields, which the CRC does *not*
/// cover — callers validate them semantically (kind dispatch, version
/// gate), so a flip there may still unframe successfully.
const KIND_OFFSET: usize = MAGIC.len();
const LEN_OFFSET: usize = MAGIC.len() + 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: any put-script frames, unframes, and decodes
    /// bit-identically (f64s compared as raw bits).
    //= pftk#snapshot-codec type=test
    #[test]
    fn random_snapshots_round_trip_bit_identically(
        script in script_strategy(),
        kind in 0u32..8,
        version in 1u32..4,
    ) {
        let payload = encode(&script);
        let framed = frame(kind, version, &payload);
        let parsed = match unframe(&framed, version) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::Fail(format!("unframe failed: {e}"))),
        };
        prop_assert_eq!(parsed.kind, kind);
        prop_assert_eq!(parsed.version, version);
        prop_assert_eq!(parsed.payload, &payload[..]);
        if let Err(msg) = decode_and_check(&script, parsed.payload) {
            return Err(TestCaseError::Fail(msg));
        }
    }

    /// Truncation at any point — inside the header or the payload —
    /// is detected: unframe returns `Err`, never panics, never yields
    /// a shorter payload as if it were complete.
    #[test]
    fn any_truncation_is_rejected(script in script_strategy(), cut in 0u64..=u64::MAX) {
        let framed = frame(3, 1, &encode(&script));
        let cut = (cut % framed.len() as u64) as usize;
        prop_assert!(
            unframe(&framed[..cut], 1).is_err(),
            "truncation to {} of {} bytes decoded successfully",
            cut,
            framed.len()
        );
    }

    /// A single bit flip anywhere in the frame never panics, and is
    /// rejected everywhere the CRC (or structural validation) covers:
    /// magic, length, checksum, payload. Flips in the kind/version
    /// header fields may still unframe — those are validated by the
    /// caller's kind dispatch and version gate, not the CRC — but even
    /// then the payload must come through untouched.
    #[test]
    fn single_bit_flips_never_panic_and_corruption_is_caught(
        script in script_strategy(),
        pos in 0u64..=u64::MAX,
        bit in 0u8..8,
    ) {
        let payload = encode(&script);
        let mut framed = frame(5, 1, &payload);
        let pos = (pos % framed.len() as u64) as usize;
        framed[pos] ^= 1 << bit;
        match unframe(&framed, 1) {
            Err(_) => {}
            Ok(parsed) => {
                prop_assert!(
                    (KIND_OFFSET..LEN_OFFSET).contains(&pos),
                    "flip at byte {} (bit {}) outside the kind/version fields decoded successfully",
                    pos,
                    bit
                );
                prop_assert_eq!(
                    parsed.payload,
                    &payload[..],
                    "header-field flip altered the payload"
                );
            }
        }
    }

    /// Random garbage bytes never panic the reader: every accessor
    /// either returns a value or an `Err`, including on pathological
    /// length prefixes.
    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = unframe(&bytes, u32::MAX);
        let mut r = SnapReader::new(&bytes);
        // Walk the buffer with every accessor in rotation until it errors.
        let mut i = 0u32;
        loop {
            let step: Result<(), pftk_snap::SnapError> = match i % 8 {
                0 => r.get_u8().map(|_| ()),
                1 => r.get_u32().map(|_| ()),
                2 => r.get_bool().map(|_| ()),
                3 => r.get_f64().map(|_| ()),
                4 => r.get_bytes().map(|_| ()),
                5 => r.get_str().map(|_| ()),
                6 => r.get_i64().map(|_| ()),
                _ => r.expect_tag("garbage", 0),
            };
            if step.is_err() {
                break;
            }
            i += 1;
            if i > 1024 {
                break;
            }
        }
        let _ = r.finish();
    }

    /// Flipping any payload bit changes the CRC — the checksum actually
    /// discriminates, it is not a constant.
    #[test]
    fn crc_discriminates_payload_flips(
        script in script_strategy(),
        pos in 0u64..=u64::MAX,
        bit in 0u8..8,
    ) {
        let mut payload = encode(&script);
        prop_assume!(!payload.is_empty());
        let before = crc32(&payload);
        let pos = (pos % payload.len() as u64) as usize;
        payload[pos] ^= 1 << bit;
        prop_assert_ne!(before, crc32(&payload));
    }
}
