//! Figure-series extraction: turns experiment results into the exact
//! rows/series the paper's figures plot, ready for printing or CSV export.

use crate::experiment::ExperimentResult;
use crate::paths::PathSpec;
use pftk_model::params::ModelParams;
use pftk_model::sendrate::ModelKind;
use pftk_model::units::LossProb;
use tcp_trace::analyzer::{analyze, AnalyzerConfig};
use tcp_trace::intervals::{split_intervals_bounded, IntervalCategory, IntervalStats};
use tcp_trace::metrics::{average_error, Observation};

/// One scatter point of a Fig. 7 panel: an interval's observed loss rate
/// and packet count, with its TD/T0/T1/… category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// Observed loss-indication frequency in the interval.
    pub p: f64,
    /// Packets sent in the interval.
    pub packets: u64,
    /// Paper's interval category.
    pub category: IntervalCategory,
}

/// A model curve: packets-per-interval predictions over a loss-rate grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCurve {
    /// Which model generated the curve.
    pub model: ModelKind,
    /// `(p, predicted packets per interval)` pairs.
    pub points: Vec<(f64, f64)>,
}

/// A complete Fig. 7 panel: scatter + the paper's two model curves.
#[derive(Debug, Clone)]
pub struct Fig7Panel {
    /// Path identifier (`"manic->baskerville"`).
    pub path_id: String,
    /// Parameters printed in the panel title.
    pub rtt: f64,
    /// Mean single-timeout duration.
    pub t0: f64,
    /// Receiver window.
    pub wmax: u32,
    /// Per-interval observations.
    pub scatter: Vec<ScatterPoint>,
    /// "TD only" and "proposed (full)" curves.
    pub curves: Vec<ModelCurve>,
}

/// The model parameters the paper would fit to this experiment: trace-wide
/// RTT and T0 (ground truth from the simulator, matching §III's use of
/// trace-wide averages), the path's `W_m`, and delayed ACKs (`b = 2`).
pub fn fitted_params(spec: &PathSpec, result: &ExperimentResult) -> ModelParams {
    let rtt = result.ground_rtt.unwrap_or(spec.rtt);
    let t0 = result.ground_t0.unwrap_or(spec.t0);
    //~ allow(expect): calibrated constants validated by construction
    ModelParams::new(rtt, t0, 2, spec.wmax).expect("calibrated parameters are valid")
}

/// The loss-rate grid the model curves are evaluated on (log-spaced,
/// spanning the paper's 0.001–0.3 range).
pub fn loss_grid() -> Vec<f64> {
    let mut grid = Vec::new();
    let (lo, hi, steps) = (1e-3f64, 0.3f64, 60usize);
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        grid.push(lo * (hi / lo).powf(t));
    }
    grid
}

/// The per-interval rows for a report at `interval_secs`: the streamed
/// segmentation when the run produced one at that length (the campaign
/// default — no trace was materialized), else a batch recomputation from
/// the retained trace.
///
/// # Panics
/// When the run neither streamed intervals at `interval_secs` nor
/// retained its trace — the experiment options and the report request are
/// inconsistent, which is a caller bug, not a recoverable condition.
fn intervals_for(
    spec: &PathSpec,
    result: &ExperimentResult,
    interval_secs: f64,
) -> Vec<IntervalStats> {
    if result.stream.interval_secs == Some(interval_secs) {
        if let Some(iv) = result.intervals() {
            return iv.to_vec();
        }
    }
    //~ allow(expect): options/report mismatch is a construction-time caller bug
    let trace = result.trace.as_ref().expect(
        "report needs intervals the run neither streamed nor can recompute \
         (no retained trace): run with matching ExperimentOptions::interval_secs \
         or retain_trace",
    );
    let analyzer = AnalyzerConfig {
        dupack_threshold: spec.sender_os().dupack_threshold(),
    };
    let analysis = analyze(trace, analyzer);
    split_intervals_bounded(trace, &analysis, interval_secs, result.duration_secs)
}

/// Builds a Fig. 7 panel from an hour-long experiment.
pub fn fig7_panel(spec: &PathSpec, result: &ExperimentResult, interval_secs: f64) -> Fig7Panel {
    let intervals = intervals_for(spec, result, interval_secs);
    let scatter = intervals
        .iter()
        .map(|iv| ScatterPoint {
            p: iv.loss_rate,
            packets: iv.packets_sent,
            category: iv.category,
        })
        .collect();
    let params = fitted_params(spec, result);
    let curves = [ModelKind::TdOnly, ModelKind::Full]
        .iter()
        .map(|&model| ModelCurve {
            model,
            points: loss_grid()
                .into_iter()
                .map(|p| {
                    let rate = model.evaluate(LossProb::new(p).unwrap(), &params); //~ allow(unwrap): calibrated constants validated by construction
                    (p, rate * interval_secs)
                })
                .collect(),
        })
        .collect();
    Fig7Panel {
        path_id: spec.id(),
        rtt: params.rtt.get(),
        t0: params.t0.get(),
        wmax: spec.wmax,
        scatter,
        curves,
    }
}

/// One Fig. 8 trace triple: measured rate plus both models' predictions for
/// one 100-second connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Trace number (0–99).
    pub trace_no: usize,
    /// Measured packets sent.
    pub measured: u64,
    /// Full-model prediction (packets per 100 s).
    pub proposed: f64,
    /// TD-only prediction.
    pub td_only: f64,
}

/// Builds the Fig. 8 series for one path from its serial experiments.
/// Per §III, RTT and T0 are calculated *per trace* here.
pub fn fig8_series(spec: &PathSpec, results: &[ExperimentResult]) -> Vec<Fig8Point> {
    results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let analysis = r.analysis();
            let p = analysis.loss_rate().clamp(1e-9, 1.0 - 1e-9);
            let params = fitted_params(spec, r);
            let lp = LossProb::new(p).unwrap(); //~ allow(unwrap): calibrated constants validated by construction
            Fig8Point {
                trace_no: i,
                measured: analysis.packets_sent,
                proposed: ModelKind::Full.evaluate(lp, &params) * r.duration_secs,
                td_only: ModelKind::TdOnly.evaluate(lp, &params) * r.duration_secs,
            }
        })
        .collect()
}

/// The three per-path average errors of Figs. 9/10.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorTriple {
    /// Path identifier.
    pub path_id: String,
    /// Average error of the full model (Eq. (32)).
    pub full: f64,
    /// Average error of the approximate model (Eq. (33)).
    pub approx: f64,
    /// Average error of the TD-only baseline.
    pub td_only: f64,
}

/// Computes the Fig. 9 error triple from an hour-long experiment, using the
/// paper's procedure: per-100-s observations, trace-wide RTT/T0.
pub fn error_triple_hourly(
    spec: &PathSpec,
    result: &ExperimentResult,
    interval_secs: f64,
) -> ErrorTriple {
    let intervals = intervals_for(spec, result, interval_secs);
    let observations = Observation::from_intervals(&intervals, interval_secs);
    let params = fitted_params(spec, result);
    let eval = |model: ModelKind| {
        average_error(&observations, |p| {
            //~ allow(unwrap): calibrated constants validated by construction
            model.evaluate(LossProb::new(p).unwrap(), &params)
        })
    };
    ErrorTriple {
        path_id: spec.id(),
        full: eval(ModelKind::Full),
        approx: eval(ModelKind::Approximate),
        td_only: eval(ModelKind::TdOnly),
    }
}

/// Computes the Fig. 10 error triple from serial 100-s experiments, using
/// per-trace RTT/T0 (§III: "we use the value of round-trip time and
/// time-out calculated for each 100 s trace").
pub fn error_triple_serial(spec: &PathSpec, results: &[ExperimentResult]) -> ErrorTriple {
    let mut sums = (0.0, 0.0, 0.0);
    let mut n = 0u64;
    for r in results {
        let analysis = r.analysis();
        if analysis.packets_sent == 0 {
            continue;
        }
        let p = analysis.loss_rate().clamp(1e-9, 1.0 - 1e-9);
        let lp = LossProb::new(p).unwrap(); //~ allow(unwrap): calibrated constants validated by construction
        let params = fitted_params(spec, r);
        let observed = analysis.packets_sent as f64;
        let err = |model: ModelKind| {
            (model.evaluate(lp, &params) * r.duration_secs - observed).abs() / observed
        };
        sums.0 += err(ModelKind::Full);
        sums.1 += err(ModelKind::Approximate);
        sums.2 += err(ModelKind::TdOnly);
        n += 1;
    }
    let nf = (n.max(1)) as f64;
    ErrorTriple {
        path_id: spec.id(),
        full: sums.0 / nf,
        approx: sums.1 / nf,
        td_only: sums.2 / nf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_hour, run_serial_100s};
    use crate::paths::table2_path;

    #[test]
    fn loss_grid_is_log_spaced_and_in_range() {
        let g = loss_grid();
        assert!(g.len() > 10);
        assert!((g[0] - 1e-3).abs() < 1e-12);
        assert!((g.last().unwrap() - 0.3).abs() < 1e-9);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
        // Log spacing: ratios constant.
        let r0 = g[1] / g[0];
        let r1 = g[11] / g[10];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn fig7_panel_has_intervals_and_curves() {
        let spec = table2_path("manic", "baskerville").unwrap();
        let result = run_hour(spec, 11);
        let panel = fig7_panel(spec, &result, 100.0);
        assert_eq!(
            panel.scatter.len(),
            36,
            "an hour gives 36 intervals of 100 s"
        );
        assert_eq!(panel.curves.len(), 2);
        assert!(panel
            .curves
            .iter()
            .all(|c| c.points.len() == loss_grid().len()));
        // TD-only must sit above the full model at high p.
        let td = &panel.curves[0];
        let full = &panel.curves[1];
        let last = td.points.len() - 1;
        assert!(td.points[last].1 > full.points[last].1);
    }

    #[test]
    fn fig8_series_aligns_with_results() {
        let spec = table2_path("manic", "mafalda").unwrap();
        let results = run_serial_100s(spec, 5, 21);
        let series = fig8_series(spec, &results);
        assert_eq!(series.len(), 5);
        for pt in &series {
            assert!(pt.measured > 0);
            assert!(pt.proposed > 0.0);
            assert!(pt.td_only > 0.0);
        }
    }

    #[test]
    fn error_triples_rank_models_as_in_paper() {
        // On a timeout-dominated path the full model must beat TD-only.
        let spec = table2_path("manic", "maria").unwrap();
        let result = run_hour(spec, 31);
        let errs = error_triple_hourly(spec, &result, 100.0);
        assert!(
            errs.full < errs.td_only,
            "full {:.3} should beat TD-only {:.3}",
            errs.full,
            errs.td_only
        );
        assert!(errs.full.is_finite() && errs.approx.is_finite());
    }

    #[test]
    fn serial_error_triple_finite() {
        let spec = table2_path("manic", "mafalda").unwrap();
        let results = run_serial_100s(spec, 4, 41);
        let errs = error_triple_serial(spec, &results);
        assert!(errs.full.is_finite());
        assert!(errs.td_only >= 0.0);
    }
}
