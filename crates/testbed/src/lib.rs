//! # tcp-testbed
//!
//! The synthetic measurement testbed: this crate stands in for the paper's
//! 1997 Internet — 19 hosts (Table I), 24 calibrated sender→receiver paths
//! (Table II), a modem path (Fig. 11) — and runs the paper's three
//! measurement campaigns against the `tcp-sim` packet-level simulator:
//!
//! * [`experiment::run_hour`] / [`experiment::run_table2`] — the hour-long
//!   "infinite source" connections behind Table II and Figs. 7/9;
//! * [`experiment::run_serial_100s`] — the 100×100-second serial
//!   connections behind Figs. 8/10;
//! * [`experiment::run_modem`] — the dedicated-buffer modem scenario of
//!   Fig. 11.
//!
//! [`fleet`] scales validation to populations: sharded 10^5–10^6-flow
//! campaigns over the `tcp-sim` fleet arenas, with per-cohort
//! distributional comparison against Eq. (32) and a pooled-analyzer wire
//! audit (DESIGN.md §14).
//! [`report`] turns results into the exact series each figure plots.
//! [`supervisor`] runs campaigns under per-experiment budgets with panic
//! isolation and retry, so one wedged path degrades Table II to a partial
//! table with explicit holes instead of killing the run.
//! [`journal`] adds crash safety on top: [`experiment::run_table2_journaled`]
//! writes a write-ahead journal of completed attempts and in-flight
//! checkpoints, and a re-invocation after a crash resumes bit-identically
//! instead of starting over (DESIGN.md §13).
//! See DESIGN.md §1 for the substitution argument (what the paper used →
//! what this testbed provides → why it preserves the relevant behaviour).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiment;
pub mod fleet;
pub mod hosts;
pub mod journal;
pub mod paths;
pub mod pool;
pub mod report;
pub mod supervisor;

pub use experiment::{
    run_hour, run_hour_budgeted, run_hour_budgeted_with, run_hour_with, run_modem, run_modem_with,
    run_serial_100s, run_serial_100s_with, run_table2, run_table2_journaled, run_table2_supervised,
    ExperimentOptions, ExperimentResult, JournalConfig, TraceRecorder, DEFAULT_EVENT_BUDGET,
};
pub use fleet::{
    run_fleet, run_fleet_with, CohortAudit, CohortReport, FleetCampaignSpec, FleetCohortSpec,
    FleetReport,
};
pub use hosts::{host, Host, Os, HOSTS};
pub use journal::{CampaignRecord, CrashPoint, Journal};
pub use paths::{fig7_paths, fig8_paths, table2_path, ModemSpec, PathSpec, TABLE2_PATHS};
pub use pool::{TaskHandle, WorkerPool};
pub use supervisor::{
    run_campaign, CampaignReport, CampaignRow, Job, JobSpec, Outcome, SupervisorConfig,
};

pub use report::{
    error_triple_hourly, error_triple_serial, fig7_panel, fig8_series, fitted_params, loss_grid,
    ErrorTriple, Fig7Panel, Fig8Point, ModelCurve, ScatterPoint,
};
