//! Self-healing campaign supervisor: runs a batch of experiments under
//! per-experiment budgets, isolating panics and hangs so one bad path
//! degrades the campaign to a partial result instead of killing it.
//!
//! The paper's Table II aggregates 24 hour-long measurements; losing all
//! 24 because one path wedged would have been absurd in 1997 and is just
//! as absurd here. Experiments run on a shared work-stealing
//! [`WorkerPool`] (one worker per monitor, spawned once per campaign
//! instead of one thread per attempt) with:
//!
//! * a **wall-clock budget** — the monitor waits on a channel with
//!   [`std::sync::mpsc::Receiver::recv_timeout`]; an attempt that blows
//!   the budget is abandoned via [`WorkerPool::abandon`] (threads cannot
//!   be killed; the pool immediately replaces the wedged worker so
//!   campaign capacity never degrades, and the leaked attempt keeps its
//!   own sim-event budget, so even a hung one is doubly fenced);
//! * **panic isolation** — every pool task runs under
//!   [`std::panic::catch_unwind`], so a panicking experiment reports
//!   [`Outcome::Panicked`] instead of poisoning anything, and the worker
//!   survives to run the next attempt;
//! * **one retry with a reseeded RNG** — stochastic wedges (a
//!   pathological seed) get a second, deterministic-but-different draw;
//!   success on the retry is recorded as [`Outcome::Retried`].
//!
//! The result is a [`CampaignReport`]: one [`CampaignRow`] per experiment,
//! each labeled `Ok`/`Retried`/`TimedOut`/`Panicked`, with results present
//! exactly for the successful rows. Consumers render failures as explicit
//! holes (see `repro`'s Table II) rather than silently shrinking the
//! campaign.

use crate::experiment::ExperimentResult;
use crate::pool::WorkerPool;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// An experiment as the supervisor sees it: a seeded, re-runnable closure.
/// Taking the seed as an argument (rather than capturing it) is what makes
/// the reseeded retry possible.
pub type Job = Arc<dyn Fn(u64) -> ExperimentResult + Send + Sync + 'static>;

/// One schedulable experiment.
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable label (e.g. the path id) used in reports.
    pub label: String,
    /// Seed for the first attempt.
    pub seed: u64,
    /// The experiment body.
    pub job: Job,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("label", &self.label)
            .field("seed", &self.seed)
            .finish()
    }
}

/// How one experiment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Completed within budget on the first attempt.
    Ok,
    /// First attempt failed; the reseeded retry completed.
    Retried,
    /// Completed after resuming from a crash-recovery checkpoint (the
    /// journaled campaign restored mid-flight state written before a
    /// previous process died). Distinct from [`Outcome::Retried`]: a
    /// resumed attempt continues the *same* seed's event stream
    /// bit-identically, a retry abandons it for a reseeded draw.
    Resumed,
    /// Exceeded the wall-clock budget (on the final attempt).
    TimedOut,
    /// Panicked (on the final attempt).
    Panicked,
}

impl Outcome {
    /// True when the experiment produced a usable result.
    pub fn succeeded(self) -> bool {
        matches!(self, Outcome::Ok | Outcome::Retried | Outcome::Resumed)
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Retried => "retried",
            Outcome::Resumed => "resumed",
            Outcome::TimedOut => "timed-out",
            Outcome::Panicked => "panicked",
        }
    }
}

/// Supervisor tunables.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock budget per *attempt* (not per experiment).
    pub wall_budget: Duration,
    /// Whether a failed first attempt gets one reseeded retry.
    pub retry: bool,
    /// Concurrent experiments; 0 = one per available core.
    pub max_workers: usize,
    /// When set, the worker pool perturbs its own scheduling from this
    /// seed ([`WorkerPool::with_schedule_chaos`]): injected yield points
    /// and rotated steal order. Campaign reports must be bit-identical
    /// with or without it; the replay-equivalence gate relies on that.
    pub schedule_chaos: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            // Generous: an hour-long Table II simulation finishes in
            // seconds; ten minutes of wall clock means something is wedged.
            wall_budget: Duration::from_secs(600),
            retry: true,
            max_workers: 0,
            schedule_chaos: None,
        }
    }
}

/// Per-experiment line of a [`CampaignReport`].
#[derive(Debug)]
pub struct CampaignRow {
    /// The experiment's label.
    pub label: String,
    /// Seed of the attempt the outcome describes (the reseeded one for
    /// retries).
    pub seed: u64,
    /// How the experiment ended.
    pub outcome: Outcome,
    /// Attempts consumed (1 or 2).
    pub attempts: u32,
    /// The result, present iff [`Outcome::succeeded`].
    pub result: Option<ExperimentResult>,
}

/// The (possibly partial) outcome of a supervised campaign.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// One row per submitted job, in submission order.
    pub rows: Vec<CampaignRow>,
}

impl CampaignReport {
    /// Rows that produced a usable result.
    pub fn ok_count(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.succeeded()).count()
    }

    /// True when every row succeeded.
    pub fn is_complete(&self) -> bool {
        self.ok_count() == self.rows.len()
    }

    /// The failed rows (explicit holes a renderer must account for).
    pub fn failures(&self) -> impl Iterator<Item = &CampaignRow> {
        self.rows.iter().filter(|r| !r.outcome.succeeded())
    }

    /// One-line human summary, e.g. `22/24 ok (1 timed-out, 1 panicked)`.
    pub fn summary(&self) -> String {
        let mut s = format!("{}/{} ok", self.ok_count(), self.rows.len());
        let failed: Vec<String> = self
            .failures()
            .map(|r| format!("{} {}", r.label, r.outcome.label()))
            .collect();
        if !failed.is_empty() {
            s.push_str(&format!(" ({})", failed.join(", ")));
        }
        s
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// How one attempt ended (internal).
enum Attempt {
    Completed(Box<ExperimentResult>),
    Panicked,
    TimedOut,
}

impl Attempt {
    fn failure_outcome(&self) -> Outcome {
        match self {
            Attempt::Completed(_) => Outcome::Ok,
            Attempt::Panicked => Outcome::Panicked,
            Attempt::TimedOut => Outcome::TimedOut,
        }
    }
}

/// Derives the retry seed: deterministic, but a different stream.
fn reseed(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03)
}

/// Runs one attempt on the shared worker pool and waits up to `budget`.
/// An attempt that neither finishes nor panics in time is abandoned:
/// threads cannot be killed, so the monitor walks away (the leaked
/// attempt's eventual send lands on a closed channel) and the pool spawns
/// a replacement worker so capacity is unchanged.
fn attempt(pool: &WorkerPool, job: &Job, seed: u64, budget: Duration) -> Attempt {
    let (tx, rx) = mpsc::channel();
    let job = Arc::clone(job);
    let handle = pool.submit(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| job(seed)));
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(budget) {
        Ok(Ok(result)) => Attempt::Completed(Box::new(result)),
        Ok(Err(_panic)) => Attempt::Panicked,
        Err(_timeout_or_discarded) => {
            pool.abandon(&handle);
            Attempt::TimedOut
        }
    }
}

/// Supervises a single experiment: first attempt, optional reseeded retry.
fn supervise_one(pool: &WorkerPool, spec: &JobSpec, config: &SupervisorConfig) -> CampaignRow {
    match attempt(pool, &spec.job, spec.seed, config.wall_budget) {
        Attempt::Completed(result) => CampaignRow {
            label: spec.label.clone(),
            seed: spec.seed,
            outcome: Outcome::Ok,
            attempts: 1,
            result: Some(*result),
        },
        first => {
            if !config.retry {
                return CampaignRow {
                    label: spec.label.clone(),
                    seed: spec.seed,
                    outcome: first.failure_outcome(),
                    attempts: 1,
                    result: None,
                };
            }
            let retry_seed = reseed(spec.seed);
            match attempt(pool, &spec.job, retry_seed, config.wall_budget) {
                Attempt::Completed(result) => CampaignRow {
                    label: spec.label.clone(),
                    seed: retry_seed,
                    outcome: Outcome::Retried,
                    attempts: 2,
                    result: Some(*result),
                },
                second => CampaignRow {
                    label: spec.label.clone(),
                    seed: retry_seed,
                    outcome: second.failure_outcome(),
                    attempts: 2,
                    result: None,
                },
            }
        }
    }
}

/// Runs every job under supervision, bounded by
/// [`SupervisorConfig::max_workers`] concurrent experiments, and returns
/// one row per job in submission order.
///
/// The report always covers every submitted job: monitors never execute
/// experiment code directly (it runs on pooled worker threads), and
/// even if a monitor were lost its slot degrades to a `Panicked` hole
/// rather than poisoning the whole campaign.
//= pftk#det-replay
//= pftk#det-ordered-output
pub fn run_campaign(jobs: Vec<JobSpec>, config: &SupervisorConfig) -> CampaignReport {
    let n = jobs.len();
    // Rows are assembled into slots indexed by *submission order*, never
    // by completion order, so the report is invariant under scheduling.
    let slots: Mutex<Vec<Option<CampaignRow>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let monitors = if config.max_workers == 0 {
        std::thread::available_parallelism().map_or(4, |c| c.get())
    } else {
        config.max_workers
    }
    .min(n.max(1));
    // One pooled worker per monitor: each monitor drives at most one
    // attempt at a time, so the pool can never be oversubscribed, and
    // abandoned (wedged) workers are replaced by the pool itself.
    let pool = match config.schedule_chaos {
        Some(seed) => WorkerPool::with_schedule_chaos(monitors, seed),
        None => WorkerPool::new(monitors),
    };
    let pool_ref = &pool;
    let jobs_ref = &jobs;
    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..monitors {
            scope.spawn(|_| loop {
                // AcqRel: claiming index `i` is the hand-off point that
                // entitles this monitor to job `i` and its report slot;
                // make the claim's ordering explicit instead of leaning
                // on the slots Mutex alone.
                let i = next.fetch_add(1, Ordering::AcqRel);
                if i >= n {
                    break;
                }
                let row = supervise_one(pool_ref, &jobs_ref[i], config);
                slots.lock()[i] = Some(row);
            });
        }
    });
    // A lost monitor (cannot happen in the current design: monitors run no
    // experiment code) must not void the survivors' work.
    drop(scope_result);
    let rows = slots
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| CampaignRow {
                label: jobs[i].label.clone(),
                seed: jobs[i].seed,
                outcome: Outcome::Panicked,
                attempts: 1,
                result: None,
            })
        })
        .collect();
    CampaignReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_sim::stats::ConnStats;

    fn fake_result(seed: u64) -> ExperimentResult {
        let stats = ConnStats {
            packets_sent: seed,
            ..Default::default()
        };
        ExperimentResult {
            stream: tcp_trace::stream::StreamAnalysis::default(),
            trace: None,
            stats,
            ground_rtt: None,
            ground_t0: None,
            duration_secs: 1.0,
            event_budget_hit: false,
        }
    }

    fn quick_config() -> SupervisorConfig {
        SupervisorConfig {
            wall_budget: Duration::from_millis(300),
            retry: true,
            max_workers: 4,
            schedule_chaos: None,
        }
    }

    //= pftk#det-ordered-output type=test
    #[test]
    fn all_ok_campaign_is_complete_and_ordered() {
        let jobs: Vec<JobSpec> = (0..8u64)
            .map(|i| JobSpec {
                label: format!("job-{i}"),
                seed: i,
                job: Arc::new(fake_result),
            })
            .collect();
        let report = run_campaign(jobs, &quick_config());
        assert!(report.is_complete());
        assert_eq!(report.ok_count(), 8);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.label, format!("job-{i}"), "submission order kept");
            assert_eq!(row.outcome, Outcome::Ok);
            assert_eq!(row.attempts, 1);
            let result = row.result.as_ref().unwrap();
            assert_eq!(result.stats.packets_sent, i as u64, "own seed used");
        }
        assert_eq!(report.summary(), "8/8 ok");
    }

    #[test]
    fn panicking_job_yields_a_labeled_hole_not_a_poisoned_join() {
        let jobs = vec![
            JobSpec {
                label: "good".into(),
                seed: 1,
                job: Arc::new(fake_result),
            },
            JobSpec {
                label: "bad".into(),
                seed: 2,
                job: Arc::new(|_seed| panic!("injected experiment failure")),
            },
            JobSpec {
                label: "also-good".into(),
                seed: 3,
                job: Arc::new(fake_result),
            },
        ];
        let report = run_campaign(jobs, &quick_config());
        assert_eq!(report.ok_count(), 2, "survivors' rows are returned");
        assert!(!report.is_complete());
        assert_eq!(report.rows[1].outcome, Outcome::Panicked);
        assert_eq!(report.rows[1].attempts, 2, "the panic was retried once");
        assert!(report.rows[1].result.is_none());
        assert!(report.rows[0].result.is_some());
        assert!(report.rows[2].result.is_some());
        assert_eq!(report.summary(), "2/3 ok (bad panicked)");
    }

    #[test]
    fn hanging_job_times_out_within_budget() {
        let jobs = vec![
            JobSpec {
                label: "fast".into(),
                seed: 1,
                job: Arc::new(fake_result),
            },
            JobSpec {
                label: "wedged".into(),
                seed: 2,
                // An "infinite loop" that does not burn a CPU for the rest
                // of the test binary's life: the leaked thread sleeps.
                job: Arc::new(|_seed| loop {
                    std::thread::sleep(Duration::from_millis(50));
                }),
            },
        ];
        let started = std::time::Instant::now();
        let report = run_campaign(jobs, &quick_config());
        // Two attempts × 300 ms budget, plus scheduling slack.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(report.ok_count(), 1);
        assert_eq!(report.rows[1].outcome, Outcome::TimedOut);
        assert!(report.summary().contains("wedged timed-out"));
    }

    #[test]
    fn flaky_job_succeeds_on_reseeded_retry() {
        let jobs = vec![JobSpec {
            label: "flaky".into(),
            seed: 42,
            job: Arc::new(|seed| {
                assert!(seed != 42, "pathological seed");
                fake_result(seed)
            }),
        }];
        let report = run_campaign(jobs, &quick_config());
        assert_eq!(report.rows[0].outcome, Outcome::Retried);
        assert_eq!(report.rows[0].attempts, 2);
        assert_eq!(report.rows[0].seed, reseed(42), "retry seed recorded");
        let result = report.rows[0].result.as_ref().unwrap();
        assert_eq!(result.stats.packets_sent, reseed(42));
        assert_eq!(report.ok_count(), 1);
    }

    #[test]
    fn retry_can_be_disabled() {
        let config = SupervisorConfig {
            retry: false,
            ..quick_config()
        };
        let jobs = vec![JobSpec {
            label: "bad".into(),
            seed: 1,
            job: Arc::new(|_| panic!("boom")),
        }];
        let report = run_campaign(jobs, &config);
        assert_eq!(report.rows[0].outcome, Outcome::Panicked);
        assert_eq!(report.rows[0].attempts, 1);
    }

    #[test]
    fn empty_campaign_is_trivially_complete() {
        let report = run_campaign(Vec::new(), &quick_config());
        assert!(report.is_complete());
        assert_eq!(report.ok_count(), 0);
        assert_eq!(report.summary(), "0/0 ok");
    }

    /// Regression: a crash-resumed attempt must be labeled distinctly from
    /// a reseeded retry. A resume continues the *same* seed's event stream
    /// bit-identically; a retry abandons it for a different draw — reports
    /// that conflated them would hide which rows are exact.
    #[test]
    fn resumed_outcome_is_distinct_from_retried() {
        assert_ne!(Outcome::Resumed, Outcome::Retried);
        assert_eq!(Outcome::Resumed.label(), "resumed");
        assert_ne!(Outcome::Resumed.label(), Outcome::Retried.label());
        // Both count as usable results…
        assert!(Outcome::Resumed.succeeded());
        assert!(Outcome::Retried.succeeded());
        // …so a resumed row is never rendered as a campaign hole.
        let report = CampaignReport {
            rows: vec![CampaignRow {
                label: "resumed-row".into(),
                seed: 7,
                outcome: Outcome::Resumed,
                attempts: 1,
                result: Some(fake_result(7)),
            }],
        };
        assert!(report.is_complete());
        assert_eq!(report.failures().count(), 0);
        assert_eq!(report.summary(), "1/1 ok");
    }
}
