//! Experiment runners: the paper's three measurement campaigns, executed
//! against the packet-level simulator.
//!
//! * [`run_hour`] — one 1-hour "infinite source" connection per path
//!   (Table II, Figs. 7 and 9);
//! * [`run_serial_100s`] — 100 serially initiated 100-second connections
//!   with 50-second gaps (Figs. 8 and 10); the gaps carry no traffic, so
//!   each connection is simulated independently with its own seed;
//! * [`run_modem`] — the Fig. 11 scenario: a dedicated-buffer bottleneck
//!   path on which RTT correlates with window size and the models fail to
//!   match the measured rate.
//!
//! [`run_table2`] fans the 24 hour-long experiments out through the
//! [`crate::supervisor`]: each path runs on its own budgeted worker
//! (wall-clock deadline, sim-event budget, panic isolation, one reseeded
//! retry) and the campaign returns a [`crate::supervisor::CampaignReport`]
//! — a partial Table II with explicit holes when paths fail, instead of a
//! poisoned join killing all 24 measurements.

use crate::journal::{self, CampaignRecord, Checkpoint, CrashPoint, Journal};
use crate::paths::{ModemSpec, PathSpec};
use crate::supervisor::{
    run_campaign, CampaignReport, CampaignRow, JobSpec, Outcome, SupervisorConfig,
};
use pftk_snap::{SnapError, SnapResult};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path as FsPath;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tcp_sim::cc::CcAlgorithm;
use tcp_sim::connection::{Connection, Observer};
use tcp_sim::link::{Bottleneck, Path};
use tcp_sim::loss::{Bernoulli, LossKind, Mixed, TimedGilbertElliott};
use tcp_sim::packet::{Ack, Segment};
use tcp_sim::queue::DropTail;
use tcp_sim::receiver::ReceiverConfig;
use tcp_sim::reno::rto::RtoConfig;
use tcp_sim::reno::sender::SenderConfig;
use tcp_sim::stats::ConnStats;
use tcp_sim::time::{SimDuration, SimTime};
use tcp_trace::analyzer::Analysis;
use tcp_trace::intervals::IntervalStats;
use tcp_trace::karn::TimingEstimates;
use tcp_trace::log::TraceLog;
use tcp_trace::record::Trace;
use tcp_trace::stream::{StreamAnalysis, StreamAnalyzer, StreamConfig, TraceSink};

/// A [`tcp_sim::Observer`] that consumes the sender-side wire trace — the
/// glue between the simulator and the analysis programs (the `tcpdump` of
/// this testbed). Two modes, combinable:
///
/// * **retain** — a columnar [`TraceLog`] keeps every event (a
///   steady-state push is three primitive stores into preallocated
///   columns; the zero-allocation audit pins this mode);
/// * **reduce** — a [`StreamAnalyzer`] folds each event into the paper's
///   statistics on the fly with O(window) state, so hour-long campaigns
///   never materialize their traces.
///
/// The retain-only constructors ([`TraceRecorder::new`],
/// [`TraceRecorder::for_horizon`]) keep their historical behavior;
/// campaign runners use [`TraceRecorder::streaming`] (reduce-only, the
/// default) or [`TraceRecorder::streaming_retained`] (both, the
/// retention opt-in).
#[derive(Debug)]
pub struct TraceRecorder {
    log: Option<TraceLog>,
    stream: Option<StreamAnalyzer>,
}

impl Default for TraceRecorder {
    /// The historical default: retain-only.
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// An empty retain-only recorder.
    pub fn new() -> Self {
        TraceRecorder {
            log: Some(TraceLog::new()),
            stream: None,
        }
    }

    /// A retain-only recorder preallocated for a run of `horizon_secs` at
    /// roughly `events_per_sec` wire events (sends + ACK arrivals) per
    /// second.
    pub fn for_horizon(horizon_secs: f64, events_per_sec: f64) -> Self {
        TraceRecorder {
            log: Some(TraceLog::for_horizon(horizon_secs, events_per_sec)),
            stream: None,
        }
    }

    /// A reduce-only recorder: every event folds into a [`StreamAnalyzer`]
    /// and nothing is retained.
    pub fn streaming(config: StreamConfig) -> Self {
        TraceRecorder {
            log: None,
            stream: Some(StreamAnalyzer::new(config)),
        }
    }

    /// A reduce-only recorder wrapping an existing analyzer — the seam for
    /// [`tcp_trace::stream::AnalyzerPool`]: fleet audits lease a recycled
    /// analyzer shell, wrap it here, and return it to the pool via
    /// [`TraceRecorder::into_stream`] when the connection finishes.
    pub fn streaming_with(analyzer: StreamAnalyzer) -> Self {
        TraceRecorder {
            log: None,
            stream: Some(analyzer),
        }
    }

    /// Consumes the recorder, yielding the analyzer itself (un-finished)
    /// so a pool can reduce and recycle it. `None` on retain-only
    /// recorders.
    pub fn into_stream(self) -> Option<StreamAnalyzer> {
        self.stream
    }

    /// A recorder that both reduces and retains (the trace-retention
    /// opt-in for runs whose events are re-read afterwards: exports,
    /// golden-trace comparisons, ad-hoc re-analysis).
    pub fn streaming_retained(
        config: StreamConfig,
        horizon_secs: f64,
        events_per_sec: f64,
    ) -> Self {
        TraceRecorder {
            log: Some(TraceLog::for_horizon(horizon_secs, events_per_sec)),
            stream: Some(StreamAnalyzer::new(config)),
        }
    }

    /// Consumes the recorder, yielding the retained trace.
    ///
    /// # Panics
    /// On a reduce-only recorder — retention is a construction-time
    /// choice, not a recoverable condition.
    pub fn into_trace(self) -> Trace {
        self.log
            //~ allow(expect): retention is a construction-time property of the recorder
            .expect("TraceRecorder::into_trace on a non-retaining recorder")
            .into_trace()
    }

    /// Consumes the recorder, yielding the streamed analysis (with the
    /// interval segmentation bounded by `total_secs`) and the retained
    /// trace — each present iff the corresponding mode was enabled.
    pub fn finish(self, total_secs: Option<f64>) -> (Option<StreamAnalysis>, Option<Trace>) {
        (
            self.stream.map(|s| s.finish(total_secs)),
            self.log.map(TraceLog::into_trace),
        )
    }

    /// Snapshot of the streaming analyzer's state, for checkpointed runs.
    /// `None` when the recorder retains a trace (a checkpoint would then be
    /// O(duration), so checkpointed campaigns run reduce-only) or has no
    /// analyzer at all.
    pub fn stream_snapshot(&self) -> Option<Vec<u8>> {
        if self.log.is_some() {
            return None;
        }
        self.stream.as_ref().map(StreamAnalyzer::snapshot)
    }

    /// A clone of the streaming analyzer's state, under the same
    /// availability rule as [`TraceRecorder::stream_snapshot`]. Cloning is
    /// a plain memcpy of the retained sample vectors — much cheaper than
    /// encoding — so checkpointed runs hand the clone to the journal's
    /// writer thread and serialize there ([`Journal::append_with`]).
    pub fn stream_clone(&self) -> Option<StreamAnalyzer> {
        if self.log.is_some() {
            return None;
        }
        self.stream.clone()
    }

    /// Restores the streaming analyzer from [`TraceRecorder::stream_snapshot`]
    /// bytes. The recorder must be reduce-only with an identically
    /// configured analyzer; on `Err` the analyzer state is unspecified and
    /// the recorder must be rebuilt before use.
    pub fn stream_restore(&mut self, bytes: &[u8]) -> SnapResult<()> {
        if self.log.is_some() {
            return Err(SnapError::Unsupported(
                "checkpoint restore into a trace-retaining recorder",
            ));
        }
        match &mut self.stream {
            Some(stream) => stream.restore(bytes),
            None => Err(SnapError::Invalid("recorder has no streaming analyzer")),
        }
    }
}

impl Observer for TraceRecorder {
    fn on_segment_sent(&mut self, at: SimTime, seg: Segment) {
        if let Some(log) = &mut self.log {
            log.push_send(at.as_nanos(), seg.seq, seg.retransmit);
        }
        if let Some(stream) = &mut self.stream {
            stream.on_send(at.as_nanos(), seg.seq, seg.retransmit);
        }
    }

    fn on_ack_received(&mut self, at: SimTime, ack: Ack) {
        if let Some(log) = &mut self.log {
            log.push_ack_in(at.as_nanos(), ack.ack);
        }
        if let Some(stream) = &mut self.stream {
            stream.on_ack_in(at.as_nanos(), ack.ack);
        }
    }
}

/// Per-run options: what the recorder keeps beyond the streamed analysis.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentOptions {
    /// Retain the full wire trace on the result (`ExperimentResult::trace`
    /// = `Some`). Off by default: campaigns that only read the analysis
    /// should not hold O(duration) memory per connection.
    pub retain_trace: bool,
    /// Interval length for the streamed segmentation (`Some(100.0)` = the
    /// paper's Fig. 7–10 intervals); `None` disables it.
    pub interval_secs: Option<f64>,
    /// Run the streamed RTT-vs-flight correlation diagnostic (Fig. 11).
    pub correlation: bool,
    /// Congestion-control variant the sender runs. The paper's campaigns
    /// are Reno; the variant matrix re-runs them per algorithm.
    pub cc: CcAlgorithm,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            retain_trace: false,
            interval_secs: Some(100.0),
            correlation: true,
            cc: CcAlgorithm::default(),
        }
    }
}

impl ExperimentOptions {
    /// The default options with trace retention switched on.
    pub fn retained() -> Self {
        ExperimentOptions {
            retain_trace: true,
            ..ExperimentOptions::default()
        }
    }
}

/// Result of one simulated connection.
///
/// Serializable so the campaign journal can record completed attempts
/// durably; `serde_json` round-trips every finite `f64` exactly, which is
/// what lets a journal-replayed row stay bit-identical to the live one
/// (the resume-equivalence gate checks this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The streamed analysis: loss indications, Karn timing, interval
    /// rows, RTT-vs-flight correlation — computed while simulating, no
    /// trace materialization.
    pub stream: StreamAnalysis,
    /// The full wire trace, retained only when
    /// [`ExperimentOptions::retain_trace`] was set.
    pub trace: Option<Trace>,
    /// Simulator ground-truth counters.
    pub stats: ConnStats,
    /// Ground-truth mean RTT from the sender's estimator, seconds.
    pub ground_rtt: Option<f64>,
    /// Ground-truth mean single-timeout duration, seconds.
    pub ground_t0: Option<f64>,
    /// Wall-clock horizon simulated, seconds. When the sim-event budget
    /// aborted the run early this is the time actually reached, so rates
    /// stay honest.
    pub duration_secs: f64,
    /// True when the sim-event budget stopped the run before the horizon
    /// (a runaway event loop was fenced off; the analysis covers only
    /// `duration_secs`).
    pub event_budget_hit: bool,
}

impl ExperimentResult {
    /// Ground-truth send rate, packets/second.
    pub fn send_rate(&self) -> f64 {
        self.stats.packets_sent as f64 / self.duration_secs
    }

    /// The streamed loss-indication analysis (what batch
    /// `analyze(&trace, _)` used to recompute).
    pub fn analysis(&self) -> &Analysis {
        &self.stream.analysis
    }

    /// The streamed Karn RTT / T0 estimates.
    pub fn timing(&self) -> Option<&TimingEstimates> {
        self.stream.timing.as_ref()
    }

    /// The streamed per-interval statistics.
    pub fn intervals(&self) -> Option<&[IntervalStats]> {
        self.stream.intervals.as_deref()
    }

    /// The streamed RTT-vs-flight correlation (Fig. 11 diagnostic).
    pub fn rtt_window_corr(&self) -> Option<f64> {
        self.stream.rtt_window_corr
    }
}

fn sender_config(spec: &PathSpec, cc: CcAlgorithm) -> SenderConfig {
    // All per-OS knobs come from the quirk bundle; the sender wraps its
    // controller in `Quirked`, so no protocol code branches on host
    // identity past this point.
    let quirks = spec.sender_os().quirks();
    SenderConfig {
        rwnd: spec.wmax,
        dupthresh: quirks.dupthresh,
        initial_cwnd: 1.0,
        rto: RtoConfig {
            // Calibration: the RTO floor pins the single-timeout duration to
            // the row's T0 (DESIGN.md §1); granularity stays fine so the
            // floor, not rounding, dominates.
            granularity: SimDuration::from_millis(10),
            min_rto: SimDuration::from_secs_f64(spec.t0),
            max_rto: SimDuration::from_secs_f64(spec.t0 * 64.0 * 4.0),
            initial_rto: SimDuration::from_secs_f64(spec.t0),
            backoff_cap_exp: quirks.backoff_cap_exp,
        },
        data_limit: None,
        // The paper models Reno-style recovery; the referee keeps the Reno
        // loss-recovery style while the congestion controller varies.
        style: tcp_sim::reno::sender::RenoStyle::Reno,
        cc,
    }
}

/// Calibrated wire-loss parameters: the path's loss process is a
/// [`Mixed`] union of isolated per-packet losses (which mostly yield
/// triple-duplicate recoveries) and timed loss bursts (which yield timeout
/// sequences, with backoff when an episode outlasts the RTO).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireLoss {
    /// Per-packet isolated-loss probability (drives the TD count).
    pub isolated_p: f64,
    /// Long-run fraction of time spent in a loss burst (drives the TO count).
    pub burst_time_frac: f64,
    /// Mean burst duration, seconds.
    pub mean_burst_secs: f64,
}

impl WireLoss {
    fn build(&self) -> LossKind {
        let mut components: Vec<LossKind> = Vec::new();
        if self.isolated_p > 0.0 {
            components.push(Bernoulli::new(self.isolated_p).into());
        }
        if self.burst_time_frac > 0.0 {
            components.push(
                TimedGilbertElliott::from_rate_and_burst_secs(
                    self.burst_time_frac,
                    self.mean_burst_secs,
                )
                .into(),
            );
        }
        Mixed::from_kinds(components).into()
    }

    /// Exact bit image, for journaled checkpoints: a resumed run rebuilds
    /// its loss process from these bits instead of re-calibrating, so the
    /// parameters are bit-identical by construction.
    fn to_bits(self) -> [u64; 3] {
        [
            self.isolated_p.to_bits(),
            self.burst_time_frac.to_bits(),
            self.mean_burst_secs.to_bits(),
        ]
    }

    /// Inverse of [`WireLoss::to_bits`].
    fn from_bits(bits: [u64; 3]) -> WireLoss {
        WireLoss {
            isolated_p: f64::from_bits(bits[0]),
            burst_time_frac: f64::from_bits(bits[1]),
            mean_burst_secs: f64::from_bits(bits[2]),
        }
    }
}

/// Finds wire-loss parameters whose *analyzed* TD and TO rates match the
/// Table II row. Real Reno's mapping from wire loss to loss indications is
/// not identity (a burst becomes several window reductions; an isolated
/// loss in a small window becomes a timeout), so both knobs are solved by a
/// multiplicative fixed point against short probe runs.
pub fn calibrate_wire_loss(spec: &PathSpec, seed: u64) -> WireLoss {
    let packets = spec.paper_packets.max(1) as f64;
    let td_target = spec.paper_td as f64 / packets;
    let to_target = spec.paper_loss.saturating_sub(spec.paper_td) as f64 / packets;
    // Burst episodes ~3/4 of the RTO: a realistic minority outlast the
    // first timeout (→ T1+ columns); the cap keeps large loss targets
    // reachable on paths with very long RTOs (pif→alps: T0 = 7.3 s).
    let mut wire = WireLoss {
        isolated_p: td_target * 2.0,
        burst_time_frac: to_target,
        mean_burst_secs: (spec.t0 * 0.75).clamp(0.2, 1.5),
    };
    // Probe runs stream their classification: only the loss-indication
    // counts feed the fixed point, so retaining probe traces (or running
    // the timing/interval reductions) would be pure overhead.
    let probe_opts = ExperimentOptions {
        retain_trace: false,
        interval_secs: None,
        correlation: false,
        // Calibration always probes with the Reno referee: wire-loss
        // parameters are a property of the path, pinned against the
        // paper's own (Reno) loss-indication rates, so every variant runs
        // over the identical calibrated wire.
        cc: CcAlgorithm::default(),
    };
    for iter in 0..5 {
        let r = run_connection_raw(spec, wire, 400.0, seed.wrapping_add(iter), &probe_opts);
        let a = r.analysis();
        if a.packets_sent == 0 {
            break;
        }
        let sent = a.packets_sent as f64;
        let td_rate = a.td_count() as f64 / sent;
        let to_rate = a.to_count() as f64 / sent;
        if td_target > 0.0 {
            let factor = if td_rate > 0.0 {
                td_target / td_rate
            } else {
                3.0
            };
            wire.isolated_p = (wire.isolated_p * factor.clamp(0.2, 5.0)).clamp(1e-7, 0.3);
        } else {
            wire.isolated_p = 0.0;
        }
        if to_target > 0.0 {
            let factor = if to_rate > 0.0 {
                to_target / to_rate
            } else {
                3.0
            };
            wire.burst_time_frac = (wire.burst_time_frac * factor.clamp(0.2, 5.0)).clamp(1e-7, 0.6);
        } else {
            wire.burst_time_frac = 0.0;
        }
    }
    wire
}

/// Sim-event budget for supervised runs: a 1-hour Table II trace needs a
/// few million events; anything past this is a runaway loop, not a
/// measurement.
pub const DEFAULT_EVENT_BUDGET: u64 = 50_000_000;

fn stream_config(spec: &PathSpec, opts: &ExperimentOptions) -> StreamConfig {
    StreamConfig {
        analyzer: tcp_trace::analyzer::AnalyzerConfig {
            dupack_threshold: spec.sender_os().dupack_threshold(),
        },
        interval_secs: opts.interval_secs,
        timing: true,
        correlation: opts.correlation,
    }
}

fn run_connection(
    spec: &PathSpec,
    horizon_secs: f64,
    seed: u64,
    opts: &ExperimentOptions,
) -> ExperimentResult {
    let wire = calibrate_wire_loss(spec, seed.wrapping_mul(31).wrapping_add(17));
    run_connection_raw(spec, wire, horizon_secs, seed, opts)
}

fn run_connection_raw(
    spec: &PathSpec,
    wire: WireLoss,
    horizon_secs: f64,
    seed: u64,
    opts: &ExperimentOptions,
) -> ExperimentResult {
    run_connection_budgeted(spec, wire, horizon_secs, seed, u64::MAX, opts)
}

/// Builds the identically configured connection behind every wire-loss
/// run: shared by the straight-through and the checkpointed runners, so a
/// resumed connection is rebuilt from exactly the configuration the
/// crashed one had (the snapshot codec restores mutable state only).
fn build_wire_connection(
    spec: &PathSpec,
    wire: WireLoss,
    horizon_secs: f64,
    seed: u64,
    opts: &ExperimentOptions,
) -> Connection<TraceRecorder> {
    // Mild jitter (5% of RTT) keeps RTT samples realistic without breaking
    // the RTT-independence assumption the non-modem paths must satisfy.
    let half = spec.rtt / 2.0;
    let jitter = SimDuration::from_secs_f64(spec.rtt * 0.05);
    let fwd = Path::constant(SimDuration::from_secs_f64(half)).with_jitter(jitter);
    let rev = Path::constant(SimDuration::from_secs_f64(half)).with_jitter(jitter);
    let config = stream_config(spec, opts);
    let recorder = if opts.retain_trace {
        // Preallocate the trace from the paper's hour-long packet count for
        // this path: sends plus delayed (b=2) ACK arrivals ≈ 1.5× packets.
        TraceRecorder::streaming_retained(
            config,
            horizon_secs,
            spec.paper_packets.max(1) as f64 / 3600.0 * 1.5,
        )
    } else {
        TraceRecorder::streaming(config)
    };
    Connection::builder()
        .fwd_path(fwd)
        .rev_path(rev)
        .loss(wire.build())
        .sender_config(sender_config(spec, opts.cc))
        .receiver_config(ReceiverConfig::default())
        .seed(seed)
        .build_with_observer(recorder)
}

/// Drains the finished connection into an [`ExperimentResult`].
fn finish_wire_connection(
    mut conn: Connection<TraceRecorder>,
    horizon_secs: f64,
    event_budget_hit: bool,
) -> ExperimentResult {
    conn.finish();
    let stats = conn.stats();
    let ground_rtt = conn.sender().rto_estimator().mean_rtt();
    let ground_t0 = conn.sender().rto_estimator().mean_t0();
    // On abort the clock stays at the last processed event; report the
    // horizon actually covered so rates are not inflated.
    let duration_secs = if event_budget_hit {
        conn.now().as_secs_f64().max(1e-9)
    } else {
        horizon_secs
    };
    let (stream, trace) = conn.into_observer().finish(Some(duration_secs));
    ExperimentResult {
        stream: stream.unwrap_or_default(),
        trace,
        stats,
        ground_rtt,
        ground_t0,
        duration_secs,
        event_budget_hit,
    }
}

fn run_connection_budgeted(
    spec: &PathSpec,
    wire: WireLoss,
    horizon_secs: f64,
    seed: u64,
    max_events: u64,
    opts: &ExperimentOptions,
) -> ExperimentResult {
    let mut conn = build_wire_connection(spec, wire, horizon_secs, seed, opts);
    let event_budget_hit = conn.run_until_budget(SimTime::from_secs_f64(horizon_secs), max_events);
    finish_wire_connection(conn, horizon_secs, event_budget_hit)
}

/// One hour-long "infinite source" connection (§III, first experiment set).
/// Streaming analysis, no trace retention; see [`run_hour_with`].
pub fn run_hour(spec: &PathSpec, seed: u64) -> ExperimentResult {
    run_connection(spec, 3600.0, seed, &ExperimentOptions::default())
}

/// [`run_hour`] with explicit [`ExperimentOptions`] (e.g. trace retention
/// for golden-trace comparisons).
pub fn run_hour_with(spec: &PathSpec, seed: u64, opts: &ExperimentOptions) -> ExperimentResult {
    run_connection(spec, 3600.0, seed, opts)
}

/// [`run_hour`] with an explicit sim-event budget: the supervised form used
/// by [`run_table2`] workers so a runaway event loop degrades to a
/// truncated (but analyzable) result instead of wedging the worker.
pub fn run_hour_budgeted(spec: &PathSpec, seed: u64, max_events: u64) -> ExperimentResult {
    run_hour_budgeted_with(spec, seed, max_events, &ExperimentOptions::default())
}

/// [`run_hour_budgeted`] with explicit [`ExperimentOptions`].
pub fn run_hour_budgeted_with(
    spec: &PathSpec,
    seed: u64,
    max_events: u64,
    opts: &ExperimentOptions,
) -> ExperimentResult {
    let wire = calibrate_wire_loss(spec, seed.wrapping_mul(31).wrapping_add(17));
    run_connection_budgeted(spec, wire, 3600.0, seed, max_events, opts)
}

/// The second §III campaign: `n` serially initiated 100-second connections.
/// The 50-second gaps carry no traffic; each connection gets an independent
/// seed derived from `base_seed` and its index.
pub fn run_serial_100s(spec: &PathSpec, n: usize, base_seed: u64) -> Vec<ExperimentResult> {
    run_serial_100s_with(spec, n, base_seed, &ExperimentOptions::default())
}

/// [`run_serial_100s`] with explicit [`ExperimentOptions`].
pub fn run_serial_100s_with(
    spec: &PathSpec,
    n: usize,
    base_seed: u64,
    opts: &ExperimentOptions,
) -> Vec<ExperimentResult> {
    // One calibration pass serves all n connections (the path doesn't change
    // between them).
    let wire = calibrate_wire_loss(spec, base_seed.wrapping_mul(31).wrapping_add(17));
    (0..n)
        .map(|i| {
            run_connection_raw(
                spec,
                wire,
                100.0,
                base_seed.wrapping_mul(1000).wrapping_add(i as u64),
                opts,
            )
        })
        .collect()
}

/// Runs all 24 Table II hour-long experiments under supervision; the
/// report's rows are in `specs` order, one per path, with per-path seed
/// `base_seed + index` (so row *i* reproduces `run_hour(&specs[i],
/// base_seed + i)`).
///
/// A panicking, hanging, or runaway path no longer kills the campaign:
/// its row is labeled (`Panicked`/`TimedOut`) and the remaining paths'
/// results survive — a partial Table II with explicit holes.
pub fn run_table2(specs: &[PathSpec], base_seed: u64) -> CampaignReport {
    run_table2_supervised(specs, base_seed, &SupervisorConfig::default())
}

/// [`run_table2`] with explicit supervisor tunables (tests use short wall
/// budgets).
pub fn run_table2_supervised(
    specs: &[PathSpec],
    base_seed: u64,
    config: &SupervisorConfig,
) -> CampaignReport {
    let jobs: Vec<JobSpec> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let spec = *spec;
            JobSpec {
                label: spec.id(),
                seed: base_seed.wrapping_add(i as u64),
                job: Arc::new(move |seed| run_hour_budgeted(&spec, seed, DEFAULT_EVENT_BUDGET)),
            }
        })
        .collect();
    run_campaign(jobs, config)
}

/// Tunables for a crash-safe, journaled campaign
/// ([`run_table2_journaled`]).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Supervisor tunables for the underlying campaign.
    pub supervisor: SupervisorConfig,
    /// Sim-time checkpoint cadence, seconds; non-positive disables
    /// checkpointing (completed attempts are still journaled).
    pub checkpoint_sim_secs: f64,
    /// Run horizon per connection, seconds (the paper's hour).
    pub horizon_secs: f64,
    /// Sim-event budget per attempt.
    pub event_budget: u64,
    /// Congestion-control variant every attempt runs. Part of the
    /// checkpoint compatibility surface: the connection snapshot carries
    /// the controller's algorithm tag, so a checkpoint written under a
    /// different variant fails restore and the attempt reruns fresh.
    pub cc: CcAlgorithm,
    /// Test instrumentation: a campaign-wide countdown that panics a
    /// worker at the n-th checkpoint boundary, simulating a crash (the
    /// resume-equivalence gate arms this; production campaigns leave it
    /// `None`).
    pub crash: Option<Arc<CrashPoint>>,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            supervisor: SupervisorConfig::default(),
            // A dozen checkpoints per hour-long run: losing a process costs
            // at most 5 sim-minutes of re-simulation per in-flight path.
            checkpoint_sim_secs: 300.0,
            horizon_secs: 3600.0,
            event_budget: DEFAULT_EVENT_BUDGET,
            cc: CcAlgorithm::default(),
            crash: None,
        }
    }
}

/// Everything a checkpointed run needs to know about its journal.
struct CheckpointCtx<'a> {
    journal: &'a Journal,
    job_index: u64,
    every_sim_secs: f64,
    resume: Option<&'a Checkpoint>,
    crash: Option<&'a CrashPoint>,
}

/// Runs one connection in sim-time slices, journaling a snapshot between
/// slices; returns the result and whether the run resumed from a
/// checkpoint.
///
/// Determinism: slice boundaries are absolute multiples of the cadence
/// (`t_k = k · every`), and the checkpoint records the next boundary
/// index, so an interrupted-and-resumed run executes exactly the boundary
/// sequence of an uninterrupted one — and `Connection::run_until_budget`
/// is boundary-insensitive (the sim is event-driven; splitting a run at
/// any time yields the identical event stream). Snapshot *encoding*
/// happens here on the worker thread strictly between slices, and all
/// journal I/O happens on the journal's writer thread, so the sim hot
/// path never sees either.
fn run_connection_checkpointed(
    spec: &PathSpec,
    wire: WireLoss,
    horizon_secs: f64,
    seed: u64,
    max_events: u64,
    opts: &ExperimentOptions,
    ctx: &CheckpointCtx<'_>,
) -> (ExperimentResult, bool) {
    let mut conn = build_wire_connection(spec, wire, horizon_secs, seed, opts);
    let mut next_boundary: u64 = 1;
    let mut resumed = false;
    if let Some(cp) = ctx.resume {
        let compatible = cp.seed == seed
            && cp.horizon_bits == horizon_secs.to_bits()
            && cp.every_bits == ctx.every_sim_secs.to_bits()
            && cp.wire_bits == wire.to_bits();
        if compatible
            && conn.restore(&cp.conn).is_ok()
            && conn.observer_mut().stream_restore(&cp.stream).is_ok()
        {
            next_boundary = cp.next_boundary;
            resumed = true;
        } else {
            // A stale or mismatched checkpoint is not an error; restore may
            // have half-applied, so rebuild and run from the start.
            conn = build_wire_connection(spec, wire, horizon_secs, seed, opts);
        }
    }
    let every = if ctx.every_sim_secs > 0.0 {
        ctx.every_sim_secs
    } else {
        // Checkpointing disabled: one slice covers the whole horizon.
        horizon_secs
    };
    let event_budget_hit = loop {
        let t = ((next_boundary as f64) * every).min(horizon_secs);
        let hit = conn.run_until_budget(SimTime::from_secs_f64(t), max_events);
        if hit || t >= horizon_secs {
            break hit;
        }
        // Capture state on the worker thread, strictly between sim
        // slices: the connection snapshot is a few hundred bytes (encode
        // it here), while the analyzer state runs to hundreds of
        // kilobytes — clone it (a memcpy) and let the journal's writer
        // thread do the expensive encode and the blocking I/O.
        if let (Ok(conn_bytes), Some(analyzer)) = (conn.snapshot(), conn.observer().stream_clone())
        {
            let (job_index, wire_bits) = (ctx.job_index, wire.to_bits());
            let (horizon_bits, every_bits) = (horizon_secs.to_bits(), every.to_bits());
            let boundary = next_boundary + 1;
            ctx.journal.append_with(move || {
                CampaignRecord::Checkpoint(Checkpoint {
                    job_index,
                    seed,
                    wire_bits,
                    horizon_bits,
                    every_bits,
                    next_boundary: boundary,
                    conn: conn_bytes,
                    stream: analyzer.snapshot(),
                })
                .encode()
            });
        }
        if let Some(crash) = ctx.crash {
            crash.tick();
        }
        next_boundary += 1;
    };
    (
        finish_wire_connection(conn, horizon_secs, event_budget_hit),
        resumed,
    )
}

/// Crash-safe [`run_table2`]: the campaign writes a write-ahead journal at
/// `journal_path` and can be re-invoked with the same arguments after a
/// crash (process kill, power loss) to pick up where it left off.
///
/// * attempts already recorded as complete are **replayed** from the
///   journal without re-running (their rows keep the recorded outcome);
/// * attempts with an in-flight checkpoint **resume** from it and are
///   labeled [`Outcome::Resumed`] — their results are bit-identical to an
///   uninterrupted run (`tests/resume_equivalence.rs` gates this);
/// * a torn or corrupt journal tail is treated as a clean truncation: the
///   affected work is re-run, the campaign never aborts.
///
/// Completion records are fsync'd before the row is reported; checkpoints
/// are written asynchronously off the simulation threads. The journal is
/// strictly append-only — resuming never rewrites existing bytes.
//= pftk#crash-resume
pub fn run_table2_journaled(
    specs: &[PathSpec],
    base_seed: u64,
    journal_path: &FsPath,
    config: &JournalConfig,
) -> io::Result<CampaignReport> {
    let state = journal::replay(journal_path)?.fold();
    let journal = Arc::new(Journal::open(journal_path)?);
    let n = specs.len();
    let mut prefilled: Vec<Option<CampaignRow>> = (0..n).map(|_| None).collect();
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut live_flags: Vec<(usize, Arc<AtomicBool>)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let job_index = i as u64;
        let first_seed = base_seed.wrapping_add(job_index);
        if let Some(done) = state.done.get(&job_index) {
            if let Ok(result) = std::str::from_utf8(&done.result_json)
                .map_err(|_| ())
                .and_then(|s| serde_json::from_str::<ExperimentResult>(s).map_err(|_| ()))
            {
                let outcome = if done.resumed {
                    Outcome::Resumed
                } else if done.seed == first_seed {
                    Outcome::Ok
                } else {
                    Outcome::Retried
                };
                prefilled[i] = Some(CampaignRow {
                    label: done.label.clone(),
                    seed: done.seed,
                    outcome,
                    attempts: if done.seed == first_seed { 1 } else { 2 },
                    result: Some(result),
                });
                continue;
            }
            // An undecodable result payload re-runs the attempt — same
            // never-abort policy as a torn tail.
        }
        let resume = state.inflight.get(&job_index).cloned();
        let resumed_flag = Arc::new(AtomicBool::new(false));
        live_flags.push((i, Arc::clone(&resumed_flag)));
        let spec = *spec;
        let label = spec.id();
        let journal = Arc::clone(&journal);
        let crash = config.crash.clone();
        let every = config.checkpoint_sim_secs;
        let horizon = config.horizon_secs;
        let budget = config.event_budget;
        let cc = config.cc;
        jobs.push(JobSpec {
            label: label.clone(),
            seed: first_seed,
            job: Arc::new(move |seed| {
                // Only a checkpoint of this very attempt (same seed) may be
                // resumed; a reseeded retry starts fresh.
                let resume = resume.as_ref().filter(|cp| cp.seed == seed);
                let wire = match resume {
                    // The stored bits equal what calibration would produce
                    // (it is seed-deterministic); using them skips the probe
                    // runs and is exact by construction.
                    Some(cp) => WireLoss::from_bits(cp.wire_bits),
                    None => calibrate_wire_loss(&spec, seed.wrapping_mul(31).wrapping_add(17)),
                };
                let ctx = CheckpointCtx {
                    journal: journal.as_ref(),
                    job_index,
                    every_sim_secs: every,
                    resume,
                    crash: crash.as_deref(),
                };
                let (result, resumed) = run_connection_checkpointed(
                    &spec,
                    wire,
                    horizon,
                    seed,
                    budget,
                    &ExperimentOptions {
                        cc,
                        ..ExperimentOptions::default()
                    },
                    &ctx,
                );
                // Durable completion record *before* the supervisor sees
                // the row: once a row is reported, it is never recomputed.
                if let Ok(json) = serde_json::to_string(&result) {
                    let _ = journal.append_sync(
                        CampaignRecord::AttemptDone {
                            job_index,
                            label: label.clone(),
                            seed,
                            resumed,
                            result_json: json.into_bytes(),
                        }
                        .encode(),
                    );
                }
                resumed_flag.store(resumed, Ordering::Release);
                result
            }),
        });
    }
    let live_report = run_campaign(jobs, &config.supervisor);
    // Merge replayed and live rows back into spec order (live rows come
    // out of `run_campaign` in submission order, which is spec order with
    // the replayed indices skipped).
    let mut live_rows = live_report.rows.into_iter();
    let mut rows: Vec<CampaignRow> = Vec::with_capacity(n);
    for pre in prefilled {
        match pre {
            Some(row) => rows.push(row),
            None => {
                let Some(row) = live_rows.next() else {
                    // run_campaign guarantees one row per job; degrade
                    // rather than panic if that ever breaks.
                    break;
                };
                rows.push(row);
            }
        }
    }
    let mut report = CampaignReport { rows };
    for (i, flag) in live_flags {
        if flag.load(Ordering::Acquire) {
            if let Some(row) = report.rows.get_mut(i) {
                if row.outcome == Outcome::Ok {
                    row.outcome = Outcome::Resumed;
                }
            }
        }
    }
    // Flush and join the writer before returning so the journal is durable
    // and byte-stable the moment the report is in hand. An abandoned
    // (timed-out) attempt may still hold a journal handle; its drop will
    // flush whenever it finally dies.
    if let Ok(journal) = Arc::try_unwrap(journal) {
        journal.close()?;
    }
    Ok(report)
}

/// The Fig. 11 modem experiment: no random loss at all — every drop comes
/// from the dedicated drop-tail buffer in front of the slow link, and the
/// standing queue makes RTT grow with the window.
pub fn run_modem(spec: &ModemSpec, horizon_secs: f64, seed: u64) -> ExperimentResult {
    run_modem_with(spec, horizon_secs, seed, &ExperimentOptions::default())
}

/// [`run_modem`] with explicit [`ExperimentOptions`].
pub fn run_modem_with(
    spec: &ModemSpec,
    horizon_secs: f64,
    seed: u64,
    opts: &ExperimentOptions,
) -> ExperimentResult {
    let half = spec.base_rtt / 2.0;
    let fwd = Path::constant(SimDuration::from_secs_f64(half)).with_bottleneck(Bottleneck::new(
        spec.bottleneck_pps,
        Box::new(DropTail::new(spec.buffer_packets)),
    ));
    let rev = Path::constant(SimDuration::from_secs_f64(half));
    let sender = SenderConfig {
        rwnd: spec.wmax,
        dupthresh: 3,
        initial_cwnd: 1.0,
        rto: RtoConfig::default(),
        data_limit: None,
        style: tcp_sim::reno::sender::RenoStyle::Reno,
        cc: opts.cc,
    };
    // Modem sender is a standard-threshold stack (dupthresh 3).
    let config = StreamConfig {
        analyzer: tcp_trace::analyzer::AnalyzerConfig::default(),
        interval_secs: opts.interval_secs,
        timing: true,
        correlation: opts.correlation,
    };
    let recorder = if opts.retain_trace {
        // Bottleneck-limited: the wire rate cannot exceed the bottleneck
        // packet rate (plus its ACK stream).
        TraceRecorder::streaming_retained(config, horizon_secs, spec.bottleneck_pps * 1.5)
    } else {
        TraceRecorder::streaming(config)
    };
    let mut conn = Connection::builder()
        .fwd_path(fwd)
        .rev_path(rev)
        .loss(Box::new(tcp_sim::loss::Bernoulli::new(spec.wire_loss)))
        .sender_config(sender)
        .seed(seed)
        .build_with_observer(recorder);
    conn.run_for(SimDuration::from_secs_f64(horizon_secs));
    conn.finish();
    let stats = conn.stats();
    let ground_rtt = conn.sender().rto_estimator().mean_rtt();
    let ground_t0 = conn.sender().rto_estimator().mean_t0();
    let (stream, trace) = conn.into_observer().finish(Some(horizon_secs));
    ExperimentResult {
        stream: stream.unwrap_or_default(),
        trace,
        stats,
        ground_rtt,
        ground_t0,
        duration_secs: horizon_secs,
        event_budget_hit: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{table2_path, TABLE2_PATHS};
    use tcp_trace::analyzer::{analyze, AnalyzerConfig};

    #[test]
    fn hour_run_produces_consistent_analysis_and_stats() {
        let spec = table2_path("manic", "baskerville").unwrap();
        let r = run_hour(spec, 1);
        assert!(
            r.trace.is_none(),
            "campaign default must not retain the trace"
        );
        assert_eq!(r.analysis().packets_sent, r.stats.packets_sent);
        assert!(r.stats.packets_sent > 1000, "sent {}", r.stats.packets_sent);
        assert!(r.stats.loss_indications() > 50);
        assert!(r.send_rate() > 1.0);
        // The streamed reductions all ran.
        assert!(r.timing().is_some());
        assert_eq!(r.intervals().map(<[_]>::len), Some(36));
    }

    #[test]
    fn retained_run_matches_batch_analysis_bit_for_bit() {
        let spec = table2_path("manic", "baskerville").unwrap();
        let retained = run_hour_with(spec, 1, &ExperimentOptions::retained());
        let trace = retained.trace.as_ref().expect("retention requested");
        // Send count in the retained trace matches ground truth.
        assert_eq!(
            trace
                .records()
                .iter()
                .filter(|rec| matches!(rec.event, tcp_trace::record::TraceEvent::Send { .. }))
                .count() as u64,
            retained.stats.packets_sent
        );
        // Streamed analysis == batch analysis of the retained trace.
        let analyzer = AnalyzerConfig {
            dupack_threshold: spec.sender_os().dupack_threshold(),
        };
        assert_eq!(retained.analysis(), &analyze(trace, analyzer));
        assert_eq!(
            retained.timing(),
            Some(&tcp_trace::karn::estimate_timing(trace))
        );
        // And retention does not perturb the simulation itself.
        let plain = run_hour(spec, 1);
        assert_eq!(plain.stats, retained.stats);
        assert_eq!(plain.analysis(), retained.analysis());
    }

    #[test]
    fn calibrated_rtt_and_t0_close_to_paper() {
        let spec = table2_path("manic", "baskerville").unwrap();
        let r = run_hour(spec, 2);
        let rtt = r.ground_rtt.unwrap();
        assert!(
            (rtt - spec.rtt).abs() / spec.rtt < 0.25,
            "ground RTT {rtt} vs paper {}",
            spec.rtt
        );
        let t0 = r.ground_t0.unwrap();
        assert!(
            (t0 - spec.t0).abs() / spec.t0 < 0.25,
            "ground T0 {t0} vs paper {}",
            spec.t0
        );
    }

    #[test]
    fn calibrated_loss_rate_in_range() {
        let spec = table2_path("void", "maria").unwrap();
        assert_eq!(spec.sender_os().dupack_threshold(), 2, "Linux sender");
        let r = run_hour(spec, 3);
        let p = r.analysis().loss_rate();
        let target = spec.paper_loss_rate();
        assert!(
            p > target * 0.4 && p < target * 2.5,
            "analyzed p {p} vs paper {target}"
        );
    }

    #[test]
    fn serial_runs_are_independent_and_deterministic() {
        let spec = table2_path("manic", "ganef").unwrap();
        let a = run_serial_100s(spec, 3, 7);
        let b = run_serial_100s(spec, 3, 7);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats);
        }
        // Different connections differ.
        assert_ne!(a[0].stats.packets_sent, a[1].stats.packets_sent);
    }

    #[test]
    fn parallel_table2_matches_sequential() {
        let specs = &TABLE2_PATHS[..4];
        let report = run_table2(specs, 99);
        assert!(report.is_complete(), "campaign: {}", report.summary());
        for (i, spec) in specs.iter().enumerate() {
            let row = &report.rows[i];
            assert_eq!(row.label, spec.id());
            assert_eq!(row.outcome, crate::supervisor::Outcome::Ok);
            let seq = run_hour(spec, 99 + i as u64);
            let par = row.result.as_ref().unwrap();
            assert_eq!(par.stats, seq.stats, "path {}", spec.id());
        }
    }

    #[test]
    fn event_budget_truncates_honestly() {
        let spec = table2_path("manic", "baskerville").unwrap();
        let r = run_hour_budgeted(spec, 1, 20_000);
        assert!(r.event_budget_hit, "20k events cannot cover an hour");
        assert!(
            r.duration_secs < 3600.0,
            "reported horizon must shrink on abort ({})",
            r.duration_secs
        );
        assert!(r.duration_secs > 0.0);
        // The truncated run is still analyzable and rate-consistent.
        assert!(r.send_rate() > 0.0);
        assert_eq!(r.analysis().packets_sent, r.stats.packets_sent);
        // The unbudgeted full hour, by contrast, finishes clean.
        let full = run_hour(spec, 1);
        assert!(!full.event_budget_hit);
        assert_eq!(full.duration_secs, 3600.0);
    }

    #[test]
    fn journaled_campaign_completes_and_replays_without_rerunning() {
        let path = std::env::temp_dir().join(format!(
            "pftk-journal-exp-{}-replay.waj",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let specs = &TABLE2_PATHS[..2];
        let cfg = JournalConfig {
            horizon_secs: 120.0,
            checkpoint_sim_secs: 30.0,
            ..JournalConfig::default()
        };
        let first = run_table2_journaled(specs, 5, &path, &cfg).unwrap();
        assert!(first.is_complete(), "campaign: {}", first.summary());
        assert_eq!(first.rows[0].outcome, Outcome::Ok);
        let bytes = std::fs::read(&path).unwrap();
        assert!(!bytes.is_empty());

        // Re-invocation replays every row from the journal: no attempt is
        // re-run (the journal stays byte-identical) and the replayed rows —
        // which round-trip through the serialized result — are exactly the
        // live ones.
        let second = run_table2_journaled(specs, 5, &path, &cfg).unwrap();
        assert!(second.is_complete());
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "journal rewritten");
        for (live, replayed) in first.rows.iter().zip(&second.rows) {
            assert_eq!(live.label, replayed.label);
            assert_eq!(live.outcome, replayed.outcome);
            assert_eq!(live.result, replayed.result, "row {}", live.label);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn modem_shows_rtt_window_correlation() {
        let r = run_modem(&ModemSpec::default(), 1800.0, 5);
        let corr = r.rtt_window_corr().unwrap();
        // §IV: "we found the coefficient of correlation to be as high as
        // 0.97" on modem paths.
        assert!(
            corr > 0.6,
            "correlation {corr} too weak for the modem regime"
        );
        // And the RTT is queueing-dominated: far above the base 0.3 s.
        assert!(r.ground_rtt.unwrap() > 1.0, "RTT {:?}", r.ground_rtt);
    }

    #[test]
    fn modem_drops_come_from_the_buffer() {
        let r = run_modem(&ModemSpec::default(), 900.0, 6);
        // No random loss was configured, yet the connection must experience
        // loss indications (buffer overflow).
        assert!(r.stats.loss_indications() > 0);
    }
}
