//! Write-ahead campaign journal: crash safety for hour-scale campaigns.
//!
//! A journaled campaign appends two kinds of records to a single
//! append-only file while it runs:
//!
//! * **`AttemptDone`** — a completed experiment (label, seed, and the full
//!   serialized [`crate::experiment::ExperimentResult`]), written with an
//!   `fsync` before the supervisor reports the row, so a completed attempt
//!   is never lost or recomputed;
//! * **`Checkpoint`** — periodic in-flight state (the simulator's
//!   [`Connection::snapshot`](tcp_sim::connection::Connection::snapshot)
//!   plus the streaming analyzer's snapshot), written asynchronously so
//!   the sim hot path never blocks on I/O.
//!
//! On startup [`replay`] scans the journal: completed attempts are
//! reconstructed without re-running, in-flight attempts resume from their
//! last checkpoint, and a torn tail — a partial header, a short payload, a
//! checksum mismatch, an undecodable record — is treated as a clean
//! truncation of everything from that point on. Replay never aborts: the
//! worst possible corruption merely re-runs work.
//!
//! # Record framing
//!
//! ```text
//! ┌────────────┬────────────┬────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (len B)│   repeated
//! └────────────┴────────────┴────────────────┘
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload. Each record is written with
//! a single `write_all` of the fully assembled frame, so a crash leaves at
//! most one torn record — always at the tail.
//!
//! The payload is a [`CampaignRecord`] encoded with the `pftk-snap` codec
//! (the same writer/reader discipline as the simulator snapshots; see
//! DESIGN.md §13).

use pftk_snap::{crc32, SnapError, SnapReader, SnapResult, SnapWriter};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Sanity cap on a single record's payload (a Table II checkpoint is a few
/// tens of kilobytes; anything near this is corruption, not data).
const MAX_RECORD_LEN: u32 = 1 << 30;

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignRecord {
    /// A completed attempt: the row can be reconstructed without re-running.
    AttemptDone {
        /// Index of the job in the campaign's submission order.
        job_index: u64,
        /// The row label (path id).
        label: String,
        /// Seed of the attempt that completed (the reseeded one for a
        /// retry).
        seed: u64,
        /// True when the attempt itself resumed from a checkpoint.
        resumed: bool,
        /// `serde_json`-serialized `ExperimentResult`.
        result_json: Vec<u8>,
    },
    /// In-flight state of a running attempt at a checkpoint boundary.
    Checkpoint(Checkpoint),
}

/// The resumable in-flight state of one attempt. Every field a resumer
/// needs to rebuild an identically configured connection is carried here;
/// the `*_bits` fields are exact `f64::to_bits` images so a resumed run is
/// parameterized bit-identically to the crashed one.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Index of the job in the campaign's submission order.
    pub job_index: u64,
    /// Seed of the attempt being checkpointed; a resumer only restores
    /// when its attempt seed matches (a reseeded retry must start fresh).
    pub seed: u64,
    /// Calibrated wire-loss parameters (`isolated_p`, `burst_time_frac`,
    /// `mean_burst_secs`), as bits.
    pub wire_bits: [u64; 3],
    /// The run horizon in seconds, as bits.
    pub horizon_bits: u64,
    /// The checkpoint cadence in sim-seconds, as bits. A resumer with a
    /// different cadence would slice the remaining run at different
    /// boundaries; it discards the checkpoint and restarts instead.
    pub every_bits: u64,
    /// Index `k` of the next slice boundary (`t = k · every`), so the
    /// resumed run continues the exact boundary sequence.
    pub next_boundary: u64,
    /// `Connection::snapshot` bytes.
    pub conn: Vec<u8>,
    /// `StreamAnalyzer::snapshot` bytes.
    pub stream: Vec<u8>,
}

const TAG_ATTEMPT_DONE: u8 = 1;
const TAG_CHECKPOINT: u8 = 2;

impl CampaignRecord {
    /// Encodes the record payload (framing is the writer's concern).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::with_capacity(64);
        match self {
            CampaignRecord::AttemptDone {
                job_index,
                label,
                seed,
                resumed,
                result_json,
            } => {
                w.put_u8(TAG_ATTEMPT_DONE);
                w.put_u64(*job_index);
                w.put_str(label);
                w.put_u64(*seed);
                w.put_bool(*resumed);
                w.put_bytes(result_json);
            }
            CampaignRecord::Checkpoint(cp) => {
                w.put_u8(TAG_CHECKPOINT);
                w.put_u64(cp.job_index);
                w.put_u64(cp.seed);
                for bits in cp.wire_bits {
                    w.put_u64(bits);
                }
                w.put_u64(cp.horizon_bits);
                w.put_u64(cp.every_bits);
                w.put_u64(cp.next_boundary);
                w.put_bytes(&cp.conn);
                w.put_bytes(&cp.stream);
            }
        }
        w.into_bytes()
    }

    /// Decodes a record payload. Any malformation is an `Err`, never a
    /// panic — replay maps it to a clean truncation.
    pub fn decode(payload: &[u8]) -> SnapResult<CampaignRecord> {
        let mut r = SnapReader::new(payload);
        let rec = match r.get_u8()? {
            TAG_ATTEMPT_DONE => CampaignRecord::AttemptDone {
                job_index: r.get_u64()?,
                label: r.get_str()?,
                seed: r.get_u64()?,
                resumed: r.get_bool()?,
                result_json: r.get_bytes()?.to_vec(),
            },
            TAG_CHECKPOINT => {
                let job_index = r.get_u64()?;
                let seed = r.get_u64()?;
                let wire_bits = [r.get_u64()?, r.get_u64()?, r.get_u64()?];
                CampaignRecord::Checkpoint(Checkpoint {
                    job_index,
                    seed,
                    wire_bits,
                    horizon_bits: r.get_u64()?,
                    every_bits: r.get_u64()?,
                    next_boundary: r.get_u64()?,
                    conn: r.get_bytes()?.to_vec(),
                    stream: r.get_bytes()?.to_vec(),
                })
            }
            _ => return Err(SnapError::Invalid("campaign record tag")),
        };
        r.finish()?;
        Ok(rec)
    }
}

/// What a journal scan recovered.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// The valid record prefix, in append order.
    pub records: Vec<CampaignRecord>,
    /// True when the scan stopped before end-of-file (torn or corrupt
    /// tail — the bytes past `valid_bytes` were ignored).
    pub torn_tail: bool,
    /// Length of the valid prefix in bytes.
    pub valid_bytes: u64,
}

/// The per-job state a replayed journal implies.
#[derive(Debug, Default)]
pub struct CampaignState {
    /// Jobs with a durably recorded completion, by job index (the last
    /// record wins).
    pub done: BTreeMap<u64, DoneAttempt>,
    /// Jobs with an in-flight checkpoint and no completion, by job index
    /// (the last checkpoint wins; an `AttemptDone` clears it).
    pub inflight: BTreeMap<u64, Checkpoint>,
}

/// A replayed completion record.
#[derive(Debug, Clone)]
pub struct DoneAttempt {
    /// The row label.
    pub label: String,
    /// Seed of the completed attempt.
    pub seed: u64,
    /// Whether that attempt had itself resumed from a checkpoint.
    pub resumed: bool,
    /// `serde_json`-serialized `ExperimentResult`.
    pub result_json: Vec<u8>,
}

impl JournalReplay {
    /// Folds the record sequence into per-job state: the last completion
    /// per job wins, and a completion clears any in-flight checkpoint.
    pub fn fold(&self) -> CampaignState {
        let mut state = CampaignState::default();
        for rec in &self.records {
            match rec {
                CampaignRecord::AttemptDone {
                    job_index,
                    label,
                    seed,
                    resumed,
                    result_json,
                } => {
                    state.inflight.remove(job_index);
                    state.done.insert(
                        *job_index,
                        DoneAttempt {
                            label: label.clone(),
                            seed: *seed,
                            resumed: *resumed,
                            result_json: result_json.clone(),
                        },
                    );
                }
                CampaignRecord::Checkpoint(cp) => {
                    if !state.done.contains_key(&cp.job_index) {
                        state.inflight.insert(cp.job_index, cp.clone());
                    }
                }
            }
        }
        state
    }
}

/// Scans a journal file, returning the valid record prefix. A missing file
/// is an empty journal; a torn or corrupt tail is a clean truncation.
/// Only an environmental I/O failure (permissions, disk) is an `Err`.
//= pftk#journal-torn-tail
//= pftk#crash-resume
pub fn replay(path: &Path) -> io::Result<JournalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalReplay::default()),
        Err(e) => return Err(e),
    };
    let mut out = JournalReplay::default();
    let mut rest: &[u8] = &bytes;
    loop {
        if rest.is_empty() {
            break;
        }
        let Some((header, body)) = split_at_checked(rest, 8) else {
            out.torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_RECORD_LEN {
            out.torn_tail = true;
            break;
        }
        let Some((payload, tail)) = split_at_checked(body, len as usize) else {
            out.torn_tail = true;
            break;
        };
        if crc32(payload) != crc {
            out.torn_tail = true;
            break;
        }
        let Ok(rec) = CampaignRecord::decode(payload) else {
            // Framing intact but the payload is not a record we understand:
            // same policy as a torn tail — stop, never abort.
            out.torn_tail = true;
            break;
        };
        out.records.push(rec);
        out.valid_bytes += 8 + u64::from(len);
        rest = tail;
    }
    Ok(out)
}

/// `slice::split_at` without the panic branch.
fn split_at_checked(s: &[u8], mid: usize) -> Option<(&[u8], &[u8])> {
    if mid <= s.len() {
        Some(s.split_at(mid))
    } else {
        None
    }
}

enum Cmd {
    /// Fire-and-forget append (checkpoints). The thunk produces the record
    /// payload *on the writer thread*, so expensive encodes (a streaming
    /// analyzer's sample vectors run to hundreds of kilobytes) cost the
    /// simulation worker only a state clone, not the serialization.
    Append(Box<dyn FnOnce() -> Vec<u8> + Send>),
    /// Append + fsync, acknowledged (attempt boundaries).
    AppendSync(Vec<u8>, mpsc::Sender<io::Result<()>>),
}

/// Handle to the append-only journal writer: a dedicated thread owns the
/// file, so simulation workers hand encoded records over a channel and
/// never block on disk (except when they explicitly ask for durability
/// with [`Journal::append_sync`]).
///
/// The file is opened in append mode and existing bytes are never
/// rewritten — a resumed campaign strictly extends the journal, which the
/// resume-equivalence gate checks byte-for-byte.
#[derive(Debug)]
pub struct Journal {
    tx: Option<mpsc::Sender<Cmd>>,
    worker: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal for appending and starts the
    /// writer thread.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        let file = OpenOptions::new().append(true).create(true).open(&path)?;
        let (tx, rx) = mpsc::channel::<Cmd>();
        let worker = std::thread::Builder::new()
            .name("pftk-journal".into())
            //~ allow(hot_block): the writer thread is the off-hot-path I/O
            // sink; it blocks on the channel and the disk by design, and the
            // hotpath analysis proves no hot root can reach it.
            .spawn(move || writer_loop(file, &rx))?;
        Ok(Journal {
            tx: Some(tx),
            worker: Some(worker),
            path,
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Queues a record for appending and returns immediately. Used for
    /// checkpoints: losing one to a crash only costs re-simulating from
    /// the previous checkpoint.
    pub fn append(&self, payload: Vec<u8>) {
        self.append_with(move || payload);
    }

    /// Like [`Journal::append`], but defers producing the record payload
    /// to the writer thread. The caller captures (cheaply cloned) state in
    /// `encode`; the expensive serialization then runs off the simulation
    /// worker. Used for checkpoints, whose encoded size grows with the
    /// analyzer's retained samples.
    pub fn append_with(&self, encode: impl FnOnce() -> Vec<u8> + Send + 'static) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Cmd::Append(Box::new(encode)));
        }
    }

    /// Appends a record and waits until it (and everything queued before
    /// it) is durable (`fdatasync`). Used at attempt boundaries: once this
    /// returns, a crash cannot lose the completion.
    pub fn append_sync(&self, payload: Vec<u8>) -> io::Result<()> {
        let gone = || io::Error::new(io::ErrorKind::BrokenPipe, "journal writer is gone");
        let tx = self.tx.as_ref().ok_or_else(gone)?;
        let (ack_tx, ack_rx) = mpsc::channel();
        tx.send(Cmd::AppendSync(payload, ack_tx))
            .map_err(|_| gone())?;
        ack_rx.recv().map_err(|_| gone())?
    }

    /// Closes the journal: drains the queue, syncs, joins the writer.
    pub fn close(mut self) -> io::Result<()> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> io::Result<()> {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            worker
                .join()
                .map_err(|_| io::Error::other("journal writer panicked"))?;
        }
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

fn writer_loop(mut file: File, rx: &mpsc::Receiver<Cmd>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Append(encode) => {
                // Best-effort: a failed checkpoint write degrades crash
                // recovery granularity, never the campaign itself.
                let _ = write_record(&mut file, &encode());
            }
            Cmd::AppendSync(payload, ack) => {
                let res = write_record(&mut file, &payload).and_then(|()| file.sync_data());
                let _ = ack.send(res);
            }
        }
    }
    let _ = file.sync_data();
}

/// Writes one framed record with a single `write_all`, so a crash can tear
/// at most the trailing record.
fn write_record(file: &mut File, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_RECORD_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "journal record too large"))?;
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    file.write_all(&buf)
}

/// Test instrumentation for the resume-equivalence gate: a countdown that
/// panics the calling (worker) thread when it expires, simulating a
/// process crash at a checkpoint boundary. The panic unwinds into the
/// supervisor's isolation ([`crate::supervisor::Outcome::Panicked`]); a
/// subsequent journaled run then resumes from the last durable state —
/// exactly the path a real crash exercises, minus the lost process.
#[derive(Debug)]
pub struct CrashPoint {
    remaining: AtomicI64,
}

impl CrashPoint {
    /// Panics the thread that performs the `n`-th tick (1-based).
    pub fn after(n: u64) -> Arc<CrashPoint> {
        let n = i64::try_from(n).unwrap_or(i64::MAX);
        Arc::new(CrashPoint {
            remaining: AtomicI64::new(n),
        })
    }

    /// Counts one checkpoint boundary; panics when the countdown expires.
    ///
    /// # Panics
    /// On the `n`-th call, by construction.
    pub fn tick(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // The panic only fires when a resume gate explicitly arms a
            // CrashPoint, and the supervisor's isolation converts it into
            // a Panicked row (never into an aborted campaign).
            //~ allow(panic): crash injection is this type's entire purpose
            panic!("injected crash: resume-equivalence gate");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pftk-journal-{}-{name}.waj", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn done(i: u64) -> CampaignRecord {
        CampaignRecord::AttemptDone {
            job_index: i,
            label: format!("path-{i}"),
            seed: 40 + i,
            resumed: i % 2 == 1,
            result_json: vec![b'{', b'}'],
        }
    }

    fn ckpt(i: u64, k: u64) -> CampaignRecord {
        CampaignRecord::Checkpoint(Checkpoint {
            job_index: i,
            seed: 40 + i,
            wire_bits: [1, 2, 3],
            horizon_bits: 3600f64.to_bits(),
            every_bits: 300f64.to_bits(),
            next_boundary: k,
            conn: vec![9; 16],
            stream: vec![7; 8],
        })
    }

    #[test]
    fn record_roundtrip() {
        for rec in [done(3), ckpt(5, 11)] {
            let enc = rec.encode();
            assert_eq!(CampaignRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn append_replay_roundtrip_and_fold() {
        let path = tmp("roundtrip");
        let journal = Journal::open(&path).unwrap();
        journal.append(ckpt(0, 1).encode());
        journal.append(ckpt(0, 2).encode());
        journal.append_sync(done(1).encode()).unwrap();
        journal.append(ckpt(1, 9).encode()); // late checkpoint after done: ignored by fold
        journal.close().unwrap();

        let replayed = replay(&path).unwrap();
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.records.len(), 4);
        let state = replayed.fold();
        assert_eq!(state.done.len(), 1);
        assert_eq!(state.done[&1].seed, 41);
        assert!(state.done[&1].resumed);
        // Job 0 is in flight at its *last* checkpoint; job 1's post-completion
        // checkpoint was discarded.
        assert_eq!(state.inflight.len(), 1);
        assert_eq!(state.inflight[&0].next_boundary, 2);
        let _ = std::fs::remove_file(&path);
    }

    //= pftk#journal-torn-tail type=test
    #[test]
    fn torn_tail_is_clean_truncation() {
        let path = tmp("torn");
        let journal = Journal::open(&path).unwrap();
        journal.append_sync(done(0).encode()).unwrap();
        journal.append_sync(done(1).encode()).unwrap();
        journal.close().unwrap();
        let full = std::fs::read(&path).unwrap();

        // Chop the file at every prefix length: the replay must never fail
        // and must recover a prefix of the record sequence.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replayed = replay(&path).unwrap();
            assert!(replayed.records.len() <= 2);
            assert!(u64::try_from(cut).unwrap() >= replayed.valid_bytes);
            if cut < full.len() {
                // Anything short of the full file loses at least the last
                // record or flags the tail.
                assert!(replayed.records.len() < 2 || !replayed.torn_tail);
            }
        }

        // Corrupt one payload byte of the first record: everything from
        // that record on is discarded.
        let mut corrupt = full.clone();
        corrupt[10] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.torn_tail);
        assert!(replayed.records.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_after_valid_records_is_ignored() {
        let path = tmp("garbage");
        let journal = Journal::open(&path).unwrap();
        journal.append_sync(done(0).encode()).unwrap();
        journal.close().unwrap();
        let valid_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xFF; 13]);
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert!(replayed.torn_tail);
        assert_eq!(replayed.valid_bytes, valid_len);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_empty_journal() {
        let replayed = replay(Path::new("/nonexistent/pftk/journal.waj")).unwrap();
        assert!(replayed.records.is_empty());
        assert!(!replayed.torn_tail);
    }

    #[test]
    fn reopen_appends_never_rewrites() {
        let path = tmp("reopen");
        let j1 = Journal::open(&path).unwrap();
        j1.append_sync(done(0).encode()).unwrap();
        j1.close().unwrap();
        let before = std::fs::read(&path).unwrap();

        let j2 = Journal::open(&path).unwrap();
        j2.append_sync(done(1).encode()).unwrap();
        j2.close().unwrap();
        let after = std::fs::read(&path).unwrap();
        assert!(after.len() > before.len());
        assert_eq!(&after[..before.len()], &before[..], "prefix rewritten");
        assert_eq!(replay(&path).unwrap().records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_point_fires_once_at_the_requested_tick() {
        let cp = CrashPoint::after(3);
        cp.tick();
        cp.tick();
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cp.tick()));
        assert!(crashed.is_err());
        // Past the trip point the countdown stays expired without re-firing.
        cp.tick();
    }
}
