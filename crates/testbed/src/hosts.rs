//! The Table I host registry: the 19 machines of the paper's measurement
//! study, with their domains, operating systems, and the per-OS TCP quirks
//! §III/§IV corrects for.

use serde::{Deserialize, Serialize};
use tcp_sim::Quirks;

/// Operating systems appearing in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Os {
    /// SGI Irix 6.2 — §IV observes its exponential backoff caps at `2^5`.
    Irix,
    /// Linux 2.0.x — §III: "TD events occur after getting only two duplicate
    /// ACKs instead of three".
    Linux,
    /// SunOS 4.1.x — §IV notes ref \[15\]'s observation that its TCP derives from
    /// Tahoe, not Reno (we keep Reno, as the paper's model does).
    SunOs4,
    /// SunOS 5.x / Solaris.
    Solaris,
    /// Windows 95.
    Win95,
    /// HP-UX.
    HpUx,
}

impl Os {
    /// The per-OS TCP quirk knobs, packaged for the simulator's quirk
    /// decorator ([`tcp_sim::Quirked`]). This is the single place the
    /// testbed branches on host identity: the per-packet path reads the
    /// knobs from the decorator, never from the OS.
    pub fn quirks(self) -> Quirks {
        Quirks {
            dupthresh: match self {
                // §III: Linux fires fast retransmit after only two dupacks.
                Os::Linux => 2,
                _ => 3,
            },
            backoff_cap_exp: match self {
                // §IV: Irix caps exponential backoff at 2^5.
                Os::Irix => 5,
                _ => 6,
            },
        }
    }

    /// Duplicate-ACK threshold for fast retransmit on this OS.
    pub fn dupack_threshold(self) -> u32 {
        self.quirks().dupthresh
    }

    /// Exponential-backoff cap exponent (RTO multiplier `2^cap`).
    pub fn backoff_cap_exp(self) -> u32 {
        self.quirks().backoff_cap_exp
    }

    /// Display name as Table I prints it.
    pub fn label(self) -> &'static str {
        match self {
            Os::Irix => "Irix 6.2",
            Os::Linux => "Linux",
            Os::SunOs4 => "SunOS 4.1.x",
            Os::Solaris => "SunOS 5.x / Solaris",
            Os::Win95 => "win95",
            Os::HpUx => "HP-UX",
        }
    }
}

/// One Table I host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Host {
    /// Short host name (Table I "Receiver" column).
    pub name: &'static str,
    /// DNS domain.
    pub domain: &'static str,
    /// Operating system.
    pub os: Os,
}

/// The Table I registry, in the paper's row order.
pub const HOSTS: &[Host] = &[
    Host {
        name: "ada",
        domain: "hofstra.edu",
        os: Os::Irix,
    },
    Host {
        name: "afer",
        domain: "cs.umn.edu",
        os: Os::Linux,
    },
    Host {
        name: "al",
        domain: "cs.wm.edu",
        os: Os::Linux,
    },
    Host {
        name: "alps",
        domain: "cc.gatech.edu",
        os: Os::SunOs4,
    },
    Host {
        name: "babel",
        domain: "cs.umass.edu",
        os: Os::Solaris,
    },
    Host {
        name: "baskerville",
        domain: "cs.arizona.edu",
        os: Os::Solaris,
    },
    Host {
        name: "ganef",
        domain: "cs.ucla.edu",
        os: Os::Solaris,
    },
    Host {
        name: "imagine",
        domain: "cs.umass.edu",
        os: Os::Win95,
    },
    Host {
        name: "manic",
        domain: "cs.umass.edu",
        os: Os::Irix,
    },
    Host {
        name: "mafalda",
        domain: "inria.fr",
        os: Os::Solaris,
    },
    Host {
        name: "maria",
        domain: "wustl.edu",
        os: Os::SunOs4,
    },
    Host {
        name: "modi4",
        domain: "ncsa.uiuc.edu",
        os: Os::Irix,
    },
    Host {
        name: "pif",
        domain: "inria.fr",
        os: Os::Solaris,
    },
    Host {
        name: "pong",
        domain: "usc.edu",
        os: Os::HpUx,
    },
    Host {
        name: "spiff",
        domain: "sics.se",
        os: Os::SunOs4,
    },
    Host {
        name: "sutton",
        domain: "cs.columbia.edu",
        os: Os::Solaris,
    },
    Host {
        name: "tove",
        domain: "cs.umd.edu",
        os: Os::SunOs4,
    },
    Host {
        name: "void",
        domain: "cs.umass.edu",
        os: Os::Linux,
    },
    Host {
        name: "att",
        domain: "att.com",
        os: Os::Linux,
    },
];

/// Looks up a host by name.
pub fn host(name: &str) -> Option<&'static Host> {
    HOSTS.iter().find(|h| h.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_nineteen_hosts() {
        assert_eq!(HOSTS.len(), 19);
        let names: std::collections::HashSet<_> = HOSTS.iter().map(|h| h.name).collect();
        assert_eq!(names.len(), 19, "host names must be unique");
    }

    #[test]
    fn lookup_by_name() {
        let manic = host("manic").unwrap();
        assert_eq!(manic.domain, "cs.umass.edu");
        assert_eq!(manic.os, Os::Irix);
        assert!(host("nonexistent").is_none());
    }

    #[test]
    fn linux_quirk_dupthresh_two() {
        assert_eq!(host("void").unwrap().os.dupack_threshold(), 2);
        assert_eq!(host("manic").unwrap().os.dupack_threshold(), 3);
    }

    #[test]
    fn irix_quirk_backoff_cap() {
        assert_eq!(host("manic").unwrap().os.backoff_cap_exp(), 5);
        assert_eq!(host("void").unwrap().os.backoff_cap_exp(), 6);
        assert_eq!(host("babel").unwrap().os.backoff_cap_exp(), 6);
    }

    #[test]
    fn quirks_pin_table_ii_hosts() {
        // Satellite regression: the decorator knobs for the Table II
        // senders are exactly what the legacy accessors reported, so host
        // results computed through `Quirked` cannot drift.
        for h in HOSTS {
            let q = h.os.quirks();
            assert_eq!(q.dupthresh, h.os.dupack_threshold(), "{}", h.name);
            assert_eq!(q.backoff_cap_exp, h.os.backoff_cap_exp(), "{}", h.name);
        }
        assert_eq!(host("void").unwrap().os.quirks().dupthresh, 2);
        assert_eq!(host("att").unwrap().os.quirks().dupthresh, 2);
        assert_eq!(host("manic").unwrap().os.quirks().backoff_cap_exp, 5);
        assert_eq!(host("babel").unwrap().os.quirks(), Quirks::default());
        assert_eq!(host("pif").unwrap().os.quirks(), Quirks::default());
    }

    #[test]
    fn senders_of_table_ii_exist() {
        for s in ["manic", "void", "babel", "pif", "att"] {
            assert!(host(s).is_some(), "Table II sender {s} missing");
        }
    }

    #[test]
    fn labels_are_nonempty() {
        for h in HOSTS {
            assert!(!h.os.label().is_empty());
        }
    }
}
