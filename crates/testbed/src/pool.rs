//! A reusable work-stealing worker pool for campaign execution.
//!
//! The supervisor used to spawn one detached OS thread per *attempt*; a
//! 24-path Table II campaign with retries could burn through dozens of
//! short-lived threads. This pool spawns its workers once and feeds them
//! through per-worker deques with work stealing: submission round-robins
//! across the workers' own queues, an idle worker first drains its own
//! queue front-to-back, then steals from the back of its siblings'.
//!
//! The supervisor's containment semantics are preserved exactly:
//!
//! * **panic isolation** — a worker runs every task under
//!   [`std::panic::catch_unwind`], so a panicking experiment neither kills
//!   the worker nor poisons anything; the worker moves on to the next task
//!   (the task's own channel reports the panic, as before);
//! * **abandonment** — OS threads cannot be killed, so when a wall-clock
//!   deadline expires the monitor calls [`WorkerPool::abandon`]: a task
//!   that has not started yet is discarded unrun, and a task currently
//!   executing gets its worker *replaced* — a fresh worker thread is
//!   spawned immediately so pool capacity never degrades, and the stuck
//!   worker exits (instead of rejoining the pool) if it ever finishes.
//!
//! No condition variables: idle workers park with
//! [`std::thread::park_timeout`] and submissions unpark the pool. An
//! unpark "token" is never lost (unpark-before-park makes the next park
//! return immediately), and the timeout bounds the latency of any race to
//! one short interval.
//!
//! **Schedule chaos** ([`WorkerPool::with_schedule_chaos`]): for the
//! replay-equivalence gate the pool can deliberately perturb its own
//! scheduling — each worker draws from a tiny seeded xorshift stream to
//! insert 0–3 [`std::thread::yield_now`] points before every grab and to
//! rotate its steal order. Campaign output must be bit-identical under
//! any such schedule (and any worker count); the chaos knob makes "the
//! schedule happened to be benign" an untenable explanation for a
//! passing test. Chaos never changes *what* runs, only *when* and *who*.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::Duration;

/// Task lifecycle states (stored in [`TaskHandle::state`]).
const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
/// Abandoned before any worker picked it up: will be discarded unrun.
const ABANDONED_QUEUED: u8 = 2;
/// Abandoned mid-execution: the running worker is written off and exits
/// when (if) the task returns; a replacement has already been spawned.
const ABANDONED_RUNNING: u8 = 3;

/// How long an idle worker sleeps between queue checks. Parking is also
/// interrupted by every submission, so this is only the fallback bound on
/// wakeup latency.
const IDLE_PARK: Duration = Duration::from_millis(50);

/// A unit of work queued on the pool.
struct TaskCell {
    run: Box<dyn FnOnce() + Send + 'static>,
    state: Arc<AtomicU8>,
}

/// A handle to a submitted task, used to abandon it after a deadline.
#[derive(Debug, Clone)]
pub struct TaskHandle {
    state: Arc<AtomicU8>,
}

struct PoolShared {
    /// One deque per home worker slot; stealing crosses slots.
    queues: Vec<Mutex<VecDeque<TaskCell>>>,
    /// Park/unpark registry: every live (and some exited) worker threads.
    /// Unparking an exited thread is a no-op, so stale entries are
    /// harmless; the list only grows when workers are replaced, which is
    /// rare (one entry per abandonment).
    threads: Mutex<Vec<Thread>>,
    shutdown: AtomicBool,
    workers_spawned: AtomicUsize,
    tasks_executed: AtomicUsize,
    /// Schedule-chaos seed; `None` = natural scheduling.
    chaos: Option<u64>,
}

/// One step of a xorshift64 stream: cheap, seedable, and deliberately not
/// `sim::rng` — chaos draws must never share (or perturb) the experiment
/// RNG streams whose determinism they exist to stress.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl PoolShared {
    /// Pops the next task for a worker homed at `home`: own queue from the
    /// front (FIFO), then a steal from the back of sibling queues starting
    /// `steal_start` siblings past its own (0 = natural order; chaos mode
    /// rotates it to exercise different victim orders).
    fn grab(&self, home: usize, steal_start: usize) -> Option<TaskCell> {
        if let Some(cell) = self.queues[home].lock().pop_front() {
            return Some(cell);
        }
        let n = self.queues.len();
        for off in 0..n.saturating_sub(1) {
            let victim = (home + 1 + (steal_start + off) % (n - 1)) % n;
            if let Some(cell) = self.queues[victim].lock().pop_back() {
                return Some(cell);
            }
        }
        None
    }

    fn unpark_all(&self) {
        for t in self.threads.lock().iter() {
            t.unpark();
        }
    }

    fn spawn_worker(self: &Arc<Self>, home: usize) {
        //~ allow(relaxed_atomic): monotonic stat counter read by diagnostics only
        self.workers_spawned.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(self);
        std::thread::spawn(move || {
            shared.threads.lock().push(std::thread::current());
            // Per-worker chaos stream: seed mixed with the home slot so
            // workers perturb independently but reproducibly.
            let mut chaos = shared
                .chaos
                .map(|seed| (seed ^ (home as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let steal_start = match chaos.as_mut() {
                    Some(state) => {
                        let draw = xorshift64(state);
                        for _ in 0..(draw & 3) {
                            std::thread::yield_now();
                        }
                        (draw >> 2) as usize % shared.queues.len()
                    }
                    None => 0,
                };
                let Some(cell) = shared.grab(home, steal_start) else {
                    std::thread::park_timeout(IDLE_PARK);
                    continue;
                };
                if cell
                    .state
                    .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // Abandoned while still queued: discard unrun. Dropping
                    // the closure drops its result channel, which is how
                    // the (long gone) monitor would have learned of it.
                    continue;
                }
                let run = cell.run;
                let _ = catch_unwind(AssertUnwindSafe(run));
                //~ allow(relaxed_atomic): monotonic stat counter; task results travel by channel, not this counter
                shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
                if cell.state.load(Ordering::Acquire) == ABANDONED_RUNNING {
                    // This worker was written off and replaced while stuck
                    // in the task; exiting keeps the pool at capacity.
                    return;
                }
            }
        });
    }
}

/// The pool; see the module docs. Dropping it shuts the workers down
/// (idle workers exit promptly; a worker stuck in an abandoned task leaks,
/// exactly as the old detached-thread design leaked it).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    next: AtomicUsize,
    replacement_home: AtomicUsize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers_spawned", &self.workers_spawned())
            .field("tasks_executed", &self.tasks_executed())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        Self::build(workers, None)
    }

    /// A pool that deliberately perturbs its own scheduling (seeded yield
    /// points and rotated steal order; see the module docs). Campaign
    /// output must be invariant under the perturbation — the
    /// replay-equivalence gate runs the same seeded campaign with and
    /// without chaos and asserts bit-identical reports.
    pub fn with_schedule_chaos(workers: usize, seed: u64) -> Self {
        Self::build(workers, Some(seed))
    }

    fn build(workers: usize, chaos: Option<u64>) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            threads: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            workers_spawned: AtomicUsize::new(0),
            tasks_executed: AtomicUsize::new(0),
            chaos,
        });
        for home in 0..workers {
            shared.spawn_worker(home);
        }
        WorkerPool {
            shared,
            next: AtomicUsize::new(0),
            replacement_home: AtomicUsize::new(0),
        }
    }

    /// Submits a task; it runs on some worker, FIFO per home queue,
    /// stealable by any idle worker. Returns a handle for
    /// [`WorkerPool::abandon`].
    pub fn submit<F: FnOnce() + Send + 'static>(&self, task: F) -> TaskHandle {
        let state = Arc::new(AtomicU8::new(QUEUED));
        let cell = TaskCell {
            run: Box::new(task),
            state: Arc::clone(&state),
        };
        let n = self.shared.queues.len();
        //~ allow(relaxed_atomic): round-robin cursor; only uniqueness matters, the queue Mutex orders the hand-off
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % n;
        self.shared.queues[slot].lock().push_back(cell);
        self.shared.unpark_all();
        TaskHandle { state }
    }

    /// Gives up on a task whose wall-clock deadline expired. A task still
    /// queued is discarded without running; a task currently executing
    /// keeps running on its (unkillable) worker, but that worker is
    /// written off and a replacement is spawned immediately, so the pool's
    /// capacity is unchanged. Idempotent.
    pub fn abandon(&self, handle: &TaskHandle) {
        let result = handle
            .state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |state| match state {
                QUEUED => Some(ABANDONED_QUEUED),
                RUNNING => Some(ABANDONED_RUNNING),
                _ => None,
            });
        if result == Ok(RUNNING) {
            // The runner is stuck inside the task: replace it.
            let n = self.shared.queues.len();
            //~ allow(relaxed_atomic): round-robin cursor choosing a home slot; no payload rides on it
            let home = self.replacement_home.fetch_add(1, Ordering::Relaxed) % n;
            self.shared.spawn_worker(home);
        }
    }

    /// Worker threads spawned over the pool's lifetime (initial workers
    /// plus abandonment replacements).
    pub fn workers_spawned(&self) -> usize {
        //~ allow(relaxed_atomic): diagnostic read of a stat counter
        self.shared.workers_spawned.load(Ordering::Relaxed)
    }

    /// Tasks that ran to completion (including ones that panicked inside
    /// and ones abandoned mid-run that eventually returned).
    pub fn tasks_executed(&self) -> usize {
        //~ allow(relaxed_atomic): diagnostic read of a stat counter
        self.shared.tasks_executed.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.unpark_all();
        // No joins: idle workers exit within one park interval; a worker
        // wedged inside an abandoned task cannot be waited for anyway.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Instant;

    /// The executed-task counter is bumped *after* a task body returns, so
    /// a test that observed a task's side effect may still be ahead of the
    /// counter; wait for it to catch up.
    fn wait_for_executed(pool: &WorkerPool, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.tasks_executed() < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn executes_submitted_tasks() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..32u64 {
            let tx = tx.clone();
            pool.submit(move || {
                let _ = tx.send(i);
            });
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        assert_eq!(pool.workers_spawned(), 4);
        wait_for_executed(&pool, 32);
        assert_eq!(pool.tasks_executed(), 32);
    }

    #[test]
    fn single_worker_pool_is_fifo_for_its_queue() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..10u64 {
            let tx = tx.clone();
            pool.submit(move || {
                let _ = tx.send(i);
            });
        }
        drop(tx);
        let got: Vec<u64> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("injected task panic"));
        let (tx, rx) = mpsc::channel();
        pool.submit(move || {
            let _ = tx.send(7u64);
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        assert_eq!(pool.workers_spawned(), 1, "no replacement for a panic");
        wait_for_executed(&pool, 2);
        assert_eq!(pool.tasks_executed(), 2);
    }

    #[test]
    fn abandoning_a_queued_task_discards_it_unrun() {
        // One worker, blocked on a slow task; the task queued behind it is
        // abandoned before any worker can claim it.
        let pool = WorkerPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            let _ = gate_rx.recv_timeout(Duration::from_secs(10));
        });
        let (tx, rx) = mpsc::channel();
        let handle = pool.submit(move || {
            let _ = tx.send(1u64);
        });
        pool.abandon(&handle);
        let _ = gate_tx.send(()); // release the worker
                                  // The abandoned task's channel reports disconnection, not a value.
        assert!(rx.recv_timeout(Duration::from_secs(5)).is_err());
        assert_eq!(pool.workers_spawned(), 1, "queued abandonment: no spawn");
    }

    #[test]
    fn abandoning_a_running_task_spawns_a_replacement() {
        let pool = WorkerPool::new(1);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let handle = pool.submit(move || {
            let _ = started_tx.send(());
            let _ = gate_rx.recv_timeout(Duration::from_secs(10));
        });
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap_or(());
        pool.abandon(&handle);
        // Capacity is preserved: a fresh worker picks up new work even
        // though the original worker is still wedged.
        let (tx, rx) = mpsc::channel();
        pool.submit(move || {
            let _ = tx.send(42u64);
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        assert_eq!(pool.workers_spawned(), 2, "one replacement spawned");
        let _ = gate_tx.send(());
    }

    #[test]
    fn abandon_is_idempotent() {
        let pool = WorkerPool::new(2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let handle = pool.submit(move || {
            let _ = started_tx.send(());
            let _ = gate_rx.recv_timeout(Duration::from_secs(10));
        });
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap_or(());
        pool.abandon(&handle);
        pool.abandon(&handle);
        pool.abandon(&handle);
        assert_eq!(pool.workers_spawned(), 3, "exactly one replacement");
        let _ = gate_tx.send(());
    }

    #[test]
    fn work_stealing_uses_all_workers() {
        // 4 workers, 4 long-ish tasks submitted round-robin: if stealing
        // (or fair distribution) works, wall time is ~1 task, not 4.
        let pool = WorkerPool::new(4);
        let started = Instant::now();
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let tx = tx.clone();
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(200));
                let _ = tx.send(());
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 4);
        assert!(
            started.elapsed() < Duration::from_millis(700),
            "tasks did not run concurrently: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn chaos_pool_executes_every_task_exactly_once() {
        let pool = WorkerPool::with_schedule_chaos(4, 0xDECAF);
        let (tx, rx) = mpsc::channel();
        for i in 0..64u64 {
            let tx = tx.clone();
            pool.submit(move || {
                let _ = tx.send(i);
            });
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        wait_for_executed(&pool, 64);
        assert_eq!(pool.tasks_executed(), 64, "chaos reorders, never drops");
    }

    #[test]
    fn drop_shuts_down_idle_workers() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || {
            let _ = tx.send(1u64);
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
        drop(pool); // must not hang
    }
}
