//! Fleet-scale sharded campaigns: 10^5–10^6 concurrent §II-model flows,
//! partitioned across [`WorkerPool`] shards, validated distributionally
//! against Eq. (32).
//!
//! The paper's Table II validates the model one connection at a time; a
//! fleet campaign asks the same question at population scale. Each cohort
//! pins one `(p, RTT, T0, W_m)` grid point and runs `flows` independent
//! [`tcp_sim::fleet`] flows to a common horizon; the report compares the
//! empirical per-flow send-rate distribution against the full-model
//! prediction for that grid point (mean, spread, and a log-bucketed
//! ratio histogram).
//!
//! ## Determinism contract
//!
//! A [`FleetReport`] is a pure function of ([`FleetCampaignSpec`], nothing
//! else). The shard count and schedule chaos passed to [`run_fleet_with`]
//! are *execution* details: flows are seeded from `(base_seed, global
//! flow id)` only, shards own contiguous global ranges, and every merge
//! fold walks flows in global order — so reports from 1, 2, and 8 shards
//! (chaotic or not) serialize bit-identically. The report deliberately
//! carries no wall-clock fields; throughput measurement wraps the call
//! (see `crates/bench`).
//!
//! ## Wire audit
//!
//! A fleet flow is the rounds abstraction, not a wire trace. To keep the
//! population result anchored to the packet level, each cohort can run a
//! few *audit flows*: full packet-level [`Connection`]s under Bernoulli
//! loss at the cohort's grid point, reduced on the fly by pooled
//! [`tcp_trace::stream::StreamAnalyzer`]s ([`AnalyzerPool`]) — the same O(window) streaming
//! reduction the hour-long campaigns use, recycled shell-for-shell so an
//! entire audit pass allocates a bounded number of analyzers.

use crate::experiment::TraceRecorder;
use crate::pool::WorkerPool;
use pftk_model::params::ModelParams;
use pftk_model::sendrate::full_model;
use pftk_model::units::LossProb;
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;
use tcp_sim::connection::Connection;
use tcp_sim::fleet::{FleetCohort, FleetShard, FleetSpec, WheelConfig};
use tcp_sim::link::Path;
use tcp_sim::loss::Bernoulli;
use tcp_sim::receiver::ReceiverConfig;
use tcp_sim::reno::rto::RtoConfig;
use tcp_sim::reno::sender::{RenoStyle, SenderConfig};
use tcp_sim::rng::flow_seed;
use tcp_sim::rounds::RoundsConfig;
use tcp_sim::time::{SimDuration, SimTime};
use tcp_trace::analyzer::AnalyzerConfig;
use tcp_trace::stream::{AnalyzerPool, StreamConfig};

/// One cohort: `flows` identical-parameter flows at one `(p, RTT, T0,
/// W_m)` grid point of the validation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCohortSpec {
    /// Human-readable grid-point label, echoed into the report.
    pub label: String,
    /// The §II model parameters for every flow in the cohort.
    pub config: RoundsConfig,
    /// Number of flows at this grid point.
    pub flows: u64,
}

/// A fleet campaign: the full cohort grid plus the execution-independent
/// inputs (seed, horizon, wheel geometry, audit sampling).
#[derive(Debug, Clone)]
pub struct FleetCampaignSpec {
    /// Cohorts in grid order; global flow ids are assigned by
    /// concatenating cohorts in this order.
    pub cohorts: Vec<FleetCohortSpec>,
    /// Campaign seed; flow `g` derives its stream from
    /// `flow_seed(base_seed, g)` and nothing else.
    pub base_seed: u64,
    /// Simulated horizon every flow runs to, seconds.
    pub horizon_secs: f64,
    /// Event-wheel geometry for every shard.
    pub wheel: WheelConfig,
    /// Packet-level audit connections per cohort (0 disables the audit).
    pub audit_flows_per_cohort: u32,
}

impl Default for FleetCampaignSpec {
    fn default() -> Self {
        FleetCampaignSpec {
            cohorts: Vec::new(),
            base_seed: 0,
            horizon_secs: 60.0,
            wheel: WheelConfig::default(),
            audit_flows_per_cohort: 0,
        }
    }
}

impl FleetCampaignSpec {
    /// Total flows across all cohorts.
    pub fn total_flows(&self) -> u64 {
        self.cohorts.iter().map(|c| c.flows).sum()
    }
}

/// Ratio-histogram geometry: 16 buckets of half a doubling each, covering
/// per-flow-rate / model-rate from 2^-4 to 2^4; out-of-range ratios clamp
/// into the end buckets.
pub const RATIO_BUCKETS: usize = 16;

/// Wire-audit summary for one cohort: packet-level ground truth next to
/// the streamed analyzer's wire-visible classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortAudit {
    /// Audit connections run.
    pub flows: u32,
    /// Wire data segments sent, summed over audit flows.
    pub packets_sent: u64,
    /// Packets delivered (acked), summed over audit flows.
    pub packets_delivered: u64,
    /// Mean per-connection wire send rate, packets/sec.
    pub wire_rate_mean_pps: f64,
    /// Triple-duplicate indications per the streamed analyzer.
    pub analyzer_td: u64,
    /// Timeout sequences per the streamed analyzer.
    pub analyzer_to: u64,
    /// Simulator ground-truth TD count.
    pub ground_td: u64,
    /// Simulator ground-truth TO-sequence count.
    pub ground_to: u64,
}

/// Per-cohort fleet results: population counters, the per-flow send-rate
/// distribution, and its position against the Eq. (32) prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortReport {
    /// Grid-point label from the spec.
    pub label: String,
    /// Flows simulated.
    pub flows: u64,
    /// Full-model (Eq. (32)) send-rate prediction at this grid point,
    /// packets/sec.
    pub model_rate_pps: f64,
    /// Packets sent, summed over the cohort.
    pub packets_sent: u64,
    /// Packets delivered, summed over the cohort.
    pub packets_delivered: u64,
    /// Triple-duplicate loss indications, summed.
    pub td_events: u64,
    /// Timeout sequences, summed.
    pub to_events: u64,
    /// Individual RTO firings (a length-`k` sequence fires `k` times).
    pub rto_firings: u64,
    /// Model rounds executed, summed.
    pub rounds: u64,
    /// Timeout-sequence lengths, Table II bucketing (T0..T5+).
    pub to_histogram: [u64; 6],
    /// Minimum per-flow send rate, packets/sec.
    pub rate_min_pps: f64,
    /// Maximum per-flow send rate, packets/sec.
    pub rate_max_pps: f64,
    /// Mean per-flow send rate, packets/sec (folded in global flow order).
    pub rate_mean_pps: f64,
    /// Population standard deviation of per-flow send rates.
    pub rate_stddev_pps: f64,
    /// Histogram of per-flow-rate / model-rate over [`RATIO_BUCKETS`]
    /// half-doubling buckets spanning 2^-4..2^4.
    pub ratio_histogram: [u64; RATIO_BUCKETS],
    /// Wire audit, when `audit_flows_per_cohort > 0`.
    pub audit: Option<CohortAudit>,
}

/// The campaign result. Bit-identical (as serialized JSON) across shard
/// counts and schedule chaos — the fleet half of the `det-replay`
/// contract, pinned by `tests/replay_equivalence.rs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Campaign seed, echoed.
    pub base_seed: u64,
    /// Horizon, seconds, echoed.
    pub horizon_secs: f64,
    /// Total flows simulated.
    pub total_flows: u64,
    /// Total fleet events processed (shard-count-invariant: each flow's
    /// event sequence depends only on its seed and the horizon).
    pub events: u64,
    /// Per-cohort results, in grid order.
    pub cohorts: Vec<CohortReport>,
    /// High-water mark of concurrently leased audit analyzers.
    pub audit_peak_leased: u64,
    /// High-water mark of a single audit analyzer's retained state, bytes.
    pub audit_peak_state_bytes: u64,
}

/// Longest a shard is allowed to run before the collector declares the
/// campaign wedged. Generous: a 10^6-flow, 60 s-horizon shard finishes in
/// seconds in release builds.
const SHARD_WALL_BUDGET: Duration = Duration::from_secs(1800);

/// Runs `spec` on `shards` shards with natural scheduling.
/// See [`run_fleet_with`].
pub fn run_fleet(spec: &FleetCampaignSpec, shards: usize) -> FleetReport {
    run_fleet_with(spec, shards, None)
}

/// Runs the fleet campaign: partitions the global flow space into
/// `shards` contiguous ranges, executes each range as a [`FleetShard`] on
/// a [`WorkerPool`] worker (with seeded schedule chaos when
/// `schedule_chaos` is set), merges per-cohort results in global flow
/// order, and runs the serial wire audit.
///
/// The returned [`FleetReport`] does not depend on `shards` or
/// `schedule_chaos`.
///
/// # Panics
/// If the spec is empty, `shards` is zero, the horizon is not positive,
/// a cohort's parameters are outside the model's domain, or a shard
/// worker dies or exceeds its wall budget.
//= pftk#fleet-shard-equivalence
pub fn run_fleet_with(
    spec: &FleetCampaignSpec,
    shards: usize,
    schedule_chaos: Option<u64>,
) -> FleetReport {
    assert!(shards > 0, "fleet needs at least one shard");
    assert!(
        spec.horizon_secs > 0.0 && spec.horizon_secs.is_finite(),
        "fleet horizon must be positive"
    );
    let total = spec.total_flows();
    assert!(total > 0, "fleet needs at least one flow");

    let fleet_spec = Arc::new(FleetSpec {
        cohorts: spec
            .cohorts
            .iter()
            .map(|c| FleetCohort {
                config: c.config,
                flows: c.flows,
            })
            .collect(),
        base_seed: spec.base_seed,
        wheel: spec.wheel,
    });
    let horizon = SimTime::from_secs_f64(spec.horizon_secs);

    let finished = run_shards(&fleet_spec, total, shards, schedule_chaos, horizon);

    let mut report = merge_shards(spec, &finished);
    run_audit(spec, &mut report);
    report
}

/// Partitions `0..total` into `shards` contiguous ranges and runs each as
/// a [`FleetShard`] on the pool, returning the shards in range order.
fn run_shards(
    fleet_spec: &Arc<FleetSpec>,
    total: u64,
    shards: usize,
    schedule_chaos: Option<u64>,
    horizon: SimTime,
) -> Vec<FleetShard> {
    let n = shards as u64;
    let ranges: Vec<std::ops::Range<u64>> = (0..n)
        .map(|s| (s * total / n)..((s + 1) * total / n))
        .collect();

    if shards == 1 {
        // Single shard: run inline — no pool, no channel, same result.
        let mut shard = FleetShard::new(fleet_spec, ranges[0].clone());
        shard.run_until(horizon);
        return vec![shard];
    }

    let pool = match schedule_chaos {
        Some(seed) => WorkerPool::with_schedule_chaos(shards, seed),
        None => WorkerPool::new(shards),
    };
    let (tx, rx) = mpsc::channel();
    for (idx, range) in ranges.iter().enumerate() {
        let tx = tx.clone();
        let fleet_spec = Arc::clone(fleet_spec);
        let range = range.clone();
        pool.submit(move || {
            let mut shard = FleetShard::new(&fleet_spec, range);
            shard.run_until(horizon);
            // A send can only fail if the collector gave up; the shard's
            // work is then discarded with it.
            let _ = tx.send((idx, shard));
        });
    }
    drop(tx);

    let mut slots: Vec<Option<FleetShard>> = (0..shards).map(|_| None).collect();
    for _ in 0..shards {
        let (idx, shard) = rx
            .recv_timeout(SHARD_WALL_BUDGET)
            .expect("fleet shard died or exceeded its wall budget"); //~ allow(expect): a lost shard means a lost worker; the campaign cannot continue
        slots[idx] = Some(shard);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every shard index reports exactly once")) //~ allow(expect): indices are 0..shards by construction
        .collect()
}

/// Folds finished shards into per-cohort reports. Shards arrive in range
/// order and each walks its flows in local order, so every f64 fold below
/// accumulates in global flow order — the exact same sequence of
/// additions no matter how many shards ran.
fn merge_shards(spec: &FleetCampaignSpec, shards: &[FleetShard]) -> FleetReport {
    let mut cohorts: Vec<CohortReport> = spec
        .cohorts
        .iter()
        .map(|c| CohortReport {
            label: c.label.clone(),
            flows: c.flows,
            model_rate_pps: model_rate(&c.config),
            packets_sent: 0,
            packets_delivered: 0,
            td_events: 0,
            to_events: 0,
            rto_firings: 0,
            rounds: 0,
            to_histogram: [0; 6],
            rate_min_pps: f64::INFINITY,
            rate_max_pps: f64::NEG_INFINITY,
            rate_mean_pps: 0.0,
            rate_stddev_pps: 0.0,
            ratio_histogram: [0; RATIO_BUCKETS],
            audit: None,
        })
        .collect();
    // Mean/stddev accumulators, folded strictly in global flow order.
    let mut sum = vec![0.0f64; cohorts.len()];
    let mut sum_sq = vec![0.0f64; cohorts.len()];

    let mut events = 0u64;
    for shard in shards {
        events += shard.events_processed();
        for local in 0..shard.flow_count() {
            let c = shard.cohort_of(local) as usize;
            let st = shard.flow_stats(local);
            let cr = &mut cohorts[c];
            cr.packets_sent += st.packets_sent;
            cr.packets_delivered += st.packets_delivered;
            cr.td_events += u64::from(st.td_events);
            cr.to_events += u64::from(st.to_events);
            cr.rto_firings += u64::from(st.rto_firings);
            cr.rounds += u64::from(st.rounds);
            let rate = st.packets_sent as f64 / spec.horizon_secs;
            cr.rate_min_pps = cr.rate_min_pps.min(rate);
            cr.rate_max_pps = cr.rate_max_pps.max(rate);
            sum[c] += rate;
            sum_sq[c] += rate * rate;
            cr.ratio_histogram[ratio_bucket(rate / cr.model_rate_pps)] += 1;
        }
        for (c, cr) in cohorts.iter_mut().enumerate() {
            let h = shard.to_histogram(c);
            for (acc, v) in cr.to_histogram.iter_mut().zip(h) {
                *acc += v;
            }
        }
    }
    for (c, cr) in cohorts.iter_mut().enumerate() {
        let n = cr.flows.max(1) as f64;
        cr.rate_mean_pps = sum[c] / n;
        cr.rate_stddev_pps = (sum_sq[c] / n - cr.rate_mean_pps * cr.rate_mean_pps)
            .max(0.0)
            .sqrt();
    }

    FleetReport {
        base_seed: spec.base_seed,
        horizon_secs: spec.horizon_secs,
        total_flows: spec.total_flows(),
        events,
        cohorts,
        audit_peak_leased: 0,
        audit_peak_state_bytes: 0,
    }
}

/// Eq. (32) send-rate prediction for one cohort's grid point.
fn model_rate(config: &RoundsConfig) -> f64 {
    let p =
        LossProb::new(config.p).expect("cohort loss probability validated by arena construction"); //~ allow(expect): FlowArena::new rejects p outside (0,1) before any shard runs
    let params = ModelParams::new(config.rtt, config.t0, config.b, config.wmax)
        .expect("cohort model parameters validated by arena construction"); //~ allow(expect): same validation
    full_model(p, &params)
}

/// Maps a per-flow-rate / model-rate ratio into its half-doubling bucket.
fn ratio_bucket(ratio: f64) -> usize {
    if ratio <= 0.0 || !ratio.is_finite() {
        return 0;
    }
    let b = (ratio.log2() * 2.0).floor() + (RATIO_BUCKETS as f64 / 2.0);
    if b < 0.0 {
        0
    } else if b >= RATIO_BUCKETS as f64 {
        RATIO_BUCKETS - 1
    } else {
        b as usize //~ allow(cast): clamped to 0..RATIO_BUCKETS just above
    }
}

/// Global-flow-id offset of the audit seed space: far above any real
/// fleet (which is capped at `u32::MAX` flows per shard), so audit
/// streams can never collide with fleet streams.
const AUDIT_ID_OFFSET: u64 = 1 << 48;

/// Runs the serial packet-level wire audit: `audit_flows_per_cohort`
/// Bernoulli-loss connections per cohort, each reduced by a pooled
/// streaming analyzer, summarized into each cohort's
/// [`CohortReport::audit`].
fn run_audit(spec: &FleetCampaignSpec, report: &mut FleetReport) {
    if spec.audit_flows_per_cohort == 0 {
        return;
    }
    let mut pool = AnalyzerPool::new(StreamConfig {
        analyzer: AnalyzerConfig {
            dupack_threshold: 3,
        },
        interval_secs: None,
        timing: true,
        correlation: false,
    });
    for (c, cohort) in spec.cohorts.iter().enumerate() {
        let mut audit = CohortAudit {
            flows: spec.audit_flows_per_cohort,
            packets_sent: 0,
            packets_delivered: 0,
            wire_rate_mean_pps: 0.0,
            analyzer_td: 0,
            analyzer_to: 0,
            ground_td: 0,
            ground_to: 0,
        };
        let mut rate_sum = 0.0f64;
        for k in 0..u64::from(spec.audit_flows_per_cohort) {
            let audit_id = AUDIT_ID_OFFSET + (c as u64) * u64::from(u32::MAX) + k;
            let seed = flow_seed(spec.base_seed, audit_id);
            let mut conn = build_audit_connection(&cohort.config, seed, pool.acquire());
            conn.run_until(SimTime::from_secs_f64(spec.horizon_secs));
            conn.finish();
            let stats = conn.stats();
            audit.packets_sent += stats.packets_sent;
            audit.packets_delivered += stats.packets_delivered;
            audit.ground_td += stats.td_events;
            audit.ground_to += stats.to_events();
            rate_sum += stats.packets_sent as f64 / spec.horizon_secs;
            let analyzer = conn
                .into_observer()
                .into_stream()
                .expect("audit recorders are reduce-only"); //~ allow(expect): constructed via streaming_with three lines up
            let analysis = pool.finish(analyzer, Some(spec.horizon_secs));
            audit.analyzer_td += analysis.analysis.td_count();
            audit.analyzer_to += analysis.analysis.to_count();
        }
        audit.wire_rate_mean_pps = rate_sum / f64::from(spec.audit_flows_per_cohort.max(1));
        report.cohorts[c].audit = Some(audit);
    }
    report.audit_peak_leased = pool.peak_leased() as u64;
    report.audit_peak_state_bytes = pool.peak_state_bytes();
}

/// A packet-level referee connection at one cohort's grid point: constant
/// `RTT/2` paths (no jitter — the grid point pins RTT), Bernoulli loss at
/// `p`, RTO pinned to the cohort's `T0`, delayed ACKs per the cohort's
/// `b`.
fn build_audit_connection(
    config: &RoundsConfig,
    seed: u64,
    analyzer: tcp_trace::stream::StreamAnalyzer,
) -> Connection<TraceRecorder> {
    let half = SimDuration::from_secs_f64(config.rtt / 2.0);
    Connection::builder()
        .fwd_path(Path::constant(half))
        .rev_path(Path::constant(half))
        .loss(Bernoulli::new(config.p))
        .sender_config(SenderConfig {
            rwnd: config.wmax,
            dupthresh: 3,
            initial_cwnd: 1.0,
            rto: RtoConfig {
                granularity: SimDuration::from_millis(10),
                min_rto: SimDuration::from_secs_f64(config.t0),
                max_rto: SimDuration::from_secs_f64(
                    config.t0 * f64::powi(2.0, config.backoff_cap_exp as i32),
                ),
                initial_rto: SimDuration::from_secs_f64(config.t0),
                backoff_cap_exp: config.backoff_cap_exp,
            },
            data_limit: None,
            style: RenoStyle::Reno,
            // The audit referee runs the same variant as the cohort's
            // rounds-model flows, so mixed-variant fleets stay anchored to
            // matching packet-level behavior.
            cc: config.cc,
        })
        .receiver_config(ReceiverConfig {
            ack_every: config.b,
            ..ReceiverConfig::default()
        })
        .seed(seed)
        .build_with_observer(TraceRecorder::streaming_with(analyzer))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> FleetCampaignSpec {
        FleetCampaignSpec {
            cohorts: vec![
                FleetCohortSpec {
                    label: "p=0.02 rtt=0.1".into(),
                    config: RoundsConfig {
                        p: 0.02,
                        rtt: 0.1,
                        t0: 1.0,
                        wmax: 64,
                        ..RoundsConfig::default()
                    },
                    flows: 120,
                },
                FleetCohortSpec {
                    label: "p=0.1 rtt=0.3".into(),
                    config: RoundsConfig {
                        p: 0.1,
                        rtt: 0.3,
                        t0: 1.5,
                        wmax: 16,
                        ..RoundsConfig::default()
                    },
                    flows: 80,
                },
            ],
            base_seed: 0x000F_1EE7_CA3D,
            horizon_secs: 30.0,
            wheel: WheelConfig::default(),
            audit_flows_per_cohort: 2,
        }
    }

    #[test]
    fn report_covers_every_cohort() {
        let spec = small_spec();
        let report = run_fleet(&spec, 2);
        assert_eq!(report.total_flows, 200);
        assert_eq!(report.cohorts.len(), 2);
        assert!(report.events > 0);
        for (cr, cs) in report.cohorts.iter().zip(&spec.cohorts) {
            assert_eq!(cr.label, cs.label);
            assert_eq!(cr.flows, cs.flows);
            assert!(cr.packets_sent > 0);
            assert!(cr.model_rate_pps > 0.0);
            assert!(cr.rate_min_pps <= cr.rate_mean_pps);
            assert!(cr.rate_mean_pps <= cr.rate_max_pps);
            let hist_total: u64 = cr.ratio_histogram.iter().sum();
            assert_eq!(hist_total, cr.flows);
            let audit = cr.audit.as_ref().expect("audit enabled");
            assert_eq!(audit.flows, 2);
            assert!(audit.packets_sent > 0);
            assert!(audit.wire_rate_mean_pps > 0.0);
        }
        assert!(report.audit_peak_leased >= 1);
        assert!(report.audit_peak_state_bytes > 0);
    }

    //= pftk#fleet-shard-equivalence type=test
    #[test]
    fn report_is_bit_identical_across_shard_counts() {
        let spec = small_spec();
        let reference = run_fleet(&spec, 1);
        for shards in [2usize, 3, 8] {
            let candidate = run_fleet(&spec, shards);
            assert_eq!(
                serde_json::to_string(&reference).unwrap(),
                serde_json::to_string(&candidate).unwrap(),
                "{shards} shards diverged from 1 shard"
            );
        }
    }

    //= pftk#fleet-shard-equivalence type=test
    #[test]
    fn schedule_chaos_never_reaches_the_report() {
        let spec = small_spec();
        let a = run_fleet_with(&spec, 4, Some(11));
        let b = run_fleet_with(&spec, 4, Some(22));
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
        );
    }

    #[test]
    fn population_mean_tracks_the_model() {
        // Distributional validation in miniature: at a comfortable grid
        // point the population mean send rate lands near Eq. (32).
        let spec = FleetCampaignSpec {
            cohorts: vec![FleetCohortSpec {
                label: "validation".into(),
                config: RoundsConfig {
                    p: 0.02,
                    rtt: 0.1,
                    t0: 1.0,
                    wmax: 64,
                    ..RoundsConfig::default()
                },
                flows: 400,
            }],
            base_seed: 7,
            horizon_secs: 120.0,
            wheel: WheelConfig::default(),
            audit_flows_per_cohort: 0,
        };
        let report = run_fleet(&spec, 4);
        let cr = &report.cohorts[0];
        let ratio = cr.rate_mean_pps / cr.model_rate_pps;
        assert!(
            (0.7..1.4).contains(&ratio),
            "population mean {} vs model {} (ratio {ratio})",
            cr.rate_mean_pps,
            cr.model_rate_pps
        );
    }

    #[test]
    fn ratio_buckets_clamp_and_center() {
        assert_eq!(ratio_bucket(0.0), 0);
        assert_eq!(ratio_bucket(f64::NAN), 0);
        assert_eq!(ratio_bucket(1e-9), 0);
        assert_eq!(ratio_bucket(1e9), RATIO_BUCKETS - 1);
        // ratio 1.0 → log2 = 0 → exact center.
        assert_eq!(ratio_bucket(1.0), RATIO_BUCKETS / 2);
        assert_eq!(ratio_bucket(0.99), RATIO_BUCKETS / 2 - 1);
    }
}
