//! Calibrated synthetic Internet paths — one per Table II row, plus the
//! Fig. 11 modem path.
//!
//! Each [`PathSpec`] carries the paper's measured row (packets, loss
//! indications, TD count, timeout histogram, RTT, T0) *and* the synthetic
//! path configuration calibrated to reproduce its operating point:
//!
//! * propagation delay set from the row's RTT (with mild jitter);
//! * the RTO floor set from the row's T0 (so single timeouts average ≈ T0);
//! * a round-correlated loss process whose first-loss probability is the
//!   row's loss-indication rate `p = loss/packets`;
//! * `W_m` from the Fig. 7 captions where the paper states it, otherwise a
//!   documented assumption.
//!
//! The calibration preserves what the model consumes — `(p, RTT, T0, W_m,
//! b)` — which is all the validation requires; absolute send-rate agreement
//! with 1997 Internet paths is neither expected nor needed (DESIGN.md §1).

use crate::hosts::{host, Os};
use serde::{Deserialize, Serialize};

/// A calibrated sender→receiver path with its Table II reference row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSpec {
    /// Sender host name (must exist in Table I).
    pub sender: &'static str,
    /// Receiver host name.
    pub receiver: &'static str,
    /// Paper: packets sent over the 1-hour trace.
    pub paper_packets: u64,
    /// Paper: total loss indications.
    pub paper_loss: u64,
    /// Paper: TD indications.
    pub paper_td: u64,
    /// Paper: timeout histogram T0..T5+.
    pub paper_timeouts: [u64; 6],
    /// Paper: average RTT, seconds.
    pub rtt: f64,
    /// Paper: average single-timeout duration, seconds.
    pub t0: f64,
    /// Receiver window in packets. `true` in [`PathSpec::wmax_documented`]
    /// when the paper states it (Fig. 7 captions); otherwise an assumption.
    pub wmax: u32,
    /// Whether `wmax` comes from the paper or is our assumption.
    pub wmax_documented: bool,
}

/// Which loss process a path runs, chosen from the Table II row's own
/// signature (the loss process is the one thing the row does not state, so
/// it is inferred from the indication mix it produced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossKind {
    /// Mostly isolated single-packet losses: a substantial TD share means
    /// fast retransmit usually recovered, which needs isolated drops.
    Isolated,
    /// The paper's §II process: losses doom the rest of the round.
    RoundBurst,
    /// Time-extended loss episodes (outages longer than the RTO): the only
    /// process that reproduces a heavy exponential-backoff (T1+) column.
    TimedBurst,
}

impl PathSpec {
    /// The paper's loss-indication rate for this row.
    pub fn paper_loss_rate(&self) -> f64 {
        self.paper_loss as f64 / self.paper_packets as f64
    }

    /// Paper: fraction of loss indications that were timeouts.
    pub fn paper_timeout_fraction(&self) -> f64 {
        1.0 - self.paper_td as f64 / self.paper_loss as f64
    }

    /// Sender OS (drives dupack threshold and backoff cap).
    pub fn sender_os(&self) -> Os {
        host(self.sender)
            //~ allow(expect): static Table I/II data, cross-checked by unit tests
            .expect("Table II sender must be in Table I")
            .os
    }

    /// A stable per-path identifier, e.g. `"manic->alps"`.
    pub fn id(&self) -> String {
        format!("{}->{}", self.sender, self.receiver)
    }

    /// Paper: fraction of loss indications that involved exponential
    /// backoff (T1 or deeper).
    pub fn paper_backoff_fraction(&self) -> f64 {
        if self.paper_loss == 0 {
            return 0.0;
        }
        self.paper_timeouts[1..].iter().sum::<u64>() as f64 / self.paper_loss as f64
    }

    /// Infers the loss process from the row's indication mix: a large TD
    /// share needs isolated losses; a heavy T1+ column needs loss episodes
    /// that outlast the RTO; otherwise the paper's round-correlated process.
    pub fn loss_kind(&self) -> LossKind {
        let td_share = if self.paper_loss == 0 {
            0.3
        } else {
            self.paper_td as f64 / self.paper_loss as f64
        };
        if td_share >= 0.25 {
            LossKind::Isolated
        } else if self.paper_backoff_fraction() >= 0.08 {
            LossKind::TimedBurst
        } else {
            LossKind::RoundBurst
        }
    }
}

/// Table II, transcribed row by row, with calibrated `W_m`.
///
/// `W_m` sources: Fig. 7 captions give manic→baskerville = 6,
/// pif→imagine = 8, pif→manic = 33, void→alps = 48, void→tove = 8,
/// babel→alps = 8 (documented). The remaining rows use 16 — mid-range of
/// the documented values — flagged `wmax_documented: false`, except
/// pif→alps, whose zero TD count across 762 loss indications implies a
/// window too small to ever yield three duplicate ACKs (W_m = 4).
pub const TABLE2_PATHS: &[PathSpec] = &[
    PathSpec {
        sender: "manic",
        receiver: "alps",
        paper_packets: 54402,
        paper_loss: 722,
        paper_td: 19,
        paper_timeouts: [611, 67, 15, 6, 2, 2],
        rtt: 0.207,
        t0: 2.505,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "manic",
        receiver: "baskerville",
        paper_packets: 58120,
        paper_loss: 735,
        paper_td: 306,
        paper_timeouts: [411, 17, 1, 0, 0, 0],
        rtt: 0.243,
        t0: 2.495,
        wmax: 6,
        wmax_documented: true,
    },
    PathSpec {
        sender: "manic",
        receiver: "ganef",
        paper_packets: 58924,
        paper_loss: 743,
        paper_td: 272,
        paper_timeouts: [444, 22, 4, 1, 0, 0],
        rtt: 0.226,
        t0: 2.405,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "manic",
        receiver: "mafalda",
        paper_packets: 56283,
        paper_loss: 494,
        paper_td: 2,
        paper_timeouts: [474, 17, 1, 0, 0, 0],
        rtt: 0.233,
        t0: 2.146,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "manic",
        receiver: "maria",
        paper_packets: 68752,
        paper_loss: 649,
        paper_td: 1,
        paper_timeouts: [604, 35, 8, 1, 0, 0],
        rtt: 0.180,
        t0: 2.416,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "manic",
        receiver: "spiff",
        paper_packets: 117992,
        paper_loss: 784,
        paper_td: 47,
        paper_timeouts: [702, 34, 1, 0, 0, 0],
        rtt: 0.211,
        t0: 2.274,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "manic",
        receiver: "sutton",
        paper_packets: 81123,
        paper_loss: 1638,
        paper_td: 988,
        paper_timeouts: [597, 41, 7, 3, 1, 1],
        rtt: 0.204,
        t0: 2.459,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "manic",
        receiver: "tove",
        paper_packets: 7938,
        paper_loss: 264,
        paper_td: 1,
        paper_timeouts: [190, 37, 18, 8, 3, 7],
        rtt: 0.275,
        t0: 3.597,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "void",
        receiver: "alps",
        paper_packets: 37137,
        paper_loss: 838,
        paper_td: 7,
        paper_timeouts: [588, 164, 56, 17, 4, 2],
        rtt: 0.162,
        t0: 0.489,
        wmax: 48,
        wmax_documented: true,
    },
    PathSpec {
        sender: "void",
        receiver: "baskerville",
        paper_packets: 32042,
        paper_loss: 853,
        paper_td: 339,
        paper_timeouts: [430, 67, 12, 5, 0, 0],
        rtt: 0.482,
        t0: 1.094,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "void",
        receiver: "ganef",
        paper_packets: 60770,
        paper_loss: 1112,
        paper_td: 414,
        paper_timeouts: [582, 79, 20, 9, 4, 2],
        rtt: 0.254,
        t0: 0.637,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "void",
        receiver: "maria",
        paper_packets: 93005,
        paper_loss: 1651,
        paper_td: 33,
        paper_timeouts: [1344, 197, 54, 15, 5, 3],
        rtt: 0.152,
        t0: 0.417,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "void",
        receiver: "spiff",
        paper_packets: 65536,
        paper_loss: 671,
        paper_td: 72,
        paper_timeouts: [539, 56, 4, 0, 0, 0],
        rtt: 0.415,
        t0: 0.749,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "void",
        receiver: "sutton",
        paper_packets: 78246,
        paper_loss: 1928,
        paper_td: 840,
        paper_timeouts: [863, 152, 45, 18, 9, 1],
        rtt: 0.211,
        t0: 0.601,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "void",
        receiver: "tove",
        paper_packets: 8265,
        paper_loss: 856,
        paper_td: 5,
        paper_timeouts: [444, 209, 100, 51, 27, 12],
        rtt: 0.272,
        t0: 1.356,
        wmax: 8,
        wmax_documented: true,
    },
    PathSpec {
        sender: "babel",
        receiver: "alps",
        paper_packets: 13460,
        paper_loss: 1466,
        paper_td: 0,
        paper_timeouts: [1068, 247, 87, 33, 18, 8],
        rtt: 0.194,
        t0: 1.359,
        wmax: 8,
        wmax_documented: true,
    },
    PathSpec {
        sender: "babel",
        receiver: "baskerville",
        paper_packets: 62237,
        paper_loss: 1753,
        paper_td: 197,
        paper_timeouts: [1467, 76, 10, 3, 0, 0],
        rtt: 0.253,
        t0: 0.429,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "babel",
        receiver: "ganef",
        paper_packets: 86675,
        paper_loss: 2125,
        paper_td: 398,
        paper_timeouts: [1686, 38, 2, 1, 0, 0],
        rtt: 0.201,
        t0: 0.306,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "babel",
        receiver: "spiff",
        paper_packets: 57687,
        paper_loss: 1120,
        paper_td: 0,
        paper_timeouts: [939, 137, 36, 7, 1, 0],
        rtt: 0.331,
        t0: 0.953,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "babel",
        receiver: "sutton",
        paper_packets: 83486,
        paper_loss: 2320,
        paper_td: 685,
        paper_timeouts: [1448, 142, 31, 9, 4, 1],
        rtt: 0.210,
        t0: 0.705,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "babel",
        receiver: "tove",
        paper_packets: 83944,
        paper_loss: 1516,
        paper_td: 1,
        paper_timeouts: [1364, 118, 17, 7, 5, 3],
        rtt: 0.194,
        t0: 0.520,
        wmax: 16,
        wmax_documented: false,
    },
    PathSpec {
        sender: "pif",
        receiver: "alps",
        paper_packets: 83971,
        paper_loss: 762,
        paper_td: 0,
        paper_timeouts: [577, 111, 46, 16, 8, 2],
        rtt: 0.168,
        t0: 7.278,
        wmax: 4,
        wmax_documented: false,
    },
    PathSpec {
        sender: "pif",
        receiver: "imagine",
        paper_packets: 44891,
        paper_loss: 1346,
        paper_td: 15,
        paper_timeouts: [1044, 186, 63, 21, 10, 5],
        rtt: 0.229,
        t0: 0.700,
        wmax: 8,
        wmax_documented: true,
    },
    PathSpec {
        sender: "pif",
        receiver: "manic",
        paper_packets: 34251,
        paper_loss: 1422,
        paper_td: 43,
        paper_timeouts: [944, 272, 105, 36, 14, 6],
        rtt: 0.257,
        t0: 1.454,
        wmax: 33,
        wmax_documented: true,
    },
];

/// Looks up a Table II path by sender/receiver names.
pub fn table2_path(sender: &str, receiver: &str) -> Option<&'static PathSpec> {
    TABLE2_PATHS
        .iter()
        .find(|p| p.sender == sender && p.receiver == receiver)
}

/// The six traces the paper plots in Fig. 7 (in caption order a–f).
pub fn fig7_paths() -> Vec<&'static PathSpec> {
    [
        ("manic", "baskerville"),
        ("pif", "imagine"),
        ("pif", "manic"),
        ("void", "alps"),
        ("void", "tove"),
        ("babel", "alps"),
    ]
    .iter()
    .map(|(s, r)| table2_path(s, r).expect("Fig. 7 path missing")) //~ allow(expect): static Table I/II data, cross-checked by unit tests
    .collect()
}

/// The six sender→receiver pairs of Fig. 8 (in caption order a–f). The
/// `att→sutton` pair has no Table II row (it only appears in the 100-s
/// experiments), so it gets a synthesized spec.
pub fn fig8_paths() -> Vec<PathSpec> {
    let named = [
        ("manic", "ganef"),
        ("manic", "mafalda"),
        ("manic", "tove"),
        ("manic", "maria"),
    ];
    let mut out: Vec<PathSpec> = named
        .iter()
        //~ allow(expect): static Table I/II data, cross-checked by unit tests
        .map(|(s, r)| *table2_path(s, r).expect("Fig. 8 path missing"))
        .collect();
    // att→sutton: a Linux sender on a moderately lossy path; this pair has
    // no Table II row (it only appears in Fig. 8), so the operating point —
    // 2.5% loss at the void→sutton-like RTT — is our assumption.
    out.push(PathSpec {
        sender: "att",
        receiver: "sutton",
        paper_packets: 40_000,
        paper_loss: 1_000,
        paper_td: 400,
        paper_timeouts: [500, 80, 15, 4, 1, 0],
        rtt: 0.220,
        t0: 1.0,
        wmax: 16,
        wmax_documented: false,
    });
    // manic→afer likewise appears only in Fig. 8; a ~1.2%-loss Irix-sender
    // path in the style of the other manic rows.
    out.push(PathSpec {
        sender: "manic",
        receiver: "afer",
        paper_packets: 50_000,
        paper_loss: 600,
        paper_td: 100,
        paper_timeouts: [450, 40, 8, 2, 0, 0],
        rtt: 0.190,
        t0: 2.2,
        wmax: 16,
        wmax_documented: false,
    });
    out
}

/// The Fig. 11 modem scenario: "manic to p5", a receiver behind a
/// 28.8 kbit/s modem with a buffer devoted exclusively to the connection.
/// The caption reports RTT = 4.726 s (queueing-dominated!), T0 = 18.407 s,
/// W_m = 22.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModemSpec {
    /// Base (unloaded) round-trip propagation, seconds.
    pub base_rtt: f64,
    /// Bottleneck service rate, packets per second. 28.8 kbit/s at 1500-byte
    /// packets is ≈ 2.4 pkt/s; the paper's trace averaged ~10 pkt sent per
    /// second of connection lifetime only because of the deep buffer.
    pub bottleneck_pps: f64,
    /// Dedicated buffer depth, packets.
    pub buffer_packets: u32,
    /// Receiver window, packets (paper: 22).
    pub wmax: u32,
    /// Random wire loss on the modem line itself (phone lines of the era
    /// were noisy; the paper's enormous measured T0 of 18.4 s points at
    /// real loss on top of queue overflows).
    pub wire_loss: f64,
}

impl Default for ModemSpec {
    fn default() -> Self {
        ModemSpec {
            base_rtt: 0.3,
            bottleneck_pps: 2.4,
            buffer_packets: 17,
            wmax: 22,
            wire_loss: 0.02,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_24_rows() {
        assert_eq!(TABLE2_PATHS.len(), 24);
    }

    #[test]
    fn all_senders_and_receivers_in_table1() {
        for p in TABLE2_PATHS {
            assert!(host(p.sender).is_some(), "{} not in Table I", p.sender);
            assert!(host(p.receiver).is_some(), "{} not in Table I", p.receiver);
        }
    }

    #[test]
    fn loss_rates_span_paper_range() {
        // §III: the traces cover roughly 0.4%–20% loss-indication rates.
        let rates: Vec<f64> = TABLE2_PATHS.iter().map(|p| p.paper_loss_rate()).collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.01, "min loss rate {min}");
        assert!(max > 0.08, "max loss rate {max}");
    }

    #[test]
    fn timeouts_dominate_in_most_rows() {
        // The paper's headline observation from Table II.
        let majority = TABLE2_PATHS
            .iter()
            .filter(|p| p.paper_timeout_fraction() > 0.5)
            .count();
        assert!(majority >= 20, "only {majority}/24 rows timeout-dominated");
    }

    #[test]
    fn histogram_and_td_approximately_sum_to_loss_total() {
        // The paper's own rows do not all sum exactly (off by 1–8 on a few
        // rows — presumably indications that fit no bucket); transcription
        // is verified to within that slack.
        for p in TABLE2_PATHS {
            let total = p.paper_td + p.paper_timeouts.iter().sum::<u64>();
            let diff = p.paper_loss.abs_diff(total);
            assert!(
                diff <= 10,
                "{}: TD {} + timeouts {:?} = {} vs loss {}",
                p.id(),
                p.paper_td,
                p.paper_timeouts,
                total,
                p.paper_loss
            );
        }
    }

    #[test]
    fn fig7_paths_resolve_with_documented_windows() {
        let f = fig7_paths();
        assert_eq!(f.len(), 6);
        assert!(f.iter().all(|p| p.wmax_documented));
        assert_eq!(f[0].wmax, 6);
        assert_eq!(f[2].wmax, 33);
        assert_eq!(f[3].wmax, 48);
    }

    #[test]
    fn fig8_paths_resolve() {
        let f = fig8_paths();
        assert_eq!(f.len(), 6);
        assert_eq!(f[4].sender, "att");
    }

    #[test]
    fn lookup_by_pair() {
        assert!(table2_path("manic", "alps").is_some());
        assert!(table2_path("alps", "manic").is_none());
    }

    #[test]
    fn sender_os_quirks_accessible() {
        assert_eq!(
            table2_path("void", "alps")
                .unwrap()
                .sender_os()
                .dupack_threshold(),
            2
        );
        assert_eq!(
            table2_path("manic", "alps")
                .unwrap()
                .sender_os()
                .backoff_cap_exp(),
            5
        );
    }

    #[test]
    fn loss_kinds_follow_row_signatures() {
        use LossKind::*;
        // 60% TD → isolated losses.
        assert_eq!(
            table2_path("manic", "sutton").unwrap().loss_kind(),
            Isolated
        );
        assert_eq!(
            table2_path("manic", "baskerville").unwrap().loss_kind(),
            Isolated
        );
        // Tiny TD share, heavy T1+ column → timed bursts.
        assert_eq!(table2_path("void", "tove").unwrap().loss_kind(), TimedBurst);
        assert_eq!(
            table2_path("babel", "alps").unwrap().loss_kind(),
            TimedBurst
        );
        assert_eq!(table2_path("pif", "alps").unwrap().loss_kind(), TimedBurst);
        // Tiny TD share, thin backoff column → the paper's round bursts.
        assert_eq!(
            table2_path("manic", "mafalda").unwrap().loss_kind(),
            RoundBurst
        );
        // Every kind is represented across the testbed.
        let kinds: std::collections::HashSet<_> =
            TABLE2_PATHS.iter().map(|p| p.loss_kind()).collect();
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn modem_defaults_sane() {
        let m = ModemSpec::default();
        // Max queueing delay must dwarf the base RTT (the Fig. 11 regime).
        let max_queue_delay = m.buffer_packets as f64 / m.bottleneck_pps;
        assert!(max_queue_delay > 5.0 * m.base_rtt);
    }
}
