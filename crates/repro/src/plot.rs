//! A small SVG chart renderer (no dependencies) so the regenerated figures
//! are viewable, not just tabulated. Supports scatter and line series,
//! linear and logarithmic axes — enough for every figure in the paper.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Plot area geometry.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// Fixed series palette (color-blind friendly).
const PALETTE: [&str; 6] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9",
];

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Connected polyline.
    Line,
    /// Unconnected circular markers.
    Scatter,
}

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` data.
    pub points: Vec<(f64, f64)>,
    /// Line or scatter.
    pub style: Style,
}

impl Series {
    /// A line series.
    pub fn line(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
            style: Style::Line,
        }
    }

    /// A scatter series.
    pub fn scatter(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
            style: Style::Scatter,
        }
    }
}

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (requires strictly positive data).
    Log,
}

/// A chart: title, axes, series.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Title above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The data.
    pub series: Vec<Series>,
}

impl Chart {
    /// A linear-linear chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Chart {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Switches the x axis to log scale.
    pub fn log_x(mut self) -> Chart {
        self.x_scale = Scale::Log;
        self
    }

    /// Switches the y axis to log scale.
    pub fn log_y(mut self) -> Chart {
        self.y_scale = Scale::Log;
        self
    }

    /// Adds a series.
    pub fn with(mut self, series: Series) -> Chart {
        self.series.push(series);
        self
    }

    fn transform(v: f64, scale: Scale) -> Option<f64> {
        match scale {
            Scale::Linear => Some(v),
            Scale::Log => (v > 0.0).then(|| v.log10()),
        }
    }

    fn data_bounds(&self) -> Option<((f64, f64), (f64, f64))> {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                if let (Some(tx), Some(ty)) = (
                    Self::transform(x, self.x_scale),
                    Self::transform(y, self.y_scale),
                ) {
                    if tx.is_finite() && ty.is_finite() {
                        xs.push(tx);
                        ys.push(ty);
                    }
                }
            }
        }
        if xs.is_empty() {
            return None;
        }
        let pad = |lo: f64, hi: f64| {
            let span = (hi - lo).max(1e-9);
            (lo - 0.05 * span, hi + 0.05 * span)
        };
        let (xlo, xhi) = pad(
            xs.iter().cloned().fold(f64::INFINITY, f64::min),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        let (ylo, yhi) = pad(
            ys.iter().cloned().fold(f64::INFINITY, f64::min),
            ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        Some(((xlo, xhi), (ylo, yhi)))
    }

    /// Linear-space "nice" ticks.
    fn linear_ticks(lo: f64, hi: f64) -> Vec<f64> {
        let span = (hi - lo).max(1e-12);
        let raw_step = span / 5.0;
        let mag = 10f64.powf(raw_step.log10().floor());
        let norm = raw_step / mag;
        let step = mag
            * if norm < 1.5 {
                1.0
            } else if norm < 3.5 {
                2.0
            } else if norm < 7.5 {
                5.0
            } else {
                10.0
            };
        let mut ticks = Vec::new();
        let mut t = (lo / step).ceil() * step;
        while t <= hi + 1e-12 {
            ticks.push(t);
            t += step;
        }
        ticks
    }

    /// Log-space ticks: the decades in range (transformed values).
    fn log_ticks(lo: f64, hi: f64) -> Vec<f64> {
        let mut ticks = Vec::new();
        let mut d = lo.ceil();
        while d <= hi + 1e-12 {
            ticks.push(d);
            d += 1.0;
        }
        if ticks.len() < 2 {
            // Narrow range: fall back to linear ticks in log space.
            return Self::linear_ticks(lo, hi);
        }
        ticks
    }

    fn format_tick(t: f64, scale: Scale) -> String {
        let v = match scale {
            Scale::Linear => t,
            Scale::Log => 10f64.powf(t),
        };
        if v != 0.0 && (v.abs() < 0.0101 || v.abs() >= 100_000.0) {
            format!("{v:.0e}")
        } else if v.fract().abs() < 1e-9 {
            format!("{v:.0}")
        } else {
            format!("{v:.3}")
        }
    }

    /// Renders the chart as an SVG document.
    pub fn render_svg(&self) -> String {
        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" text-anchor="middle" font-size="15">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;

        let Some(((xlo, xhi), (ylo, yhi))) = self.data_bounds() else {
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="middle" font-size="13">(no data)</text></svg>"#,
                WIDTH / 2.0,
                HEIGHT / 2.0
            );
            return svg;
        };
        let sx = move |tx: f64| MARGIN_L + (tx - xlo) / (xhi - xlo) * plot_w;
        let sy = move |ty: f64| MARGIN_T + plot_h - (ty - ylo) / (yhi - ylo) * plot_h;

        // Frame.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>"##
        );

        // Ticks + gridlines.
        let xticks = match self.x_scale {
            Scale::Linear => Self::linear_ticks(xlo, xhi),
            Scale::Log => Self::log_ticks(xlo, xhi),
        };
        for &t in &xticks {
            let x = sx(t);
            let _ = write!(
                svg,
                r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                MARGIN_T + plot_h
            );
            let _ = write!(
                svg,
                r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"#,
                MARGIN_T + plot_h + 16.0,
                Self::format_tick(t, self.x_scale)
            );
        }
        let yticks = match self.y_scale {
            Scale::Linear => Self::linear_ticks(ylo, yhi),
            Scale::Log => Self::log_ticks(ylo, yhi),
        };
        for &t in &yticks {
            let y = sy(t);
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="11">{}</text>"#,
                MARGIN_L - 6.0,
                y + 4.0,
                Self::format_tick(t, self.y_scale)
            );
        }

        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .filter_map(|&(x, y)| {
                    let tx = Self::transform(x, self.x_scale)?;
                    let ty = Self::transform(y, self.y_scale)?;
                    (tx.is_finite() && ty.is_finite()).then(|| (sx(tx), sy(ty)))
                })
                .collect();
            match s.style {
                Style::Line => {
                    let path: String = pts
                        .iter()
                        .enumerate()
                        .map(|(k, (x, y))| {
                            format!("{}{x:.1},{y:.1}", if k == 0 { "M" } else { " L" })
                        })
                        .collect();
                    let _ = write!(
                        svg,
                        r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.8"/>"#
                    );
                }
                Style::Scatter => {
                    for (x, y) in &pts {
                        let _ = write!(
                            svg,
                            r#"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="{color}" fill-opacity="0.75"/>"#
                        );
                    }
                }
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 + 16.0 * i as f64;
            let lx = MARGIN_L + plot_w - 150.0;
            let _ = write!(
                svg,
                r#"<rect x="{lx}" y="{:.1}" width="10" height="10" fill="{color}"/>"#,
                ly - 9.0
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{ly}" font-size="11">{}</text>"#,
                lx + 14.0,
                escape(&s.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Renders and writes `name.svg` into `dir`.
    pub fn save(&self, dir: &Path, name: &str) {
        let path = dir.join(format!("{name}.svg"));
        fs::write(&path, self.render_svg()).expect("write svg"); //~ allow(expect): results-writer CLI: fail fast on I/O errors
        eprintln!("  wrote {}", path.display());
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_chart() -> Chart {
        Chart::new("Demo", "x", "y")
            .with(Series::line(
                "model",
                vec![(1.0, 10.0), (2.0, 5.0), (3.0, 2.0)],
            ))
            .with(Series::scatter("measured", vec![(1.5, 8.0), (2.5, 3.0)]))
    }

    #[test]
    fn svg_contains_structure() {
        let svg = demo_chart().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<path"), "line series missing");
        assert_eq!(svg.matches("<circle").count(), 2, "scatter markers");
        assert!(svg.contains("Demo"));
        assert!(svg.contains("model"));
        assert!(svg.contains("measured"));
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let chart = Chart::new("log", "p", "rate").log_x().with(Series::scatter(
            "pts",
            vec![(0.0, 1.0), (0.01, 2.0), (0.1, 3.0)],
        ));
        let svg = chart.render_svg();
        assert_eq!(
            svg.matches("<circle").count(),
            2,
            "p = 0 must be dropped on log-x"
        );
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let svg = Chart::new("empty", "x", "y").render_svg();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn linear_ticks_are_nice() {
        let ticks = Chart::linear_ticks(0.0, 10.0);
        assert!(ticks.len() >= 4 && ticks.len() <= 8, "{ticks:?}");
        assert!(ticks.windows(2).all(|w| w[1] > w[0]));
        let ticks = Chart::linear_ticks(0.0, 0.037);
        assert!(ticks.iter().all(|t| (0.0..=0.037).contains(t)), "{ticks:?}");
    }

    #[test]
    fn log_ticks_are_decades() {
        // 1e-3 .. 1e0 in log space is -3..0.
        let ticks = Chart::log_ticks(-3.05, 0.05);
        assert_eq!(ticks, vec![-3.0, -2.0, -1.0, 0.0]);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(Chart::format_tick(-2.0, Scale::Log), "1e-2");
        assert_eq!(Chart::format_tick(2.0, Scale::Log), "100");
        assert_eq!(Chart::format_tick(5.0, Scale::Linear), "5");
        assert_eq!(Chart::format_tick(0.25, Scale::Linear), "0.250");
    }

    #[test]
    fn escapes_markup() {
        let chart =
            Chart::new("a<b & c>d", "x", "y").with(Series::line("s", vec![(0.0, 0.0), (1.0, 1.0)]));
        let svg = chart.render_svg();
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join(format!("plot-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        demo_chart().save(&dir, "demo");
        let text = std::fs::read_to_string(dir.join("demo.svg")).unwrap();
        assert!(text.contains("</svg>"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
