//! Regeneration of the paper's figures, one function per figure. Each
//! prints the series to stdout and writes CSV into the results directory.

use crate::output::{out_dir, section, write_csv};
use crate::plot::{Chart, Series};
use crate::RunScale;
use pftk_model::markov::MarkovModel;
use pftk_model::params::ModelParams;
use pftk_model::sendrate::{full_model, td_only, ModelKind};
use pftk_model::throughput::throughput;
use pftk_model::timeout::{q_hat_approx, q_hat_exact};
use pftk_model::units::LossProb;
use tcp_sim::rng::SimRng;
use tcp_sim::rounds::{Indication, RoundsConfig, RoundsSim};
use tcp_testbed::experiment::{run_hour, run_modem, run_serial_100s, run_table2};
use tcp_testbed::paths::{fig7_paths, fig8_paths, ModemSpec, TABLE2_PATHS};
use tcp_testbed::report::{error_triple_hourly, error_triple_serial, fig7_panel, fig8_series};

fn window_path_csv(name: &str, sim: &RoundsSim) {
    let rows: Vec<String> = sim
        .samples()
        .iter()
        .map(|s| format!("{:.3},{}", s.time, s.window))
        .collect();
    write_csv(&out_dir(), name, "time_secs,window", &rows);
    // SVG rendition: the window sawtooth (timeout gaps drawn at 0).
    let pts: Vec<(f64, f64)> = sim
        .samples()
        .iter()
        .map(|s| (s.time, f64::from(s.window)))
        .collect();
    Chart::new(
        name.replace('_', " "),
        "time (s)",
        "congestion window (packets)",
    )
    .with(Series::line("window", pts))
    .save(&out_dir(), name);
}

fn print_sample_path(sim: &RoundsSim, limit: usize) {
    println!("{:>10}  {:>6}", "time (s)", "window");
    for s in sim.samples().iter().take(limit) {
        let bar = if s.window == 0 {
            "· timeout".to_string()
        } else {
            "#".repeat(s.window as usize)
        };
        println!("{:>10.2}  {:>6}  {}", s.time, s.window, bar);
    }
}

/// Fig. 1 — evolution of window size when loss indications are exclusively
/// triple-duplicate ACKs: moderate loss, large windows (so `Q̂(W)` is tiny).
pub fn fig1(scale: &RunScale) {
    section("Fig. 1 — Window evolution, TD-dominated regime");
    let mut sim = RoundsSim::new(
        RoundsConfig {
            p: 0.005,
            rtt: 0.1,
            t0: 1.0,
            b: 2,
            wmax: 10_000,
            ..RoundsConfig::default()
        },
        scale.seed,
    )
    .record_samples(4_000);
    sim.run_for(60.0);
    print_sample_path(&sim, 60);
    let td = sim.stats().td_events;
    let to = sim.stats().to_events();
    println!(
        "... loss indications: {td} TD, {to} TO (TD share {:.0}%)",
        100.0 * td as f64 / (td + to).max(1) as f64
    );
    window_path_csv("fig1_window_path", &sim);
}

/// Fig. 2 — packets sent during a TD period: per-TDP anatomy, verifying the
/// identities `Y = α + W − 1` and `E[α] = 1/p` the derivation rests on.
pub fn fig2(scale: &RunScale) {
    section("Fig. 2 — TD-period anatomy (α, X, W, Y per period)");
    let p = 0.01;
    let mut sim = RoundsSim::new(
        RoundsConfig {
            p,
            rtt: 0.1,
            t0: 1.0,
            b: 2,
            wmax: 10_000,
            ..RoundsConfig::default()
        },
        scale.seed,
    )
    .record_tdps();
    sim.run_tdps(scale.tdps);
    println!(
        "{:>5} {:>7} {:>7} {:>7} {:>9} {:>12}",
        "tdp", "alpha", "X", "W", "Y", "indication"
    );
    for (i, t) in sim.tdps().iter().take(15).enumerate() {
        println!(
            "{:>5} {:>7} {:>7} {:>7} {:>9} {:>12}",
            i,
            t.alpha,
            t.loss_round,
            t.peak_window,
            t.packets_sent,
            match t.indication {
                Indication::TripleDuplicate => "TD".to_string(),
                Indication::Timeout { sequence_len } => format!("TO x{sequence_len}"),
            }
        );
    }
    let n = sim.tdps().len() as f64;
    let mean_alpha: f64 = sim.tdps().iter().map(|t| t.alpha as f64).sum::<f64>() / n;
    let mean_w: f64 = sim.tdps().iter().map(|t| t.peak_window as f64).sum::<f64>() / n;
    let mean_x: f64 = sim.tdps().iter().map(|t| t.loss_round as f64).sum::<f64>() / n;
    let lp = LossProb::new(p).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
    println!("\nmeans over {} TDPs:", sim.tdps().len());
    println!(
        "  E[alpha] = {:.1}   (model 1/p = {:.1})",
        mean_alpha,
        1.0 / p
    );
    println!(
        "  E[W]     = {:.2}   (model Eq.(13) = {:.2})",
        mean_w,
        pftk_model::window::expected_window(lp, 2)
    );
    println!(
        "  E[X]     = {:.2}   (model Eq.(15) = {:.2})",
        mean_x,
        pftk_model::window::expected_rounds(lp, 2)
    );
    let rows: Vec<String> = sim
        .tdps()
        .iter()
        .map(|t| {
            format!(
                "{},{},{},{},{}",
                t.alpha,
                t.loss_round,
                t.peak_window,
                t.packets_sent,
                matches!(t.indication, Indication::TripleDuplicate) as u8
            )
        })
        .collect();
    write_csv(
        &out_dir(),
        "fig2_tdp_anatomy",
        "alpha,rounds,peak_window,packets,is_td",
        &rows,
    );
}

/// Fig. 3 — window evolution with both TD and TO indications (timeout gaps
/// shown as window 0).
pub fn fig3(scale: &RunScale) {
    section("Fig. 3 — Window evolution with triple-duplicates AND timeouts");
    let mut sim = RoundsSim::new(
        RoundsConfig {
            p: 0.06,
            rtt: 0.1,
            t0: 1.5,
            b: 2,
            wmax: 10_000,
            ..RoundsConfig::default()
        },
        scale.seed,
    )
    .record_samples(4_000);
    sim.run_for(40.0);
    print_sample_path(&sim, 80);
    println!(
        "... TO sequences by length (T0..T5+): {:?}",
        sim.stats().to_sequences
    );
    window_path_csv("fig3_window_path", &sim);
}

/// Fig. 4 — the penultimate/last-round loss geometry behind `Q̂(w)`:
/// Monte-Carlo of the two-round process against Eq. (24) and the `3/w`
/// approximation (Eq. (25)).
pub fn fig4(scale: &RunScale) {
    section("Fig. 4 — P[loss indication is a timeout | window w]: Monte-Carlo vs Eq. (24)");
    let p = 0.02;
    let lp = LossProb::new(p).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
    let trials = scale.monte_carlo_trials;
    let mut rng = SimRng::seed_from_u64(scale.seed);
    println!("p = {p}, {trials} trials per window");
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "w", "monte-carlo", "Eq.(24)", "min(1,3/w)"
    );
    let mut rows = Vec::new();
    for w in [1u32, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
        let mut timeouts = 0u64;
        for _ in 0..trials {
            // Penultimate round of w packets, conditioned on ≥1 loss: draw
            // the first-loss position k+1 (truncated geometric).
            let q = 1.0 - p;
            let mass = 1.0 - q.powi(w as i32);
            let u = rng.open01() * mass;
            let pos = ((1.0 - u).ln() / q.ln()).ceil().max(1.0) as u32;
            let k = pos.min(w) - 1; // packets ACKed in penultimate round
                                    // Last round: k packets, sequential survival.
            let mut m = 0;
            while m < k && !rng.chance(p) {
                m += 1;
            }
            if k < 3 || m < 3 {
                timeouts += 1;
            }
        }
        let mc = timeouts as f64 / trials as f64;
        let exact = q_hat_exact(lp, f64::from(w));
        let approx = q_hat_approx(f64::from(w));
        println!("{w:>4} {mc:>12.4} {exact:>12.4} {approx:>12.4}");
        rows.push(format!("{w},{mc},{exact},{approx}"));
    }
    write_csv(
        &out_dir(),
        "fig4_qhat",
        "w,monte_carlo,eq24,approx_3_over_w",
        &rows,
    );
    let parse = |idx: usize| -> Vec<(f64, f64)> {
        rows.iter()
            .map(|r| {
                let f: Vec<f64> = r.split(',').map(|v| v.parse().unwrap()).collect(); //~ allow(unwrap): re-reading a CSV this binary just wrote
                (f[0], f[idx])
            })
            .collect()
    };
    Chart::new("Fig. 4 — P[timeout | loss at window w]", "window w", "Q(w)")
        .with(Series::scatter("Monte-Carlo", parse(1)))
        .with(Series::line("Eq. (24)", parse(2)))
        .with(Series::line("min(1, 3/w)", parse(3)))
        .save(&out_dir(), "fig4_qhat");
}

/// Fig. 5 — window evolution limited by `W_m`.
pub fn fig5(scale: &RunScale) {
    section("Fig. 5 — Window evolution clamped by the receiver window W_m = 8");
    let mut sim = RoundsSim::new(
        RoundsConfig {
            p: 0.003,
            rtt: 0.1,
            t0: 1.0,
            b: 2,
            wmax: 8,
            ..RoundsConfig::default()
        },
        scale.seed,
    )
    .record_samples(4_000);
    sim.run_for(60.0);
    print_sample_path(&sim, 80);
    let at_cap = sim.samples().iter().filter(|s| s.window == 8).count();
    println!(
        "... rounds at the cap: {}/{} ({:.0}%)",
        at_cap,
        sim.samples().len(),
        100.0 * at_cap as f64 / sim.samples().len().max(1) as f64
    );
    window_path_csv("fig5_window_path", &sim);
}

/// Fig. 6 — fast retransmit with window limitation: the U_i (linear growth)
/// and V_i (flat at W_m) phases of each TD period.
pub fn fig6(scale: &RunScale) {
    section("Fig. 6 — U/V phase split of window-limited TD periods (W_m = 8)");
    let wmax = 8u32;
    let p = 0.003;
    let mut sim = RoundsSim::new(
        RoundsConfig {
            p,
            rtt: 0.1,
            t0: 1.0,
            b: 2,
            wmax,
            ..RoundsConfig::default()
        },
        scale.seed,
    )
    .record_tdps();
    sim.run_tdps(scale.tdps);
    // For a TD-ended period starting at W_m/2 the model says
    // E[U] = (b/2)·W_m growth rounds; V is the remainder.
    let mut rows = Vec::new();
    let mut sum_u = 0.0;
    let mut sum_v = 0.0;
    let mut n = 0u64;
    for t in sim.tdps() {
        if t.peak_window < wmax {
            continue; // never reached the cap: pure-growth period
        }
        let u = (wmax - t.start_window) * 2; // rounds to grow at slope 1/b, b=2
        let v = t.loss_round.saturating_sub(u);
        sum_u += f64::from(u);
        sum_v += f64::from(v);
        n += 1;
        if rows.len() < 2_000 {
            rows.push(format!("{},{},{}", t.start_window, u, v));
        }
    }
    let b = 2.0;
    println!("capped TDPs: {n}");
    println!(
        "  E[U] = {:.2} rounds (model (b/2)·W_m = {:.1} for a from-half start)",
        sum_u / n.max(1) as f64,
        b / 2.0 * f64::from(wmax) / 2.0 * 2.0 / 2.0 + b / 2.0 * f64::from(wmax) / 2.0
    );
    println!(
        "  E[V] = {:.2} rounds (flat phase at W_m)",
        sum_v / n.max(1) as f64
    );
    write_csv(
        &out_dir(),
        "fig6_uv_phases",
        "start_window,u_rounds,v_rounds",
        &rows,
    );
}

fn category_label(cat: tcp_trace::intervals::IntervalCategory) -> String {
    use tcp_trace::intervals::IntervalCategory::*;
    match cat {
        NoLoss => "none".into(),
        TdOnly => "TD".into(),
        Timeout(d) => format!("T{d}"),
    }
}

/// Fig. 7 — six hour-long traces: per-100-s scatter + "TD only" and
/// "proposed (full)" curves.
pub fn fig7(scale: &RunScale) {
    section("Fig. 7 — Hour-long traces: measured intervals vs model curves");
    let dir = out_dir();
    for (panel_idx, spec) in fig7_paths().into_iter().enumerate() {
        let result = if (scale.hour_secs - 3600.0).abs() < 1.0 {
            run_hour(spec, scale.seed + panel_idx as u64)
        } else {
            run_serial_100s(spec, 1, scale.seed + panel_idx as u64).remove(0)
        };
        let panel = fig7_panel(spec, &result, 100.0);
        println!(
            "\n({}) {}: RTT={:.3}, T0={:.3}, W_m={}  [{} intervals]",
            (b'a' + panel_idx as u8) as char,
            panel.path_id,
            panel.rtt,
            panel.t0,
            panel.wmax,
            panel.scatter.len()
        );
        println!(
            "{:>10} {:>9} {:>6} | {:>10} {:>10}",
            "p", "measured", "cat", "TD-only", "full"
        );
        for pt in &panel.scatter {
            let lp = LossProb::new(pt.p.clamp(1e-9, 1.0 - 1e-9)).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
            let params = ModelParams::new(panel.rtt, panel.t0, 2, panel.wmax).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
            println!(
                "{:>10.4} {:>9} {:>6} | {:>10.0} {:>10.0}",
                pt.p,
                pt.packets,
                category_label(pt.category),
                td_only(lp, &params) * 100.0,
                full_model(lp, &params) * 100.0
            );
        }
        let scatter_rows: Vec<String> = panel
            .scatter
            .iter()
            .map(|pt| format!("{},{},{}", pt.p, pt.packets, category_label(pt.category)))
            .collect();
        write_csv(
            &dir,
            &format!("fig7{}_scatter", (b'a' + panel_idx as u8) as char),
            "p,packets,category",
            &scatter_rows,
        );
        let mut curve_rows = Vec::new();
        for (i, (p, _)) in panel.curves[0].points.iter().enumerate() {
            curve_rows.push(format!(
                "{},{},{}",
                p, panel.curves[0].points[i].1, panel.curves[1].points[i].1
            ));
        }
        write_csv(
            &dir,
            &format!("fig7{}_curves", (b'a' + panel_idx as u8) as char),
            "p,td_only_packets,full_packets",
            &curve_rows,
        );
        // Scatter split by interval category, as the paper's legend does
        // (TD-only intervals vs single timeouts vs backoff depths).
        let mut chart = Chart::new(
            format!(
                "Fig. 7({}) {} — RTT={:.3}, T0={:.3}, Wm={}",
                (b'a' + panel_idx as u8) as char,
                panel.path_id,
                panel.rtt,
                panel.t0,
                panel.wmax
            ),
            "loss indication frequency p",
            "packets per 100 s",
        )
        .log_x()
        .log_y()
        .with(Series::line("TD only", panel.curves[0].points.clone()))
        .with(Series::line(
            "proposed (full)",
            panel.curves[1].points.clone(),
        ));
        let mut by_cat: std::collections::BTreeMap<String, Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        for pt in panel.scatter.iter().filter(|pt| pt.p > 0.0) {
            by_cat
                .entry(category_label(pt.category))
                .or_default()
                .push((pt.p, pt.packets as f64));
        }
        for (cat, pts) in by_cat {
            chart = chart.with(Series::scatter(cat, pts));
        }
        chart.save(&dir, &format!("fig7{}", (b'a' + panel_idx as u8) as char));
    }
}

/// Fig. 8 — 100 serial 100-s connections per path: measured vs proposed vs
/// TD-only.
pub fn fig8(scale: &RunScale) {
    section("Fig. 8 — Serial 100-second connections");
    let dir = out_dir();
    for (panel_idx, spec) in fig8_paths().into_iter().enumerate() {
        let results = run_serial_100s(&spec, scale.serial_n, scale.seed + 100 + panel_idx as u64);
        let series = fig8_series(&spec, &results);
        println!(
            "\n({}) {} [{} traces]",
            (b'a' + panel_idx as u8) as char,
            spec.id(),
            series.len()
        );
        println!(
            "{:>6} {:>9} {:>10} {:>10}",
            "trace", "measured", "proposed", "TD-only"
        );
        for pt in series.iter().take(12) {
            println!(
                "{:>6} {:>9} {:>10.0} {:>10.0}",
                pt.trace_no, pt.measured, pt.proposed, pt.td_only
            );
        }
        if series.len() > 12 {
            println!("   ... ({} more)", series.len() - 12);
        }
        let rows: Vec<String> = series
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{}",
                    pt.trace_no, pt.measured, pt.proposed, pt.td_only
                )
            })
            .collect();
        write_csv(
            &dir,
            &format!("fig8{}_series", (b'a' + panel_idx as u8) as char),
            "trace,measured,proposed,td_only",
            &rows,
        );
        let as_pts = |f: &dyn Fn(&tcp_testbed::report::Fig8Point) -> f64| -> Vec<(f64, f64)> {
            series
                .iter()
                .map(|pt| (pt.trace_no as f64, f(pt)))
                .collect()
        };
        Chart::new(
            format!("Fig. 8({}) {}", (b'a' + panel_idx as u8) as char, spec.id()),
            "trace number",
            "packets per 100 s",
        )
        .with(Series::line("measured", as_pts(&|pt| pt.measured as f64)))
        .with(Series::line("proposed", as_pts(&|pt| pt.proposed)))
        .with(Series::line("TD only", as_pts(&|pt| pt.td_only)))
        .save(&dir, &format!("fig8{}", (b'a' + panel_idx as u8) as char));
    }
}

/// Fig. 9 — average error of the three models over all hour-long traces,
/// ordered by increasing TD-only error (the paper's presentation).
pub fn fig9(scale: &RunScale) {
    section("Fig. 9 — Average error, hour-long traces");
    let results: Vec<Option<tcp_testbed::ExperimentResult>> =
        if (scale.hour_secs - 3600.0).abs() < 1.0 {
            let report = run_table2(TABLE2_PATHS, scale.seed);
            if !report.is_complete() {
                eprintln!("  partial campaign: {}", report.summary());
            }
            report.rows.into_iter().map(|row| row.result).collect()
        } else {
            TABLE2_PATHS
                .iter()
                .map(|s| Some(run_serial_100s(s, 1, scale.seed).remove(0)))
                .collect()
        };
    // Failed paths are explicit holes: skipped from the error comparison
    // (and the skip is visible), never silently averaged as zeros.
    let mut triples: Vec<_> = TABLE2_PATHS
        .iter()
        .zip(&results)
        .filter_map(|(spec, slot)| match slot {
            Some(r) => Some(error_triple_hourly(spec, r, 100.0)),
            None => {
                println!("{:<22} (no data: experiment failed)", spec.id());
                None
            }
        })
        .collect();
    triples.sort_by(|a, b| a.td_only.total_cmp(&b.td_only));
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "path", "full", "approx", "TD-only"
    );
    let mut rows = Vec::new();
    let mut full_wins = 0;
    for t in &triples {
        println!(
            "{:<22} {:>8.3} {:>8.3} {:>8.3}",
            t.path_id, t.full, t.approx, t.td_only
        );
        if t.full <= t.td_only {
            full_wins += 1;
        }
        rows.push(format!(
            "{},{},{},{}",
            t.path_id, t.full, t.approx, t.td_only
        ));
    }
    println!(
        "\nfull model beats TD-only on {}/{} paths (paper: most cases)",
        full_wins,
        triples.len()
    );
    write_csv(&out_dir(), "fig9_errors", "path,full,approx,td_only", &rows);
    error_chart("Fig. 9 — average error, 1 h traces", &triples, "fig9");
}

/// Renders an error-comparison chart (paths ordered by TD-only error, as
/// the paper presents Figs. 9/10).
fn error_chart(title: &str, triples: &[tcp_testbed::report::ErrorTriple], name: &str) {
    let idx = |f: &dyn Fn(&tcp_testbed::report::ErrorTriple) -> f64| -> Vec<(f64, f64)> {
        triples
            .iter()
            .enumerate()
            .map(|(i, t)| (i as f64, f(t)))
            .collect()
    };
    Chart::new(title, "trace (ordered by TD-only error)", "average error")
        .log_y()
        .with(Series::line("proposed (full)", idx(&|t| t.full.max(1e-3))))
        .with(Series::line(
            "proposed (approx.)",
            idx(&|t| t.approx.max(1e-3)),
        ))
        .with(Series::line("TD only", idx(&|t| t.td_only.max(1e-3))))
        .save(&out_dir(), name);
}

/// Fig. 10 — average error for the serial 100-s experiments.
pub fn fig10(scale: &RunScale) {
    section("Fig. 10 — Average error, 100-second traces");
    let mut triples = Vec::new();
    for (i, spec) in fig8_paths().into_iter().enumerate() {
        let results = run_serial_100s(&spec, scale.serial_n, scale.seed + 200 + i as u64);
        triples.push(error_triple_serial(&spec, &results));
    }
    triples.sort_by(|a, b| a.td_only.total_cmp(&b.td_only));
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "path", "full", "approx", "TD-only"
    );
    let mut rows = Vec::new();
    for t in &triples {
        println!(
            "{:<22} {:>8.3} {:>8.3} {:>8.3}",
            t.path_id, t.full, t.approx, t.td_only
        );
        rows.push(format!(
            "{},{},{},{}",
            t.path_id, t.full, t.approx, t.td_only
        ));
    }
    write_csv(
        &out_dir(),
        "fig10_errors",
        "path,full,approx,td_only",
        &rows,
    );
    error_chart("Fig. 10 — average error, 100 s traces", &triples, "fig10");
}

/// Fig. 11 — the modem path: deep dedicated buffer, RTT correlated with the
/// window, every model over-predicts.
pub fn fig11(scale: &RunScale) {
    section("Fig. 11 — Modem path (dedicated buffer): where the model fails");
    let spec = ModemSpec::default();
    let horizon = scale.hour_secs.min(3600.0);
    // The modem run streams its analysis: correlation and 100-s intervals
    // come straight out of the reduced result, no trace retained.
    let result = run_modem(&spec, horizon, scale.seed);
    let corr = result.rtt_window_corr().unwrap_or(0.0);
    let intervals = result.intervals().unwrap_or(&[]).to_vec();
    let rtt = result.ground_rtt.unwrap_or(spec.base_rtt);
    let t0 = result.ground_t0.unwrap_or(1.0);
    let params = ModelParams::new(rtt, t0, 2, spec.wmax).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
    println!(
        "measured RTT (queueing-dominated): {rtt:.3} s  T0: {t0:.3} s  W_m={}",
        spec.wmax
    );
    println!("RTT-window correlation: {corr:.3}  (paper observed up to 0.97; §IV)");
    println!(
        "\n{:>10} {:>9} {:>10} {:>10}",
        "p", "measured", "full", "TD-only"
    );
    let mut rows = Vec::new();
    let mut err_full = 0.0;
    let mut err_td = 0.0;
    let mut counted = 0usize;
    for iv in &intervals {
        if iv.packets_sent == 0 {
            continue;
        }
        let lp = LossProb::new(iv.loss_rate.clamp(1e-9, 1.0 - 1e-9)).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
        let full = full_model(lp, &params) * 100.0;
        let td = td_only(lp, &params) * 100.0;
        println!(
            "{:>10.4} {:>9} {:>10.0} {:>10.0}",
            iv.loss_rate, iv.packets_sent, full, td
        );
        err_full += (full - iv.packets_sent as f64).abs() / iv.packets_sent as f64;
        err_td += (td - iv.packets_sent as f64).abs() / iv.packets_sent as f64;
        counted += 1;
        rows.push(format!(
            "{},{},{},{}",
            iv.loss_rate, iv.packets_sent, full, td
        ));
    }
    let n = counted.max(1) as f64;
    println!(
        "\naverage error on the modem path: full {:.2}, TD-only {:.2}.\n\
         Three failure signals, per §IV (\"our model, as well as [8],[9],[12], fail to\n\
         match the observed data in the case of a receiver at the end of a modem\"):\n\
         (1) the RTT-window correlation above violates the model's independence\n\
             assumption (normal paths sit in [-0.1, 0.1]);\n\
         (2) both models systematically under-predict here — the dedicated buffer keeps\n\
             the bottleneck busy straight through loss episodes, the complementary\n\
             direction to the paper's plot, same root cause;\n\
         (3) the full model's edge over TD-only disappears or inverts: its timeout\n\
             correction mis-fires when queueing, not timeouts, governs the rate.",
        err_full / n,
        err_td / n
    );
    write_csv(&out_dir(), "fig11_modem", "p,measured,full,td_only", &rows);
    let parse = |idx: usize| -> Vec<(f64, f64)> {
        rows.iter()
            .map(|r| {
                let f: Vec<f64> = r.split(',').map(|v| v.parse().unwrap()).collect(); //~ allow(unwrap): re-reading a CSV this binary just wrote
                (f[0].max(1e-5), f[idx])
            })
            .collect()
    };
    Chart::new(
        format!("Fig. 11 — modem path (corr {corr:.2})"),
        "loss indication frequency p",
        "packets per 100 s",
    )
    .log_x()
    .with(Series::scatter("measured", parse(1)))
    .with(Series::scatter("full model", parse(2)))
    .with(Series::scatter("TD only", parse(3)))
    .save(&out_dir(), "fig11");
}

/// Fig. 12 — the numerically solved Markov model vs the closed form
/// (RTT = 0.47 s, T0 = 3.2 s, W_m = 12), with the rounds simulator as a
/// third, assumption-exact referee.
pub fn fig12(scale: &RunScale) {
    section("Fig. 12 — Markov model vs proposed model (RTT=0.47, T0=3.2, Wm=12)");
    let params = ModelParams::new(0.47, 3.2, 2, 12).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "p", "closed", "markov", "rounds-sim"
    );
    let mut rows = Vec::new();
    for &p in &[0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3] {
        let lp = LossProb::new(p).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
        let closed = full_model(lp, &params);
        let markov = MarkovModel::solve(lp, &params).unwrap().send_rate(); //~ allow(unwrap): figure CLI with constant paper parameters
        let mut sim = RoundsSim::new(
            RoundsConfig {
                p,
                rtt: 0.47,
                t0: 3.2,
                b: 2,
                wmax: 12,
                ..RoundsConfig::default()
            },
            scale.seed,
        );
        sim.run_for(scale.rounds_sim_secs);
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>10.3}",
            p,
            closed,
            markov,
            sim.send_rate()
        );
        rows.push(format!("{},{},{},{}", p, closed, markov, sim.send_rate()));
    }
    write_csv(
        &out_dir(),
        "fig12_markov",
        "p,closed_form,markov,rounds_sim",
        &rows,
    );
    let parse = |idx: usize| -> Vec<(f64, f64)> {
        rows.iter()
            .map(|r| {
                let f: Vec<f64> = r.split(',').map(|v| v.parse().unwrap()).collect(); //~ allow(unwrap): re-reading a CSV this binary just wrote
                (f[0], f[idx])
            })
            .collect()
    };
    Chart::new(
        "Fig. 12 — Markov model vs proposed model (RTT=0.47, T0=3.2, Wm=12)",
        "loss probability p",
        "send rate (packets/s)",
    )
    .log_x()
    .log_y()
    .with(Series::line("proposed (closed form)", parse(1)))
    .with(Series::line("Markov model", parse(2)))
    .with(Series::scatter("rounds simulator", parse(3)))
    .save(&out_dir(), "fig12");
}

/// Fig. 13 — send rate vs receiver throughput (W_m = 12, RTT = 0.47 s,
/// T0 = 3.2 s).
pub fn fig13(_scale: &RunScale) {
    section("Fig. 13 — Send rate B(p) vs throughput T(p)");
    let params = ModelParams::new(0.47, 3.2, 2, 12).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "p", "send rate", "throughput", "T/B"
    );
    let mut rows = Vec::new();
    for i in 0..40 {
        let p = 1e-3 * (300.0f64).powf(i as f64 / 39.0);
        let lp = LossProb::new(p).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
        let b = full_model(lp, &params);
        let t = throughput(lp, &params);
        println!("{:>8.4} {:>12.3} {:>12.3} {:>10.3}", p, b, t, t / b);
        rows.push(format!("{p},{b},{t}"));
    }
    write_csv(
        &out_dir(),
        "fig13_throughput",
        "p,send_rate,throughput",
        &rows,
    );
    let parse = |idx: usize| -> Vec<(f64, f64)> {
        rows.iter()
            .map(|r| {
                let f: Vec<f64> = r.split(',').map(|v| v.parse().unwrap()).collect(); //~ allow(unwrap): re-reading a CSV this binary just wrote
                (f[0], f[idx])
            })
            .collect()
    };
    Chart::new(
        "Fig. 13 — send rate vs throughput (RTT=0.47, T0=3.2, Wm=12)",
        "loss probability p",
        "packets/s",
    )
    .log_x()
    .log_y()
    .with(Series::line("send rate B(p)", parse(1)))
    .with(Series::line("throughput T(p)", parse(2)))
    .save(&out_dir(), "fig13");
}

/// Sanity helper used by the `repro-all` binary: the full evaluation at the
/// chosen scale.
pub fn run_all(scale: &RunScale) {
    crate::tables::table1();
    crate::tables::table2(scale);
    fig1(scale);
    fig2(scale);
    fig3(scale);
    fig4(scale);
    fig5(scale);
    fig6(scale);
    fig7(scale);
    fig8(scale);
    fig9(scale);
    fig10(scale);
    fig11(scale);
    fig12(scale);
    fig13(scale);
    let _ = ModelKind::ALL;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_figures_run_quickly() {
        std::env::set_var("REPRO_OUT", std::env::temp_dir().join("repro-fig-test"));
        let scale = RunScale::quick();
        fig1(&scale);
        fig2(&scale);
        fig3(&scale);
        fig4(&scale);
        fig5(&scale);
        fig6(&scale);
        fig12(&scale);
        fig13(&scale);
        std::env::remove_var("REPRO_OUT");
    }
}
