//! Output plumbing for the regeneration binaries: aligned text to stdout,
//! CSV files into the results directory.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Resolves the output directory: `$REPRO_OUT` if set, else `./results`.
/// Creates it if missing.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var_os("REPRO_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results directory"); //~ allow(expect): results-writer CLI: fail fast on I/O errors
    dir
}

/// Writes a CSV file `name.csv` into `dir`.
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) {
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv"); //~ allow(expect): results-writer CLI: fail fast on I/O errors
    writeln!(f, "{header}").expect("write csv header"); //~ allow(expect): results-writer CLI: fail fast on I/O errors
    for row in rows {
        writeln!(f, "{row}").expect("write csv row"); //~ allow(expect): results-writer CLI: fail fast on I/O errors
    }
    eprintln!("  wrote {}", path.display());
}

/// Prints a banner for one experiment.
pub fn section(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_honors_env() {
        let tmp = std::env::temp_dir().join("repro-out-test");
        std::env::set_var("REPRO_OUT", &tmp);
        let d = out_dir();
        assert_eq!(d, tmp);
        assert!(d.exists());
        std::env::remove_var("REPRO_OUT");
        let _ = std::fs::remove_dir_all(tmp);
    }

    #[test]
    fn csv_roundtrip() {
        let tmp = std::env::temp_dir().join(format!("repro-csv-{}", std::process::id()));
        fs::create_dir_all(&tmp).unwrap();
        write_csv(&tmp, "t", "a,b", &["1,2".into(), "3,4".into()]);
        let text = fs::read_to_string(tmp.join("t.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        let _ = fs::remove_dir_all(tmp);
    }
}
