//! The variant model-domain atlas: where does the PFTK closed form stop
//! describing each congestion-control variant?
//!
//! Eq. (32) was derived for Reno's window laws. The atlas sweeps the
//! model's own parameter space — loss rate `p` × round-trip `RTT` ×
//! timeout `T0` × receiver window `W_m` — once per
//! [`CcAlgorithm`], measuring the rounds-model send rate at every grid
//! cell and dividing it by the Eq. (32) prediction for that cell. Cells
//! whose measured/predicted ratio leaves `[1/2, 2]` form the variant's
//! **divergence frontier**: the boundary beyond which quoting the PFTK
//! formula for that variant is off by more than 2×.
//!
//! Everything here is deterministic (fixed seed, fixed grid, fixed
//! horizon), so the emitted CSVs are golden outputs: byte-identical on
//! every run, pinned by `tests/atlas_golden.rs`.

use tcp_sim::cc::CcAlgorithm;
use tcp_sim::rounds::{RoundsConfig, RoundsSim};

use pftk_model::params::ModelParams;
use pftk_model::sendrate::full_model;
use pftk_model::units::LossProb;

/// Seed of the golden atlas runs (arbitrary, but pinned: the CSVs in
/// `results/` are bit-exact functions of it).
pub const GOLDEN_SEED: u64 = 20260808;

/// Simulated horizon of each golden grid cell, seconds. Long enough that
/// every cell sees thousands of loss indications; short enough that the
/// whole four-variant atlas regenerates in seconds.
pub const GOLDEN_HORIZON_SECS: f64 = 4000.0;

/// A measured/predicted ratio outside `[1/DIVERGENCE_FACTOR,
/// DIVERGENCE_FACTOR]` puts the cell on the divergence frontier.
pub const DIVERGENCE_FACTOR: f64 = 2.0;

/// One atlas grid cell: a model-domain operating point, the variant's
/// measured rounds-model send rate there, and the PFTK prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtlasCell {
    /// First-loss probability `p`.
    pub p: f64,
    /// Round-trip time, seconds.
    pub rtt: f64,
    /// Single-timeout duration `T0`, seconds.
    pub t0: f64,
    /// Receiver-window cap `W_m`, packets.
    pub wmax: u32,
    /// Rounds-model send rate of the variant at this cell, packets/sec.
    pub measured_pps: f64,
    /// Eq. (32) prediction at this cell, packets/sec.
    pub model_pps: f64,
}

impl AtlasCell {
    /// Measured / predicted. Above 1: the variant outruns the PFTK
    /// formula; below 1: it undershoots it.
    pub fn ratio(&self) -> f64 {
        self.measured_pps / self.model_pps
    }

    /// True when the cell is past the >2× divergence frontier.
    pub fn diverges(&self) -> bool {
        let r = self.ratio();
        !(1.0 / DIVERGENCE_FACTOR..=DIVERGENCE_FACTOR).contains(&r)
    }
}

/// The golden sweep grid: every `(p, rtt, t0, wmax)` combination of these
/// axes, in lexicographic order. The `p` axis deliberately runs into the
/// regime the paper itself flags as approximation-hostile (`p ≥ 0.3`),
/// and the `W_m` axis includes a window-limited corner — both are where
/// frontiers live. The `T0/RTT` axis spans the paper's measured ratios
/// (Table II paths sit around 2–8) up to 20 — RFC 6298's 1-second RTO
/// floor over a 50 ms path — where loss recovery, not the send window,
/// starts pricing a TD period.
pub fn atlas_grid() -> Vec<(f64, f64, f64, u32)> {
    let ps = [0.005, 0.02, 0.05, 0.1, 0.2, 0.3, 0.45];
    let rtts = [0.05, 0.2];
    let t0_mults = [2.0, 8.0, 20.0]; // T0 as a multiple of RTT
    let wmaxes = [8u32, 64];
    let mut grid = Vec::new();
    for &p in &ps {
        for &rtt in &rtts {
            for &m in &t0_mults {
                for &wmax in &wmaxes {
                    grid.push((p, rtt, rtt * m, wmax));
                }
            }
        }
    }
    grid
}

/// Runs one variant over [`atlas_grid`], returning one [`AtlasCell`] per
/// grid point (grid order). Deterministic in `(cc, horizon_secs, seed)`.
//= pftk#variant-envelope type=impl
pub fn run_atlas(cc: CcAlgorithm, horizon_secs: f64, seed: u64) -> Vec<AtlasCell> {
    atlas_grid()
        .into_iter()
        .enumerate()
        .map(|(i, (p, rtt, t0, wmax))| {
            let config = RoundsConfig {
                p,
                rtt,
                t0,
                wmax,
                cc,
                ..RoundsConfig::default()
            };
            let mut sim = RoundsSim::new(config, seed.wrapping_add(i as u64));
            sim.run_for(horizon_secs);
            let lp = LossProb::new(p).expect("atlas grid p is in (0,1)"); //~ allow(expect): grid is a compile-time constant
            let params =
                ModelParams::new(rtt, t0, config.b, wmax).expect("atlas grid params are valid"); //~ allow(expect): grid is a compile-time constant
            AtlasCell {
                p,
                rtt,
                t0,
                wmax,
                measured_pps: sim.send_rate(),
                model_pps: full_model(lp, &params),
            }
        })
        .collect()
}

/// The cells of `cells` that lie past the divergence frontier.
pub fn frontier(cells: &[AtlasCell]) -> Vec<AtlasCell> {
    cells.iter().copied().filter(AtlasCell::diverges).collect()
}

/// CSV header matching [`csv_rows`].
pub const CSV_HEADER: &str = "p,rtt,t0,wmax,measured_pps,model_pps,ratio,diverges";

/// Formats cells as golden CSV rows. `f64`s print with Rust's shortest
/// round-trip formatting, so the bytes are an exact function of the run.
pub fn csv_rows(cells: &[AtlasCell]) -> Vec<String> {
    cells
        .iter()
        .map(|c| {
            format!(
                "{},{},{},{},{},{},{},{}",
                c.p,
                c.rtt,
                c.t0,
                c.wmax,
                c.measured_pps,
                c.model_pps,
                c.ratio(),
                u8::from(c.diverges()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_axes() {
        let grid = atlas_grid();
        assert_eq!(grid.len(), 7 * 2 * 3 * 2);
        assert!(grid.iter().any(|&(p, ..)| p >= 0.45));
        assert!(grid.iter().any(|&(.., wmax)| wmax == 8));
    }

    #[test]
    fn atlas_is_deterministic() {
        let a = run_atlas(CcAlgorithm::Cubic, 200.0, 7);
        let b = run_atlas(CcAlgorithm::Cubic, 200.0, 7);
        assert_eq!(csv_rows(&a), csv_rows(&b));
    }

    #[test]
    fn reno_tracks_the_model_at_the_paper_operating_point() {
        // The rounds model *is* the closed form's derivation minus its
        // final approximations: at a moderate grid point Reno must hug the
        // prediction.
        let cells = run_atlas(CcAlgorithm::Reno, 2000.0, GOLDEN_SEED);
        let c = cells
            .iter()
            .find(|c| c.p == 0.02 && c.rtt == 0.2 && c.wmax == 64)
            .unwrap();
        assert!(
            (0.8..1.25).contains(&c.ratio()),
            "Reno ratio {} at the benign corner",
            c.ratio()
        );
    }
}
