//! Regeneration of the paper's tables.

use crate::output::{out_dir, section, write_csv};
use crate::RunScale;
use tcp_testbed::experiment::{run_table2, ExperimentResult};
use tcp_testbed::hosts::HOSTS;
use tcp_testbed::paths::TABLE2_PATHS;
use tcp_trace::table::{format_table, TableRow};

/// Table I: the host registry.
pub fn table1() {
    section("Table I — Domains and Operating Systems of Hosts");
    println!("{:<12} {:<18} Operating System", "Receiver", "Domain");
    let mut rows = Vec::new();
    for h in HOSTS {
        println!("{:<12} {:<18} {}", h.name, h.domain, h.os.label());
        rows.push(format!("{},{},{}", h.name, h.domain, h.os.label()));
    }
    write_csv(&out_dir(), "table1", "receiver,domain,os", &rows);
}

/// Table II: 24 hour-long connections, analyzed from the simulated traces,
/// printed next to the paper's numbers. Returns the measured rows.
pub fn table2(scale: &RunScale) -> Vec<TableRow> {
    section("Table II — Summary Data from 1 h Traces (simulated testbed)");
    // Scale the horizon (benches use a shorter one); counts are then
    // extrapolation-free but comparable in *rate* terms.
    let mut specs = TABLE2_PATHS.to_vec();
    if scale.hour_secs < 3600.0 {
        eprintln!("  (reduced horizon: {} s per trace)", scale.hour_secs);
    }
    // run_table2 always runs the paper's full hour; for reduced scales run
    // each spec directly. Supervised rows may carry holes (failed paths);
    // those are rendered explicitly instead of aborting the table.
    let results: Vec<Option<ExperimentResult>> = if (scale.hour_secs - 3600.0).abs() < 1.0 {
        let report = run_table2(&specs, scale.seed);
        if !report.is_complete() {
            eprintln!("  partial campaign: {}", report.summary());
        }
        report.rows.into_iter().map(|row| row.result).collect()
    } else {
        specs
            .iter()
            .map(|s| {
                tcp_testbed::experiment::run_serial_100s(s, 1, scale.seed)
                    .into_iter()
                    .next() // one run was requested; Some by construction
            })
            .collect()
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (spec, slot) in specs.iter_mut().zip(&results) {
        let Some(result) = slot else {
            // Explicit hole: the supervised experiment failed; the paper
            // row is still printed for reference below.
            println!(
                "{:<8} {:<12} — no data (experiment failed; see campaign summary)",
                spec.sender, spec.receiver
            );
            csv.push(format!("{},{},,,,,,,,,,,,,,,,", spec.sender, spec.receiver));
            continue;
        };
        // Streamed analysis: the campaign never materialized these traces.
        let timing_rtt = result.timing().and_then(|t| t.mean_rtt);
        let row = TableRow::from_analysis(
            spec.sender,
            spec.receiver,
            result.analysis(),
            timing_rtt.unwrap_or(spec.rtt),
            result.ground_t0.unwrap_or(spec.t0),
        );
        csv.push(format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{},{},{},{:.3},{:.3}",
            row.sender,
            row.receiver,
            row.packets_sent,
            row.loss_indications,
            row.td,
            row.timeouts[0],
            row.timeouts[1],
            row.timeouts[2],
            row.timeouts[3],
            row.timeouts[4].max(row.timeouts[5]),
            row.timeouts[5],
            row.rtt,
            row.t0,
            spec.paper_packets,
            spec.paper_loss,
            spec.paper_td,
            spec.rtt,
            spec.t0
        ));
        rows.push(row);
    }
    println!("{}", format_table(&rows));
    println!("Paper reference rows (same order):");
    for spec in TABLE2_PATHS {
        println!(
            "{:<8} {:<12} {:>8} {:>6} {:>5}   RTT {:.3}  T0 {:.3}",
            spec.sender,
            spec.receiver,
            spec.paper_packets,
            spec.paper_loss,
            spec.paper_td,
            spec.rtt,
            spec.t0
        );
    }
    // The paper's headline observation, checked on *our* data:
    let to_dominant = rows.iter().filter(|r| r.timeout_fraction() > 0.5).count();
    println!(
        "\nTimeout-dominated traces: {}/{} (paper: majority in all traces)",
        to_dominant,
        rows.len()
    );
    write_csv(
        &out_dir(),
        "table2",
        "sender,receiver,packets,loss,td,t0,t1,t2,t3,t4,t5plus,rtt,timeout,paper_packets,paper_loss,paper_td,paper_rtt,paper_t0",
        &csv,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_quick_scale_produces_all_rows() {
        std::env::set_var("REPRO_OUT", std::env::temp_dir().join("repro-table-test"));
        let rows = table2(&RunScale::quick());
        assert_eq!(rows.len(), 24);
        assert!(rows.iter().all(|r| r.packets_sent > 0));
        std::env::remove_var("REPRO_OUT");
    }
}
