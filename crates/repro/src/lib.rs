//! # tcp-repro
//!
//! Regeneration of every table and figure in the paper's evaluation.
//! Each `fig*`/`table*` binary wraps a function in [`figures`]/[`tables`];
//! `repro-all` runs the whole evaluation. Output goes to stdout and, as
//! CSV, to `./results` (override with `$REPRO_OUT`).
//!
//! See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod atlas;
pub mod figures;
pub mod output;
pub mod plot;
pub mod tables;

/// Scaling knobs so benches and tests can run the same code paths at a
/// fraction of the paper's horizons.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Horizon of "hour-long" runs, seconds (paper: 3600).
    pub hour_secs: f64,
    /// Number of serial 100-s connections (paper: 100).
    pub serial_n: usize,
    /// TD periods for anatomy figures.
    pub tdps: usize,
    /// Monte-Carlo trials per point (Fig. 4).
    pub monte_carlo_trials: u64,
    /// Rounds-simulator horizon for Fig. 12, simulated seconds.
    pub rounds_sim_secs: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale {
            hour_secs: 3600.0,
            serial_n: 100,
            tdps: 20_000,
            monte_carlo_trials: 200_000,
            rounds_sim_secs: 2_000_000.0,
            seed: 20260706,
        }
    }
}

impl RunScale {
    /// A reduced scale for tests and Criterion benches: same code paths,
    /// ~100× less work.
    pub fn quick() -> Self {
        RunScale {
            hour_secs: 100.0,
            serial_n: 3,
            tdps: 2_000,
            monte_carlo_trials: 20_000,
            rounds_sim_secs: 20_000.0,
            seed: 20260706,
        }
    }

    /// Parses the common CLI flags every regeneration binary accepts:
    /// `--quick` (reduced scale) and `--seed N`. Unknown flags abort with a
    /// usage message.
    pub fn from_args() -> Self {
        let mut scale = RunScale::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    let seed = scale.seed;
                    scale = RunScale::quick();
                    scale.seed = seed;
                }
                "--seed" => {
                    let value = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    scale.seed = value
                        .parse()
                        .unwrap_or_else(|_| usage("--seed needs an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other:?}")),
            }
        }
        scale
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: <bin> [--quick] [--seed N]");
    eprintln!("  --quick    reduced-scale run (~100x less work)");
    eprintln!("  --seed N   override the RNG seed (default 20260706)");
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
