//! Regenerates Table I.
fn main() {
    tcp_repro::tables::table1();
}
