//! Regenerates Table II (24 hour-long simulated traces).
fn main() {
    tcp_repro::tables::table2(&tcp_repro::RunScale::from_args());
}
