//! Regenerates Fig. 10.
fn main() {
    tcp_repro::figures::fig10(&tcp_repro::RunScale::from_args());
}
