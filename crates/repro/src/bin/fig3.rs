//! Regenerates Fig. 3.
fn main() {
    tcp_repro::figures::fig3(&tcp_repro::RunScale::from_args());
}
