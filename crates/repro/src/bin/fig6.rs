//! Regenerates Fig. 6.
fn main() {
    tcp_repro::figures::fig6(&tcp_repro::RunScale::from_args());
}
