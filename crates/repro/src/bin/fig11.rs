//! Regenerates Fig. 11.
fn main() {
    tcp_repro::figures::fig11(&tcp_repro::RunScale::from_args());
}
