//! Regenerates Fig. 12.
fn main() {
    tcp_repro::figures::fig12(&tcp_repro::RunScale::from_args());
}
