//! Regenerates Fig. 1.
fn main() {
    tcp_repro::figures::fig1(&tcp_repro::RunScale::from_args());
}
