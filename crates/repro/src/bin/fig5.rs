//! Regenerates Fig. 5.
fn main() {
    tcp_repro::figures::fig5(&tcp_repro::RunScale::from_args());
}
