//! Regenerates Fig. 13.
fn main() {
    tcp_repro::figures::fig13(&tcp_repro::RunScale::from_args());
}
