//! Regenerates Fig. 9.
fn main() {
    tcp_repro::figures::fig9(&tcp_repro::RunScale::from_args());
}
