//! Practical model sweep: a lookup grid of the full model over loss rate ×
//! RTT, elasticities at each operating point, and an SVG of the B(p)
//! family — the "how do I actually use this equation" artifact.
//!
//! ```sh
//! cargo run --release -p tcp-repro --bin sweep [--seed N]
//! ```

use pftk_model::prelude::*;
use tcp_repro::output::{out_dir, section, write_csv};
use tcp_repro::plot::{Chart, Series};

fn main() {
    let _ = tcp_repro::RunScale::from_args();
    section("Model sweep — B(p) over loss × RTT (T0 = 4·RTT, b = 2, W_m = 64)");
    let rtts = [0.02, 0.05, 0.1, 0.2, 0.5];
    let grid = tcp_testbed::report::loss_grid();

    // Text table at a coarse grid.
    println!(
        "{:>8} | {}",
        "p \\ RTT",
        rtts.map(|r| format!("{r:>9}")).join(" ")
    );
    let mut csv = Vec::new();
    for &p in &[0.001, 0.003, 0.01, 0.03, 0.1, 0.3] {
        let lp = LossProb::new(p).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
        let row: Vec<String> = rtts
            .iter()
            .map(|&rtt| {
                let params = ModelParams::new(rtt, 4.0 * rtt, 2, 64).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
                format!("{:>9.1}", full_model(lp, &params))
            })
            .collect();
        println!("{p:>8} | {}", row.join(" "));
    }
    for &rtt in &rtts {
        let params = ModelParams::new(rtt, 4.0 * rtt, 2, 64).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
        for &p in &grid {
            let lp = LossProb::new(p).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
            let e = elasticities(lp, &params).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
            csv.push(format!(
                "{rtt},{p},{},{},{},{}",
                full_model(lp, &params),
                e.wrt_p,
                e.wrt_rtt,
                e.wrt_t0
            ));
        }
    }
    write_csv(
        &out_dir(),
        "sweep_grid",
        "rtt,p,rate_pps,elast_p,elast_rtt,elast_t0",
        &csv,
    );

    // Elasticity spot-checks at a mid operating point.
    println!("\nelasticities at p = 0.02 (1% change in x → E·1% change in B):");
    println!("{:>8} {:>8} {:>8} {:>8}", "RTT", "E_p", "E_rtt", "E_t0");
    for &rtt in &rtts {
        let params = ModelParams::new(rtt, 4.0 * rtt, 2, 64).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
        let e = elasticities(LossProb::new(0.02).unwrap(), &params).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
        println!(
            "{rtt:>8} {:>8.3} {:>8.3} {:>8.3}",
            e.wrt_p, e.wrt_rtt, e.wrt_t0
        );
    }

    // SVG family.
    let mut chart = Chart::new(
        "Full model B(p) for an RTT family (T0 = 4·RTT, W_m = 64)",
        "loss event rate p",
        "send rate (packets/s)",
    )
    .log_x()
    .log_y();
    for &rtt in &rtts {
        let params = ModelParams::new(rtt, 4.0 * rtt, 2, 64).unwrap(); //~ allow(unwrap): figure CLI with constant paper parameters
        let pts: Vec<(f64, f64)> = grid
            .iter()
            .map(|&p| (p, full_model(LossProb::new(p).unwrap(), &params))) //~ allow(unwrap): figure CLI with constant paper parameters
            .collect();
        chart = chart.with(Series::line(format!("RTT = {rtt}s"), pts));
    }
    chart.save(&out_dir(), "sweep_family");
}
