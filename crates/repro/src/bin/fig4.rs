//! Regenerates Fig. 4.
fn main() {
    tcp_repro::figures::fig4(&tcp_repro::RunScale::from_args());
}
