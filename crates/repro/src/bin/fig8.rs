//! Regenerates Fig. 8.
fn main() {
    tcp_repro::figures::fig8(&tcp_repro::RunScale::from_args());
}
