//! The variant model-domain atlas: per-variant measured/PFTK-predicted
//! ratio tables over the (p, RTT, T0, W_m) grid, plus the summary figure
//! marking each variant's >2× divergence frontier.
//!
//! ```sh
//! cargo run --release -p tcp-repro --bin atlas
//! ```
//!
//! The emitted `atlas_<variant>.csv` files are golden: deterministic in
//! the pinned seed/horizon and pinned byte-for-byte by
//! `tests/atlas_golden.rs`. (`--quick`/`--seed` are accepted for
//! exploration but taking either off the defaults makes the outputs
//! differ from the goldens.)

use tcp_repro::atlas::{
    csv_rows, frontier, run_atlas, CSV_HEADER, GOLDEN_HORIZON_SECS, GOLDEN_SEED,
};
use tcp_repro::output::{out_dir, section, write_csv};
use tcp_repro::plot::{Chart, Series};
use tcp_sim::cc::CcAlgorithm;

fn main() {
    let scale = tcp_repro::RunScale::from_args();
    let (horizon, seed) = if scale.seed == tcp_repro::RunScale::default().seed {
        (
            if scale.hour_secs < 3600.0 {
                GOLDEN_HORIZON_SECS / 20.0
            } else {
                GOLDEN_HORIZON_SECS
            },
            GOLDEN_SEED,
        )
    } else {
        (GOLDEN_HORIZON_SECS, scale.seed)
    };
    section("Model-domain atlas — measured/Eq.(32) per variant over (p, RTT, T0, W_m)");

    let dir = out_dir();
    let mut chart = Chart::new(
        "Divergence atlas: rounds-model rate / Eq. (32) per variant",
        "loss probability p",
        "measured / predicted",
    )
    .log_x()
    .log_y();

    for algo in CcAlgorithm::ALL {
        let cells = run_atlas(algo, horizon, seed);
        write_csv(
            &dir,
            &format!("atlas_{}", algo.label()),
            CSV_HEADER,
            &csv_rows(&cells),
        );
        let front = frontier(&cells);
        println!(
            "{:<11} {} / {} cells past the 2x frontier",
            algo.label(),
            front.len(),
            cells.len()
        );
        for c in &front {
            println!(
                "    p={:<6} rtt={:<5} t0={:<5} wmax={:<3} ratio={:.3}",
                c.p,
                c.rtt,
                c.t0,
                c.wmax,
                c.ratio()
            );
        }
        chart = chart.with(Series::scatter(
            algo.label(),
            cells.iter().map(|c| (c.p, c.ratio())).collect(),
        ));
    }

    // The frontier itself: everything outside the band between these two
    // guides is >2x off the PFTK prediction.
    let grid_p: Vec<f64> = tcp_repro::atlas::atlas_grid()
        .iter()
        .map(|&(p, ..)| p)
        .collect();
    let (lo, hi) = (
        grid_p.iter().copied().fold(f64::INFINITY, f64::min),
        grid_p.iter().copied().fold(0.0f64, f64::max),
    );
    chart = chart
        .with(Series::line("2x frontier", vec![(lo, 2.0), (hi, 2.0)]))
        .with(Series::line("1/2 frontier", vec![(lo, 0.5), (hi, 0.5)]));
    chart.save(&dir, "atlas_frontier");
}
