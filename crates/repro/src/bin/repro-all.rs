//! Runs the entire evaluation: every table and figure.
//! Flags: `--quick` for a reduced-scale smoke run, `--seed N`.
fn main() {
    let scale = tcp_repro::RunScale::from_args();
    tcp_repro::figures::run_all(&scale);
}
