//! Regenerates Fig. 7.
fn main() {
    tcp_repro::figures::fig7(&tcp_repro::RunScale::from_args());
}
