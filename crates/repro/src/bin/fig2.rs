//! Regenerates Fig. 2.
fn main() {
    tcp_repro::figures::fig2(&tcp_repro::RunScale::from_args());
}
