//! Model parameters: the per-connection quantities that, together with the
//! loss rate `p`, determine the predicted send rate.
//!
//! The paper's models take four connection-level inputs (§II, §III):
//!
//! * `RTT` — average round-trip time, in seconds (column "RTT" of Table II);
//! * `T0` — average duration of a *single* retransmission timeout, in
//!   seconds (column "Time Out" of Table II);
//! * `b` — number of packets acknowledged per ACK (2 when the receiver
//!   delays ACKs, 1 otherwise);
//! * `W_m` — maximum window advertised by the receiver, in packets.

use crate::error::ModelError;
use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// Default delayed-ACK factor: most receivers ACK every second segment.
pub const DEFAULT_ACK_FACTOR: u32 = 2;

/// Default maximum receiver window, in packets. Chosen large enough that the
/// window-limited branch of the full model is inactive unless the caller
/// sets a realistic `W_m` (the paper's traces use 6–48).
pub const DEFAULT_MAX_WINDOW: u32 = u16::MAX as u32; //~ allow(cast): const context; u32::from is not const-callable

/// Connection-level inputs of the PFTK model.
///
/// Construct with [`ModelParams::new`] or via [`ModelParams::builder`]:
///
/// ```
/// use pftk_model::params::ModelParams;
///
/// // The "manic to baskerville" trace of the paper's Fig. 7(a):
/// // RTT = 0.243 s, T0 = 2.495 s, W_m = 6 packets, delayed ACKs.
/// let params = ModelParams::builder()
///     .rtt(0.243)
///     .t0(2.495)
///     .max_window(6)
///     .ack_factor(2)
///     .build()
///     .unwrap();
/// assert_eq!(params.wmax, 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Average round-trip time `RTT = E[r]` (§II-A, Eq. (6)).
    pub rtt: Seconds,
    /// Average duration of a single timeout, `T0` (§II-B).
    pub t0: Seconds,
    /// Packets acknowledged per ACK, `b` (§II; typically 2 with delayed ACKs).
    //= pftk#delack-b
    pub b: u32,
    /// Maximum (receiver-advertised) window `W_m`, in packets (§II-C).
    pub wmax: u32,
}

impl ModelParams {
    /// Creates validated parameters.
    pub fn new(rtt_secs: f64, t0_secs: f64, b: u32, wmax: u32) -> Result<Self, ModelError> {
        if b == 0 {
            return Err(ModelError::InvalidAckFactor(b));
        }
        if wmax == 0 {
            return Err(ModelError::ZeroWindow);
        }
        Ok(ModelParams {
            rtt: Seconds::new(rtt_secs).map_err(|_| ModelError::NonPositive {
                name: "rtt",
                value: rtt_secs,
            })?,
            t0: Seconds::new(t0_secs).map_err(|_| ModelError::NonPositive {
                name: "t0",
                value: t0_secs,
            })?,
            b,
            wmax,
        })
    }

    /// Starts a builder pre-loaded with the conventional defaults
    /// (`b = 2`, effectively-unlimited `W_m`).
    pub fn builder() -> ModelParamsBuilder {
        ModelParamsBuilder::default()
    }

    /// The ceiling `W_m / RTT`: no loss rate can push the send rate above
    /// one full window per round trip (first operand of Eq. (33)).
    //= pftk#eq-31
    pub fn window_limited_rate(&self) -> f64 {
        f64::from(self.wmax) / self.rtt.get()
    }
}

/// Builder for [`ModelParams`].
#[derive(Debug, Clone)]
pub struct ModelParamsBuilder {
    rtt_secs: Option<f64>,
    t0_secs: Option<f64>,
    b: u32,
    wmax: u32,
}

impl Default for ModelParamsBuilder {
    fn default() -> Self {
        ModelParamsBuilder {
            rtt_secs: None,
            t0_secs: None,
            b: DEFAULT_ACK_FACTOR,
            wmax: DEFAULT_MAX_WINDOW,
        }
    }
}

impl ModelParamsBuilder {
    /// Sets the average round-trip time in seconds (required).
    pub fn rtt(mut self, secs: f64) -> Self {
        self.rtt_secs = Some(secs);
        self
    }

    /// Sets the average single-timeout duration in seconds (required).
    pub fn t0(mut self, secs: f64) -> Self {
        self.t0_secs = Some(secs);
        self
    }

    /// Sets the delayed-ACK factor `b` (default 2).
    pub fn ack_factor(mut self, b: u32) -> Self {
        self.b = b;
        self
    }

    /// Sets the maximum receiver window in packets (default: effectively
    /// unlimited).
    pub fn max_window(mut self, wmax: u32) -> Self {
        self.wmax = wmax;
        self
    }

    /// Validates and builds.
    pub fn build(self) -> Result<ModelParams, ModelError> {
        let rtt = self.rtt_secs.ok_or(ModelError::NonPositive {
            name: "rtt",
            value: 0.0,
        })?;
        let t0 = self.t0_secs.ok_or(ModelError::NonPositive {
            name: "t0",
            value: 0.0,
        })?;
        ModelParams::new(rtt, t0, self.b, self.wmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_every_field() {
        assert!(ModelParams::new(0.2, 2.0, 2, 8).is_ok());
        assert!(matches!(
            ModelParams::new(0.0, 2.0, 2, 8),
            Err(ModelError::NonPositive { name: "rtt", .. })
        ));
        assert!(matches!(
            ModelParams::new(0.2, -1.0, 2, 8),
            Err(ModelError::NonPositive { name: "t0", .. })
        ));
        assert!(matches!(
            ModelParams::new(0.2, 2.0, 0, 8),
            Err(ModelError::InvalidAckFactor(0))
        ));
        assert!(matches!(
            ModelParams::new(0.2, 2.0, 2, 0),
            Err(ModelError::ZeroWindow)
        ));
    }

    #[test]
    fn builder_defaults() {
        let p = ModelParams::builder().rtt(0.1).t0(1.0).build().unwrap();
        assert_eq!(p.b, DEFAULT_ACK_FACTOR);
        assert_eq!(p.wmax, DEFAULT_MAX_WINDOW);
    }

    #[test]
    fn builder_requires_rtt_and_t0() {
        assert!(ModelParams::builder().t0(1.0).build().is_err());
        assert!(ModelParams::builder().rtt(0.1).build().is_err());
    }

    #[test]
    fn window_limited_rate_is_wm_over_rtt() {
        let p = ModelParams::new(0.25, 2.0, 2, 10).unwrap();
        assert!((p.window_limited_rate() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn params_serde_roundtrip() {
        let p = ModelParams::new(0.243, 2.495, 2, 6).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: ModelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
